//! Fuzz harness for the job-intake protocol.
//!
//! Three properties, per the service's intake contract:
//!
//! 1. **No panic, ever** — arbitrary byte streams, mutated valid requests,
//!    truncations, and pathological nesting all come back as `Ok` or as a
//!    structured [`ProtoError`]; the parser never unwinds.
//! 2. **Errors are structured** — every `Err` carries the 1-based line
//!    number it was given, and a non-empty message.
//! 3. **Lossless round trip** — `encode_request` → `parse_request` is the
//!    identity on every representable [`Request`].

use proptest::prelude::*;
use sc_serve::{
    encode_request, parse_json_line, parse_request, BackendTag, GluingTag, JobKind, JobRequest,
    MeshSpec, PrecisionTag, ProtoError, Request,
};

fn check_structured(err: &ProtoError, line_no: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(err.line, line_no, "errors carry the stream line number");
    prop_assert!(!err.msg.is_empty(), "errors carry a message");
    // the error response itself must be well-formed protocol JSON
    let resp = err.to_response();
    prop_assert!(
        parse_json_line(resp.as_bytes(), 1).is_ok(),
        "error response must re-parse: {resp}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw fuzz: arbitrary bytes never panic and errors stay structured.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        line_no in 1usize..10_000,
    ) {
        match parse_request(&bytes, line_no) {
            Ok(_) => {}
            Err(e) => check_structured(&e, line_no)?,
        }
    }

    /// ASCII-biased fuzz: structural JSON characters are over-represented,
    /// driving the parser deep into objects/arrays/strings instead of
    /// failing on byte one.
    #[test]
    fn structural_ascii_soup_never_panics(
        picks in proptest::collection::vec(0usize..16, 0..200),
    ) {
        const POOL: &[u8; 16] = br#"{}[]",:0-9.eutns"#;
        let bytes: Vec<u8> = picks.iter().map(|&i| POOL[i]).collect();
        match parse_request(&bytes, 1) {
            Ok(_) => {}
            Err(e) => check_structured(&e, 1)?,
        }
    }
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0usize..6, 0usize..4, 0usize..3),
        (1usize..64, 1usize..5, 1usize..5, 1usize..5),
        (0usize..3, 0usize..2, 0usize..2, 0usize..2),
        (-4.0f64..4.0, 0.001f64..8.0, 0.0f64..60.0, 0usize..4),
    )
        .prop_map(|(ids, mesh, tags, nums)| {
            let (op_pick, tenant_pick, job_pick) = ids;
            let (cells, sx, sy, sz) = mesh;
            let (kind_pick, gluing_pick, prec_pick, backend_pick) = tags;
            let (scale, weight, timeout, opt_pick) = nums;
            match op_pick {
                0 => Request::Stats,
                1 => Request::Shutdown,
                2 => Request::Run {
                    budget_s: if opt_pick % 2 == 0 {
                        Some(timeout)
                    } else {
                        None
                    },
                },
                3 => Request::Cancel {
                    tenant: tenant_name(tenant_pick),
                    job: job_name(job_pick),
                },
                _ => {
                    let dim = if kind_pick == 0 { 2 } else { 3 };
                    Request::Submit(JobRequest {
                        kind: if op_pick == 4 {
                            JobKind::Assemble
                        } else {
                            JobKind::Solve
                        },
                        tenant: tenant_name(tenant_pick),
                        job: job_name(job_pick),
                        spec: MeshSpec {
                            dim,
                            cells,
                            subs: (sx, sy, if dim == 2 { 1 } else { sz }),
                            gluing: if gluing_pick == 0 {
                                GluingTag::Redundant
                            } else {
                                GluingTag::Chain
                            },
                        },
                        precision: if prec_pick == 0 {
                            PrecisionTag::F64
                        } else {
                            PrecisionTag::F32Refined
                        },
                        backend: if backend_pick == 0 {
                            BackendTag::Cluster
                        } else {
                            BackendTag::Cpu
                        },
                        scale,
                        weight: if opt_pick == 1 { Some(weight) } else { None },
                        timeout_s: if opt_pick == 2 { Some(timeout) } else { None },
                    })
                }
            }
        })
}

/// Tenant names exercise escaping: quotes, backslashes, control chars,
/// multi-byte UTF-8 (2-, 3-, and 4-byte sequences).
fn tenant_name(pick: usize) -> String {
    [
        "acme",
        "tenant with spaces",
        "quo\"ted\\slash",
        "tab\there\nnewline",
        "ünïcodé-β",
        "emoji-😀-4byte",
    ][pick % 6]
        .to_string()
}

fn job_name(pick: usize) -> String {
    ["j1", "run/2026-08-08", "job-\u{1}-ctrl", "жоб"][pick % 4].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lossless round trip: encode → parse is the identity.
    #[test]
    fn encode_parse_round_trip(req in arb_request(), line_no in 1usize..1000) {
        let line = encode_request(&req);
        match parse_request(line.as_bytes(), line_no) {
            Ok(back) => prop_assert_eq!(back, req, "round trip must be lossless: {}", line),
            Err(e) => prop_assert!(false, "canonical encoding must parse: {} ({e})", line),
        }
    }

    /// Truncating a valid request anywhere never panics; a strict prefix is
    /// always an error (no silent partial accepts).
    #[test]
    fn truncated_requests_error_cleanly(req in arb_request(), cut_seed in 0usize..10_000) {
        let line = encode_request(&req);
        let cut = cut_seed % line.len(); // < len, so always a strict prefix
        // cut at a char boundary (the wire is bytes, but String slicing is
        // not — walk back to the previous boundary like a byte cut would)
        let mut cut = cut;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        match parse_request(&line.as_bytes()[..cut], 3) {
            Ok(_) => prop_assert!(false, "a strict prefix cannot be a valid request"),
            Err(e) => check_structured(&e, 3)?,
        }
    }

    /// Single-byte mutations of a valid request never panic, and whatever
    /// still parses decodes to *some* valid request (strictness may reject
    /// it, but it must not corrupt the parser).
    #[test]
    fn mutated_requests_never_panic(
        req in arb_request(),
        pos_seed in 0usize..10_000,
        byte in any::<u8>(),
    ) {
        let mut bytes = encode_request(&req).into_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] = byte;
        match parse_request(&bytes, 11) {
            Ok(_) => {}
            Err(e) => check_structured(&e, 11)?,
        }
    }

    /// Nesting depth is capped: arbitrarily deep arrays/objects are a
    /// structured error, not a stack overflow.
    #[test]
    fn deep_nesting_is_rejected(depth in 1usize..5000, open in 0usize..2) {
        let (o, c) = if open == 0 { (b'[', b']') } else { (b'{', b'}') };
        let mut line = vec![o; depth];
        if open == 1 {
            // objects need keys to nest: {"k":{"k":...
            line = br#"{"k":"#.repeat(depth);
            line.push(b'1');
            line.extend(std::iter::repeat_n(c, depth));
        } else {
            line.push(b'1');
            line.extend(std::iter::repeat_n(c, depth));
        }
        match parse_json_line(&line, 5) {
            Ok(_) => prop_assert!(depth <= 33, "deep nesting must be rejected"),
            Err(e) => check_structured(&e, 5)?,
        }
    }
}

#[test]
fn oversized_line_is_rejected_without_allocation_blowup() {
    let line = vec![b'['; sc_serve::protocol::MAX_LINE_BYTES + 1];
    let err = parse_json_line(&line, 9).expect_err("over-long lines are rejected");
    assert_eq!(err.line, 9);
    assert!(err.msg.contains("longer than"));
}
