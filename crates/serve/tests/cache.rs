//! Cache-correctness pins for the cross-session prepared-state cache.
//!
//! Two contracts:
//!
//! 1. **Warm ≡ cold, bitwise** — a solve served from a cached prepared
//!    bundle returns exactly the λ and per-subdomain u a cold run
//!    produces, for every backend × precision combination. Preprocessing
//!    is deterministic, so there is no tolerance here: `assert_eq!` on the
//!    raw `f64` vectors.
//! 2. **Eviction never corrupts** — under a byte budget so tight that
//!    bundles keep evicting each other, every job still produces the
//!    bitwise-reference answer (an evicted entry costs re-preparation,
//!    never correctness), and in-flight jobs survive eviction of their
//!    own entry mid-queue.

use proptest::prelude::*;
use sc_serve::{JobOutcome, ServeHandle, ServeOptions};

fn submit(
    dim: usize,
    cells: usize,
    tenant: &str,
    job: &str,
    precision: &str,
    backend: &str,
) -> String {
    let subs = if dim == 2 {
        "[2,2]".to_string()
    } else {
        "[2,2,1]".to_string()
    };
    format!(
        "{{\"op\":\"solve\",\"tenant\":\"{tenant}\",\"job\":\"{job}\",\"dim\":{dim},\
         \"cells\":{cells},\"subs\":{subs},\"precision\":\"{precision}\",\"backend\":\"{backend}\"}}"
    )
}

fn run_one(h: &mut ServeHandle, line: &str, tenant: &str, job: &str) -> JobOutcome {
    let r = h.request(line);
    assert!(
        r[0].contains("\"event\":\"accepted\""),
        "submission must be admitted: {}",
        r[0]
    );
    h.request("{\"op\":\"run\"}");
    h.take_outcome(tenant, job).expect("outcome retained")
}

fn assert_bitwise(a: &JobOutcome, b: &JobOutcome, label: &str) {
    assert_eq!(a.lambda, b.lambda, "{label}: λ must match bitwise");
    assert_eq!(a.u_locals, b.u_locals, "{label}: u must match bitwise");
    assert_eq!(
        a.iterations, b.iterations,
        "{label}: iteration counts must match"
    );
}

#[test]
fn warm_solve_is_bitwise_identical_to_cold_across_backends_and_precisions() {
    for backend in ["cluster", "cpu"] {
        for precision in ["f64", "f32_refined"] {
            let label = format!("{backend}/{precision}");
            let mut svc = ServeHandle::new(ServeOptions::default());
            let cold = run_one(
                &mut svc,
                &submit(2, 4, "t1", "cold", precision, backend),
                "t1",
                "cold",
            );
            assert!(!cold.cache_hit, "{label}: first job must miss");
            let warm = run_one(
                &mut svc,
                &submit(2, 4, "t2", "warm", precision, backend),
                "t2",
                "warm",
            );
            assert!(warm.cache_hit, "{label}: second job must hit");
            assert_eq!(warm.prep_s, 0.0, "{label}: hits pay no preprocessing");
            assert_bitwise(&cold, &warm, &label);

            // a completely fresh service (fresh cache, fresh pool state)
            // must also agree — warm reuse changes nothing observable
            let mut fresh = ServeHandle::new(ServeOptions::default());
            let reference = run_one(
                &mut fresh,
                &submit(2, 4, "t3", "ref", precision, backend),
                "t3",
                "ref",
            );
            assert_bitwise(&reference, &warm, &format!("{label} vs fresh service"));
        }
    }
}

#[test]
fn tight_budget_evicts_without_corrupting_later_jobs() {
    // Reference answers from an uncapped service, one per spec.
    let specs = [(2usize, 3usize), (2, 4), (2, 5)];
    let mut refs = Vec::new();
    for (i, (dim, cells)) in specs.iter().enumerate() {
        let mut fresh = ServeHandle::new(ServeOptions::default());
        let id = format!("ref{i}");
        refs.push(run_one(
            &mut fresh,
            &submit(*dim, *cells, "r", &id, "f64", "cluster"),
            "r",
            &id,
        ));
    }

    // A 32 KB budget fits roughly one bundle: cycling three
    // distinct specs keeps evicting.
    let mut tight = ServeHandle::new(ServeOptions {
        cache_budget_bytes: 32 << 10,
        ..ServeOptions::default()
    });
    for round in 0..3 {
        for (i, (dim, cells)) in specs.iter().enumerate() {
            let id = format!("job-{round}-{i}");
            let got = run_one(
                &mut tight,
                &submit(*dim, *cells, "t", &id, "f64", "cluster"),
                "t",
                &id,
            );
            assert_bitwise(&refs[i], &got, &format!("spec {i} round {round}"));
        }
    }
    let stats = tight.cache_stats();
    assert!(
        stats.evictions > 0,
        "the budget must actually have forced evictions (bytes={}, budget={})",
        stats.bytes,
        stats.budget_bytes
    );
    assert!(
        stats.bytes <= stats.budget_bytes,
        "resident bytes must respect the budget"
    );
}

#[test]
fn queued_job_survives_eviction_of_its_entry_between_submit_and_run() {
    // Submit A and B (same tight budget); running B's prepare evicts A's
    // bundle while A's second job is still queued — the dispatch-time
    // lookup must transparently re-prepare.
    let mut tight = ServeHandle::new(ServeOptions {
        cache_budget_bytes: 32 << 10,
        ..ServeOptions::default()
    });
    let a1 = run_one(
        &mut tight,
        &submit(2, 4, "t", "a1", "f64", "cluster"),
        "t",
        "a1",
    );
    // queue a2 (same spec as a1) and b (different spec, evicts a's bundle)
    tight.request(&submit(2, 5, "t", "b", "f64", "cluster"));
    tight.request(&submit(2, 4, "t", "a2", "f64", "cluster"));
    tight.request("{\"op\":\"run\"}");
    let a2 = tight.take_outcome("t", "a2").expect("a2 ran");
    let b = tight.take_outcome("t", "b").expect("b ran");
    assert!(b.iterations.expect("b solved") > 0);
    assert_bitwise(&a1, &a2, "same spec across eviction");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized spec sweep of the warm ≡ cold pin (cheap shapes only;
    /// the exhaustive backend × precision matrix is covered above).
    #[test]
    fn warm_equals_cold_on_random_specs(cells in 3usize..6, prec_pick in 0usize..2) {
        let precision = ["f64", "f32_refined"][prec_pick];
        let mut svc = ServeHandle::new(ServeOptions::default());
        let cold = run_one(
            &mut svc,
            &submit(2, cells, "p", "cold", precision, "cluster"),
            "p",
            "cold",
        );
        let warm = run_one(
            &mut svc,
            &submit(2, cells, "p", "warm", precision, "cluster"),
            "p",
            "warm",
        );
        prop_assert!(warm.cache_hit);
        prop_assert_eq!(cold.lambda, warm.lambda);
        prop_assert_eq!(cold.u_locals, warm.u_locals);
    }
}
