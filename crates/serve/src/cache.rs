//! Cross-session prepared-state cache: content-addressed symbolic/numeric
//! factorizations and block-cut resolutions, shared by every tenant.
//!
//! The expensive part of a FETI job on a repeated mesh family is not the
//! PCPG iteration — it is the preprocessing: building the decomposition,
//! regularizing and factorizing every subdomain (symbolic analysis +
//! numeric Cholesky) and resolving the stepped block partitions. All of it
//! is a pure function of *(mesh spec, assembly config, precision)*, so the
//! service keys a [`SessionCache`] on a content hash of exactly those
//! inputs and reuses the prepared bundle across jobs, tenants, and client
//! sessions. Determinism of the preprocessing (pinned by the feti crate's
//! bitwise reuse test) makes a warm solve bitwise identical to a cold one.

use std::sync::Arc;

use rayon::prelude::*;
use sc_core::{BlockCutsCache, ContentHasher, SessionCache};
use sc_fem::{Gluing, HeatProblem};
use sc_feti::{FetiOptions, SubdomainFactors};

use crate::protocol::{GluingTag, MeshSpec, PrecisionTag};

/// Everything preprocessing produces for one mesh/config/precision key.
///
/// Values are handed out as `Arc<PreparedSession>` from the cache, so an
/// in-flight job keeps its bundle alive even if the entry is evicted
/// mid-run (the LRU-correctness test pins this).
pub struct PreparedSession {
    /// The decomposed problem (mesh, gluing, loads).
    pub problem: HeatProblem,
    /// Per-subdomain regularized factorizations, `Arc`-shared so they plug
    /// straight into [`sc_feti::FetiSolverBuilder::factors`].
    pub factors: Arc<Vec<SubdomainFactors>>,
    /// Shared block-cut resolutions for the explicit assembly kernels;
    /// warmed by the first assembly against this bundle, hit by the rest.
    pub cuts: BlockCutsCache,
    /// Approximate resident size, charged against the cache byte budget.
    pub bytes: usize,
}

/// The cache itself: content key → prepared bundle, byte-budgeted LRU.
pub type PreparedCache = SessionCache<PreparedSession>;

/// Content-address a job's preprocessing inputs.
///
/// Everything that changes the prepared state goes into the hash — mesh
/// spec (dimension, resolution, decomposition, gluing), precision tag, and
/// the factorization options that shape the symbolic analysis. The load
/// `scale` and the backend placement deliberately do **not**: they change
/// where/what is computed downstream, not the factorizations.
pub fn content_key(spec: &MeshSpec, precision: PrecisionTag, opts: &FetiOptions) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str("sc_serve/prepared/v1");
    h.write_u64(u64::from(spec.dim));
    h.write_usize(spec.cells);
    h.write_usize(spec.subs.0);
    h.write_usize(spec.subs.1);
    h.write_usize(spec.subs.2);
    h.write_str(match spec.gluing {
        GluingTag::Redundant => "redundant",
        GluingTag::Chain => "chain",
    });
    h.write_str(match precision {
        PrecisionTag::F64 => "f64",
        PrecisionTag::F32Refined => "f32_refined",
    });
    // Engine/ordering select the symbolic structure; tol/max_iter/precond
    // only steer PCPG and are excluded for the same reason as `scale`.
    h.write_str(&format!("{:?}", opts.engine));
    h.write_str(&format!("{:?}", opts.ordering));
    h.finish()
}

fn gluing_of(tag: GluingTag) -> Gluing {
    match tag {
        GluingTag::Redundant => Gluing::Redundant,
        GluingTag::Chain => Gluing::Chain,
    }
}

/// Build the prepared bundle for a mesh spec — the cold path a cache miss
/// pays once per content key.
pub fn prepare(spec: &MeshSpec, opts: &FetiOptions) -> PreparedSession {
    let problem = if spec.dim == 2 {
        HeatProblem::build_2d(
            spec.cells,
            (spec.subs.0, spec.subs.1),
            gluing_of(spec.gluing),
        )
    } else {
        HeatProblem::build_3d(spec.cells, spec.subs, gluing_of(spec.gluing))
    };
    let factors: Arc<Vec<SubdomainFactors>> = Arc::new(
        problem
            .subdomains
            .par_iter()
            .map(|sd| SubdomainFactors::build(sd, opts.engine, opts.ordering))
            .collect(),
    );
    let cuts = BlockCutsCache::new();
    let bytes = approx_bytes(&problem, &factors, &cuts);
    PreparedSession {
        problem,
        factors,
        cuts,
        bytes,
    }
}

/// Resident-size estimate of a prepared bundle: factor + gluing nonzeros at
/// 16 bytes each (8 value + ~8 amortized index), stiffness nonzeros for the
/// retained problem, plus the block-cut tables.
fn approx_bytes(
    problem: &HeatProblem,
    factors: &[SubdomainFactors],
    cuts: &BlockCutsCache,
) -> usize {
    let mut b = cuts.approx_bytes();
    for f in factors {
        b += f.chol.symbolic().nnz() * 16 + f.bt_perm.nnz() * 16;
    }
    for sd in &problem.subdomains {
        b += sd.k.nnz() * 16 + sd.bt.nnz() * 16 + sd.f.len() * 8;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2d() -> MeshSpec {
        MeshSpec {
            dim: 2,
            cells: 4,
            subs: (2, 2, 1),
            gluing: GluingTag::Redundant,
        }
    }

    #[test]
    fn content_key_separates_every_input() {
        let base = spec2d();
        let opts = FetiOptions::default();
        let k0 = content_key(&base, PrecisionTag::F64, &opts);
        assert_eq!(k0, content_key(&base, PrecisionTag::F64, &opts), "stable");

        let mut cells = base.clone();
        cells.cells = 5;
        let mut subs = base.clone();
        subs.subs = (2, 3, 1);
        let mut glue = base.clone();
        glue.gluing = GluingTag::Chain;
        for (label, other) in [
            ("cells", content_key(&cells, PrecisionTag::F64, &opts)),
            ("subs", content_key(&subs, PrecisionTag::F64, &opts)),
            ("gluing", content_key(&glue, PrecisionTag::F64, &opts)),
            (
                "precision",
                content_key(&base, PrecisionTag::F32Refined, &opts),
            ),
        ] {
            assert_ne!(k0, other, "{label} must change the key");
        }
    }

    #[test]
    fn scale_and_backend_do_not_enter_the_key() {
        // The key is a function of MeshSpec/precision/opts only; BackendTag
        // is not even a parameter. This test documents the contract by
        // constructing the key without any backend in scope.
        let opts = FetiOptions::default();
        let _ = crate::protocol::BackendTag::Cluster;
        let a = content_key(&spec2d(), PrecisionTag::F64, &opts);
        let b = content_key(&spec2d(), PrecisionTag::F64, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn prepare_covers_every_subdomain_and_charges_bytes() {
        let opts = FetiOptions::default();
        let prep = prepare(&spec2d(), &opts);
        assert_eq!(prep.factors.len(), prep.problem.subdomains.len());
        assert_eq!(prep.factors.len(), 4);
        assert!(prep.bytes > 0, "a real bundle has a positive footprint");
    }
}
