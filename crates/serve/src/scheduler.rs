//! Weighted deficit-round-robin job scheduler with a virtual device clock,
//! per-job timeout/cancellation, and per-tenant accounting.
//!
//! Fairness currency is **estimated device-seconds** under the §4.4-style
//! closed-form cost proxy (two sparse trisolves plus one SYRK per
//! subdomain), not job count — a tenant submitting few huge jobs and one
//! submitting many small jobs converge to the same device-second share when
//! their weights are equal. Deficit round robin gives that with O(1) work
//! per dispatch: each tenant holds a *deficit counter* topped up by
//! `quantum · weight` per scheduling round and pays the estimated cost of a
//! job out of it when the job is dispatched.
//!
//! Time is virtual: the clock advances by *realized* device-seconds of
//! completed jobs (simulated-device makespans are deterministic), so
//! scheduling decisions, timeouts, and the fairness gate in the bench
//! harness are all reproducible run to run.

use std::collections::{BTreeMap, VecDeque};

use crate::protocol::{JobRequest, MeshSpec};

/// One queued unit of work, as the scheduler sees it.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    pub req: JobRequest,
    /// Content key of the prepared state this job needs (cache lookup is
    /// done at dispatch, not submit — a bundle evicted while queued must
    /// re-prepare, never dangle).
    pub key: u64,
    /// Estimated device-seconds (the fairness currency).
    pub est_s: f64,
    /// Virtual clock at submission, for queue-wait and timeout accounting.
    pub submitted_at: f64,
}

/// Why a job left the queue without running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Drop {
    /// Explicit `cancel` request.
    Cancelled,
    /// Queue wait exceeded the job's `timeout_s` before dispatch.
    Expired,
}

/// Per-tenant roll-up, reported by the `stats` op.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    pub jobs_done: usize,
    pub jobs_cancelled: usize,
    pub jobs_expired: usize,
    pub jobs_rejected: usize,
    /// Realized device-seconds billed to this tenant.
    pub device_s: f64,
    /// Preprocessing seconds actually paid (0 on cache hits).
    pub prep_s: f64,
    /// Sum of virtual queue-wait across dispatched jobs.
    pub queue_wait_s: f64,
    pub cache_hits: usize,
    pub cache_misses: usize,
}

impl TenantStats {
    /// Fraction of dispatched jobs that found their prepared state cached.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64 // sc-analyze: allow(precision-discipline)
        }
    }
}

struct Tenant {
    weight: f64,
    deficit: f64,
    queue: VecDeque<QueuedJob>,
    stats: TenantStats,
}

/// The deficit-round-robin scheduler. Tenants live in a `BTreeMap`, so
/// round-robin order is the sorted tenant-name order — deterministic
/// regardless of submission interleaving.
pub struct Scheduler {
    tenants: BTreeMap<String, Tenant>,
    /// Round-robin cursor: name of the tenant to visit next.
    cursor: Option<String>,
    /// Device-seconds of credit granted per tenant visit (× weight).
    quantum_s: f64,
    /// Virtual clock, in realized device-seconds.
    vclock: f64,
}

impl Scheduler {
    pub fn new(quantum_s: f64) -> Self {
        assert!(quantum_s > 0.0, "the DRR quantum must be positive");
        Scheduler {
            tenants: BTreeMap::new(),
            cursor: None,
            quantum_s,
            vclock: 0.0,
        }
    }

    /// Current virtual time (realized device-seconds so far).
    pub fn vclock(&self) -> f64 {
        self.vclock
    }

    /// Total jobs queued across all tenants.
    pub fn queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    fn tenant_mut(&mut self, name: &str) -> &mut Tenant {
        self.tenants
            .entry(name.to_string())
            .or_insert_with(|| Tenant {
                weight: 1.0,
                deficit: 0.0,
                queue: VecDeque::new(),
                stats: TenantStats::default(),
            })
    }

    /// Enqueue a job; an explicit `weight` on the request updates the
    /// tenant's share from this submission on. Returns the queue depth
    /// after insertion.
    pub fn submit(&mut self, req: JobRequest, key: u64, est_s: f64) -> usize {
        let submitted_at = self.vclock;
        let t = self.tenant_mut(&req.tenant.clone());
        if let Some(w) = req.weight {
            t.weight = w;
        }
        t.queue.push_back(QueuedJob {
            req,
            key,
            est_s,
            submitted_at,
        });
        self.queued()
    }

    /// Record a rejected admission against the tenant (the job never
    /// entered the queue).
    pub fn note_rejected(&mut self, tenant: &str) {
        self.tenant_mut(tenant).stats.jobs_rejected += 1;
    }

    /// Remove a queued job. `false` if no such tenant/job is waiting
    /// (already dispatched jobs cannot be recalled — the virtual device
    /// ran them to completion).
    pub fn cancel(&mut self, tenant: &str, job: &str) -> bool {
        let Some(t) = self.tenants.get_mut(tenant) else {
            return false;
        };
        let Some(i) = t.queue.iter().position(|q| q.req.job == job) else {
            return false;
        };
        t.queue.remove(i);
        t.stats.jobs_cancelled += 1;
        true
    }

    /// Pick the next job to dispatch under DRR, expiring timed-out jobs
    /// along the way. Returns `None` when every queue is empty.
    ///
    /// Termination: every full cycle over non-empty tenants adds
    /// `quantum · weight` credit to each, so some head job's estimate is
    /// eventually covered; a safety valve force-serves the deepest-deficit
    /// tenant if estimates are so skewed that crediting would spin.
    pub fn pop_next(&mut self) -> Option<(String, QueuedJob)> {
        self.expire_timed_out();
        let names: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        if names.is_empty() {
            return None;
        }
        // start the scan at the cursor (or the first active tenant)
        let start = self
            .cursor
            .as_ref()
            .and_then(|c| names.iter().position(|n| n >= c))
            .unwrap_or(0);
        let max_visits = names.len() * 100_000;
        for visit in 0..max_visits {
            let name = &names[(start + visit) % names.len()];
            let quantum = self.quantum_s;
            let t = self.tenants.get_mut(name).expect("active tenant exists");
            t.deficit += quantum * t.weight;
            let head_est = t.queue.front().expect("non-empty queue").est_s;
            if t.deficit >= head_est {
                t.deficit -= head_est;
                let job = t.queue.pop_front().expect("non-empty queue");
                if t.queue.is_empty() {
                    // an emptied tenant must not bank credit for later
                    t.deficit = 0.0;
                }
                self.cursor = Some(next_after(&names, (start + visit) % names.len()));
                return Some((name.clone(), job));
            }
        }
        // Safety valve (unreachable for sane quantum/estimate ratios):
        // serve the tenant whose head job is closest to covered.
        let name = names
            .iter()
            .max_by(|a, b| {
                let ra = self.readiness(a);
                let rb = self.readiness(b);
                ra.partial_cmp(&rb).expect("readiness ratios are finite")
            })
            .expect("non-empty names")
            .clone();
        let t = self.tenants.get_mut(&name).expect("active tenant exists");
        t.deficit = 0.0;
        let job = t.queue.pop_front().expect("non-empty queue");
        self.cursor = Some(next_after(
            &names,
            names
                .iter()
                .position(|n| *n == name)
                .expect("name from list"),
        ));
        Some((name, job))
    }

    fn readiness(&self, name: &str) -> f64 {
        let t = &self.tenants[name];
        let est = t.queue.front().map(|q| q.est_s).unwrap_or(f64::MAX);
        (t.deficit + t.weight) / est.max(1e-300)
    }

    fn expire_timed_out(&mut self) {
        let now = self.vclock;
        for t in self.tenants.values_mut() {
            let before = t.queue.len();
            t.queue.retain(|q| match q.req.timeout_s {
                Some(limit) => now - q.submitted_at <= limit,
                None => true,
            });
            t.stats.jobs_expired += before - t.queue.len();
        }
    }

    /// Account a completed job: advance the virtual clock by its realized
    /// device-seconds, reconcile the DRR charge, and bill the tenant.
    pub fn complete(
        &mut self,
        tenant: &str,
        job: &QueuedJob,
        device_s: f64,
        prep_s: f64,
        cache_hit: bool,
    ) {
        let wait = self.vclock - job.submitted_at;
        self.vclock += device_s;
        let t = self.tenant_mut(tenant);
        // pop_next debited the submit-time estimate — the only number
        // available before execution. Swap that charge for the realized
        // cost, so long-run shares track the device-seconds tenants
        // actually consumed rather than the cost model's idea of them.
        // An emptied tenant keeps no credit (pop_next zeroed it).
        if !t.queue.is_empty() {
            t.deficit += job.est_s - device_s;
        }
        t.stats.jobs_done += 1;
        t.stats.device_s += device_s;
        t.stats.prep_s += prep_s;
        t.stats.queue_wait_s += wait;
        if cache_hit {
            t.stats.cache_hits += 1;
        } else {
            t.stats.cache_misses += 1;
        }
    }

    /// Put a job back at the head of its tenant's queue (run-budget
    /// exhausted before it could dispatch).
    pub fn requeue_front(&mut self, tenant: &str, job: QueuedJob) {
        self.tenant_mut(tenant).queue.push_front(job);
    }

    /// Snapshot of every tenant's roll-up, sorted by name.
    pub fn stats(&self) -> Vec<(String, TenantStats)> {
        self.tenants
            .iter()
            .map(|(n, t)| (n.clone(), t.stats.clone()))
            .collect()
    }
}

fn next_after(names: &[String], i: usize) -> String {
    names[(i + 1) % names.len()].clone()
}

/// Closed-form estimate of a job's device-seconds, in the style of the
/// paper's §4.4 cost model: per subdomain, the explicit assembly costs two
/// sparse triangular solves against `m` right-hand sides (`2 · 2·nnz(L)·m`
/// flops) plus the `m×m` SYRK over `n` rows (`n·m²` flops), priced at a
/// nominal device rate. Proxies for `n`, `m`, `nnz(L)` come from the
/// structured mesh geometry, so the estimate needs no preprocessing — it
/// must be computable at *submit* time, before any cache lookup.
pub fn estimate_job_seconds(spec: &MeshSpec) -> f64 {
    let c = spec.cells as f64; // sc-analyze: allow(precision-discipline)
    let dim = u32::from(spec.dim);
    let n = (c + 1.0).powi(dim as i32); // dofs per subdomain
    let m = if spec.dim == 2 {
        4.0 * (c + 1.0) // boundary of a square patch
    } else {
        6.0 * (c + 1.0) * (c + 1.0) // boundary of a cube patch
    };
    // nested-dissection fill proxy: Θ(n log n) in 2D, Θ(n^{4/3}) in 3D
    let nnz_l = if spec.dim == 2 {
        n * n.max(2.0).log2()
    } else {
        n.powf(4.0 / 3.0)
    };
    let flops_per_sub = 4.0 * nnz_l * m + n * m * m;
    let n_subs = (spec.subs.0 * spec.subs.1 * spec.subs.2) as f64; // sc-analyze: allow(precision-discipline)
    const NOMINAL_RATE: f64 = 250e9; // effective flop/s for small batched kernels
    flops_per_sub * n_subs / NOMINAL_RATE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{BackendTag, GluingTag, JobKind, PrecisionTag};

    fn job(tenant: &str, id: &str, timeout_s: Option<f64>, weight: Option<f64>) -> JobRequest {
        JobRequest {
            kind: JobKind::Solve,
            tenant: tenant.to_string(),
            job: id.to_string(),
            spec: MeshSpec {
                dim: 2,
                cells: 4,
                subs: (2, 2, 1),
                gluing: GluingTag::Redundant,
            },
            precision: PrecisionTag::F64,
            backend: BackendTag::Cluster,
            scale: 1.0,
            weight,
            timeout_s,
        }
    }

    #[test]
    fn equal_weights_interleave_tenants() {
        let mut s = Scheduler::new(0.5);
        for i in 0..3 {
            s.submit(job("a", &format!("a{i}"), None, None), 0, 1.0);
            s.submit(job("b", &format!("b{i}"), None, None), 0, 1.0);
        }
        let mut order = Vec::new();
        while let Some((t, j)) = s.pop_next() {
            s.complete(&t, &j, j.est_s, 0.0, true);
            order.push(t);
        }
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn double_weight_doubles_share() {
        let mut s = Scheduler::new(0.5);
        for i in 0..8 {
            s.submit(job("heavy", &format!("h{i}"), None, Some(2.0)), 0, 1.0);
            s.submit(job("light", &format!("l{i}"), None, Some(1.0)), 0, 1.0);
        }
        // dispatch 6 jobs; the 2:1 weight ratio should show in the mix
        let mut heavy = 0;
        for _ in 0..6 {
            let (t, j) = s.pop_next().expect("queues non-empty");
            s.complete(&t, &j, j.est_s, 0.0, true);
            if t == "heavy" {
                heavy += 1;
            }
        }
        assert_eq!(heavy, 4, "2:1 weights → 4 of 6 dispatches go heavy");
    }

    #[test]
    fn fairness_is_by_cost_not_job_count() {
        // tenant "big" submits 5-second jobs, "small" 1-second jobs; equal
        // weights must equalize device-seconds, so "small" dispatches ~5x
        // as many jobs.
        let mut s = Scheduler::new(0.5);
        for i in 0..4 {
            s.submit(job("big", &format!("b{i}"), None, None), 0, 5.0);
        }
        for i in 0..20 {
            s.submit(job("small", &format!("s{i}"), None, None), 0, 1.0);
        }
        let (mut big_s, mut small_s) = (0.0, 0.0);
        for _ in 0..12 {
            let (t, j) = s.pop_next().expect("queues non-empty");
            s.complete(&t, &j, j.est_s, 0.0, true);
            if t == "big" {
                big_s += j.est_s;
            } else {
                small_s += j.est_s;
            }
        }
        let ratio = big_s.max(small_s) / big_s.min(small_s).max(1e-300);
        assert!(
            ratio <= 1.5,
            "device-second split {big_s:.1}/{small_s:.1} drifts past 1.5x"
        );
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let mut s = Scheduler::new(0.5);
        s.submit(job("a", "j1", None, None), 0, 1.0);
        assert!(s.cancel("a", "j1"));
        assert!(!s.cancel("a", "j1"), "already gone");
        assert!(!s.cancel("nobody", "j1"));
        assert_eq!(s.queued(), 0);
        assert_eq!(s.stats()[0].1.jobs_cancelled, 1);
    }

    #[test]
    fn timeout_expires_stale_jobs_at_dispatch() {
        let mut s = Scheduler::new(0.5);
        // same tenant → FIFO: the slow job dispatches first and pushes the
        // virtual clock past the impatient job's timeout
        s.submit(job("a", "slow", None, None), 0, 10.0);
        s.submit(job("a", "impatient", Some(3.0), None), 0, 1.0);
        let (t, j) = s.pop_next().expect("a job is ready");
        assert_eq!(j.req.job, "slow");
        s.complete(&t, &j, j.est_s, 0.0, false);
        assert!((s.vclock() - 10.0).abs() < 1e-12);
        assert!(s.pop_next().is_none(), "the impatient job expired");
        let stats = s.stats();
        assert_eq!(stats[0].1.jobs_expired, 1);
    }

    #[test]
    fn estimate_grows_with_resolution_and_dimension() {
        let small = MeshSpec {
            dim: 2,
            cells: 4,
            subs: (2, 2, 1),
            gluing: GluingTag::Redundant,
        };
        let fine = MeshSpec {
            cells: 16,
            ..small.clone()
        };
        let cube = MeshSpec {
            dim: 3,
            cells: 4,
            subs: (2, 2, 2),
            gluing: GluingTag::Redundant,
        };
        assert!(estimate_job_seconds(&fine) > estimate_job_seconds(&small));
        assert!(estimate_job_seconds(&cube) > estimate_job_seconds(&small));
        assert!(estimate_job_seconds(&small) > 0.0);
    }
}
