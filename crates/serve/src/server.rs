//! The service proper: protocol dispatch, admission control, job execution
//! against the shared device pool, and the pipe/TCP front-ends.
//!
//! One [`Service`] owns the prepared-state cache, the fair scheduler, and
//! the device pool for its whole lifetime — that is what makes the cache
//! *cross-session*: connections come and go (sequentially), the service
//! state persists. The in-process [`ServeHandle`] drives the same
//! `Service` without any I/O, which is how the bitwise cache-correctness
//! tests and the bench perf gate observe real solutions instead of parsing
//! their own protocol output.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

use sc_core::{assemble_sc_with_cache, Backend, CpuExec, Precision, ScConfig, SessionCacheStats};
use sc_feti::{FetiOptions, FetiSolverBuilder, FormulationChoice};
use sc_gpu::{DevicePool, DeviceSpec};

use crate::cache::{content_key, prepare, PreparedCache};
use crate::protocol::{
    parse_request, write_json_f64, write_json_str, BackendTag, JobKind, JobRequest, MeshSpec,
    PrecisionTag, Request,
};
use crate::scheduler::{estimate_job_seconds, QueuedJob, Scheduler, TenantStats};

/// Service configuration.
#[derive(Clone)]
pub struct ServeOptions {
    /// The shared (simulated) device pool all cluster jobs run on.
    pub pool: Arc<DevicePool>,
    /// Byte budget of the cross-session prepared-state cache.
    pub cache_budget_bytes: usize,
    /// DRR credit per tenant visit, in device-seconds. Must sit well below
    /// the cost of the smallest expected job, or deficit round-robin
    /// degenerates into one-job-per-visit round-robin and coarse-job
    /// tenants are over-served (the §4.4 estimates for the served mesh
    /// family bottom out around `3e-7 s`).
    pub quantum_s: f64,
    /// Retain full [`JobOutcome`]s (λ, per-subdomain u) for in-process
    /// retrieval. Off for the wire front-ends — a long-lived server must
    /// not grow per-job memory.
    pub keep_results: bool,
    /// Factorization/PCPG options shared by every job.
    pub feti: FetiOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            pool: DevicePool::uniform(DeviceSpec::a100(), 2, 2),
            cache_budget_bytes: 256 << 20,
            quantum_s: 1e-7,
            keep_results: false,
            feti: FetiOptions::default(),
        }
    }
}

/// What one executed job produced (retained when
/// [`ServeOptions::keep_results`] is set).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub tenant: String,
    pub job: String,
    pub kind: JobKind,
    /// Whether the prepared state came out of the cross-session cache.
    pub cache_hit: bool,
    /// Wall seconds spent preparing (0.0 on a hit).
    pub prep_s: f64,
    /// Realized device-seconds billed to the tenant.
    pub device_s: f64,
    /// PCPG iterations (solve jobs).
    pub iterations: Option<usize>,
    /// Final relative residual (solve jobs).
    pub rel_residual: Option<f64>,
    /// Dual solution (solve jobs).
    pub lambda: Option<Vec<f64>>,
    /// Per-subdomain primal solutions (solve jobs).
    pub u_locals: Option<Vec<Vec<f64>>>,
}

/// The persistent multi-tenant solver service.
pub struct Service {
    opts: ServeOptions,
    cache: PreparedCache,
    sched: Scheduler,
    /// 1-based count of protocol lines seen, carried into every error.
    line_no: usize,
    results: HashMap<(String, String), JobOutcome>,
    /// Measured-rate calibration of the submit-time cost estimates:
    /// running mean of realized device-seconds per (content key, job
    /// kind). The closed-form §4.4 estimate prices a job the service has
    /// never run; once a key has completed, its realized cost replaces the
    /// model, so the fair scheduler divides device-seconds tenants
    /// actually consume, not what the nominal rate predicts.
    realized: HashMap<(u64, JobKind), (f64, usize)>,
}

impl Service {
    pub fn new(opts: ServeOptions) -> Self {
        let cache = PreparedCache::new(opts.cache_budget_bytes);
        let sched = Scheduler::new(opts.quantum_s);
        Service {
            opts,
            cache,
            sched,
            line_no: 0,
            results: HashMap::new(),
            realized: HashMap::new(),
        }
    }

    /// Cache counters (hits/misses/evictions/bytes).
    pub fn cache_stats(&self) -> SessionCacheStats {
        self.cache.stats()
    }

    /// Per-tenant roll-ups, sorted by tenant name.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.sched.stats()
    }

    /// Handle one raw protocol line. Returns the response lines plus a
    /// shutdown flag. Never panics on malformed input — malformed lines
    /// produce a single structured error response.
    pub fn handle_line(&mut self, raw: &[u8]) -> (Vec<String>, bool) {
        self.line_no += 1;
        let trimmed = trim_line(raw);
        if trimmed.is_empty() {
            // blank lines are keep-alives, not errors
            return (Vec::new(), false);
        }
        match parse_request(trimmed, self.line_no) {
            Err(e) => (vec![e.to_response()], false),
            Ok(Request::Submit(job)) => (vec![self.submit(job)], false),
            Ok(Request::Run { budget_s }) => (self.run(budget_s), false),
            Ok(Request::Cancel { tenant, job }) => {
                let hit = self.sched.cancel(&tenant, &job);
                let mut s = String::from("{\"ok\":true,\"event\":\"cancel\",\"cancelled\":");
                s.push_str(if hit { "true" } else { "false" });
                s.push('}');
                (vec![s], false)
            }
            Ok(Request::Stats) => (vec![self.stats_line()], false),
            Ok(Request::Shutdown) => (vec!["{\"ok\":true,\"event\":\"bye\"}".to_string()], true),
        }
    }

    fn submit(&mut self, job: JobRequest) -> String {
        if let Err(msg) = self.admit(&job) {
            self.sched.note_rejected(&job.tenant);
            let mut s = String::from("{\"ok\":false,\"error\":{\"kind\":\"admission\",\"line\":");
            s.push_str(&self.line_no.to_string());
            s.push_str(",\"msg\":");
            write_json_str(&mut s, &msg);
            s.push_str("}}");
            return s;
        }
        let key = content_key(&job.spec, job.precision, &self.opts.feti);
        let est = match self.realized.get(&(key, job.kind)) {
            Some((mean, _)) => *mean,
            None => estimate_job_seconds(&job.spec),
        };
        let op = op_name(job.kind);
        let tenant = job.tenant.clone();
        let id = job.job.clone();
        let depth = self.sched.submit(job, key, est);
        let mut s = String::from("{\"ok\":true,\"event\":\"accepted\",\"op\":");
        write_json_str(&mut s, op);
        s.push_str(",\"tenant\":");
        write_json_str(&mut s, &tenant);
        s.push_str(",\"job\":");
        write_json_str(&mut s, &id);
        s.push_str(&format!(",\"queued\":{depth},\"est_s\":"));
        write_json_f64(&mut s, est);
        s.push('}');
        s
    }

    /// Admission control: a cluster job whose per-subdomain working set
    /// cannot fit the largest device arena would deadlock the batch
    /// driver's spill logic at best — reject it up front, analytically,
    /// before any preprocessing is spent on it.
    fn admit(&self, job: &JobRequest) -> Result<(), String> {
        if job.backend == BackendTag::Cpu {
            return Ok(()); // host jobs never touch the arena
        }
        let need = working_set_bytes(&job.spec, job.precision);
        let cap = self.opts.pool.max_arena_capacity();
        if need > cap {
            return Err(format!(
                "per-subdomain working set ~{need} B exceeds the largest \
                 device arena ({cap} B); resubmit with backend \"cpu\" or a \
                 coarser decomposition"
            ));
        }
        Ok(())
    }

    fn run(&mut self, budget_s: Option<f64>) -> Vec<String> {
        let mut lines = Vec::new();
        let mut spent = 0.0_f64;
        let mut drained = 0usize;
        while let Some((tenant, qj)) = self.sched.pop_next() {
            if let Some(budget) = budget_s {
                if spent >= budget {
                    self.sched.requeue_front(&tenant, qj);
                    break;
                }
            }
            let outcome = self.execute(&tenant, &qj);
            self.sched.complete(
                &tenant,
                &qj,
                outcome.device_s,
                outcome.prep_s,
                outcome.cache_hit,
            );
            let (mean, n) = self
                .realized
                .entry((qj.key, qj.req.kind))
                .or_insert((0.0, 0));
            *n += 1;
            *mean += (outcome.device_s - *mean) / *n as f64; // sc-analyze: allow(precision-discipline)
            spent += outcome.device_s;
            drained += 1;
            lines.push(done_line(&outcome));
            if self.opts.keep_results {
                self.results
                    .insert((outcome.tenant.clone(), outcome.job.clone()), outcome);
            }
        }
        let mut fin = String::from("{\"ok\":true,\"event\":\"drained\",\"jobs\":");
        fin.push_str(&drained.to_string());
        fin.push_str(",\"device_s\":");
        write_json_f64(&mut fin, spent);
        fin.push_str(&format!(",\"queued\":{}}}", self.sched.queued()));
        lines.push(fin);
        lines
    }

    /// Run one dispatched job against the pool, via the cross-session cache.
    fn execute(&mut self, tenant: &str, qj: &QueuedJob) -> JobOutcome {
        let req = &qj.req;
        // Cache lookup happens at dispatch, not submit: an entry evicted
        // while the job queued is simply re-prepared here.
        let (prep, cache_hit, prep_s) = match self.cache.get(qj.key) {
            Some(p) => (p, true, 0.0),
            None => {
                let t0 = Instant::now();
                let built = Arc::new(prepare(&req.spec, &self.opts.feti));
                let secs = t0.elapsed().as_secs_f64();
                let bytes = built.bytes;
                self.cache.insert(qj.key, Arc::clone(&built), bytes);
                (built, false, secs)
            }
        };
        let mut outcome = JobOutcome {
            tenant: tenant.to_string(),
            job: req.job.clone(),
            kind: req.kind,
            cache_hit,
            prep_s,
            device_s: 0.0,
            iterations: None,
            rel_residual: None,
            lambda: None,
            u_locals: None,
        };

        // Fast path: a pure-f64 host assembly can run straight against the
        // cached factors and the bundle's shared block-cut resolutions —
        // no solver build, no device pool.
        if req.kind == JobKind::Assemble
            && req.backend == BackendTag::Cpu
            && req.precision == PrecisionTag::F64
        {
            let t0 = Instant::now();
            let cfg = ScConfig::Auto;
            for f in prep.factors.iter() {
                let owned;
                let l = match f.chol.factor_csc_ref() {
                    Some(l) => l,
                    None => {
                        owned = f.chol.factor_csc();
                        &owned
                    }
                };
                let _f_tilde =
                    assemble_sc_with_cache(&mut CpuExec, l, &f.bt_perm, &cfg, Some(&prep.cuts));
            }
            outcome.device_s = t0.elapsed().as_secs_f64();
            return outcome;
        }

        let backend = match req.backend {
            BackendTag::Cluster => {
                // deterministic device state per job: stream clocks and
                // arenas from a previous tenant's job must not leak in
                self.opts.pool.reset_all();
                Backend::cluster(Arc::clone(&self.opts.pool))
            }
            BackendTag::Cpu => Backend::cpu(),
        }
        .precision(precision_of(req.precision));

        let t0 = Instant::now();
        let solver = FetiSolverBuilder::new()
            .options(self.opts.feti.clone())
            .backend(backend)
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::Auto)
            .factors(Arc::clone(&prep.factors))
            .build(&prep.problem);
        outcome.device_s = match solver.report() {
            Some(r) if r.makespan > 0.0 => r.makespan,
            Some(r) => r.total_seconds,
            None => t0.elapsed().as_secs_f64(),
        };
        if req.kind == JobKind::Solve {
            let sol = if (req.scale - 1.0).abs() > f64::EPSILON {
                let scaled: Vec<Vec<f64>> = prep
                    .problem
                    .subdomains
                    .iter()
                    .map(|sd| sd.f.iter().map(|v| v * req.scale).collect())
                    .collect();
                solver.solve_rhs(&scaled)
            } else {
                solver.solve()
            };
            outcome.iterations = Some(sol.stats.iterations);
            outcome.rel_residual = Some(sol.stats.rel_residual);
            outcome.lambda = Some(sol.lambda);
            outcome.u_locals = Some(sol.u_locals);
        }
        outcome
    }

    fn stats_line(&self) -> String {
        let c = self.cache.stats();
        let mut s = String::from("{\"ok\":true,\"event\":\"stats\",\"cache\":{");
        s.push_str(&format!(
            "\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"bytes\":{},\"budget_bytes\":{}}}",
            c.hits, c.misses, c.evictions, c.entries, c.bytes, c.budget_bytes
        ));
        s.push_str(&format!(
            ",\"queued\":{},\"vclock_s\":",
            self.sched.queued()
        ));
        write_json_f64(&mut s, self.sched.vclock());
        s.push_str(",\"tenants\":[");
        for (i, (name, t)) in self.sched.stats().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"tenant\":");
            write_json_str(&mut s, name);
            s.push_str(&format!(
                ",\"jobs_done\":{},\"jobs_cancelled\":{},\"jobs_expired\":{},\"jobs_rejected\":{}",
                t.jobs_done, t.jobs_cancelled, t.jobs_expired, t.jobs_rejected
            ));
            s.push_str(",\"device_s\":");
            write_json_f64(&mut s, t.device_s);
            s.push_str(",\"prep_s\":");
            write_json_f64(&mut s, t.prep_s);
            s.push_str(",\"queue_wait_s\":");
            write_json_f64(&mut s, t.queue_wait_s);
            s.push_str(&format!(
                ",\"cache_hits\":{},\"cache_misses\":{}",
                t.cache_hits, t.cache_misses
            ));
            s.push_str(",\"hit_ratio\":");
            write_json_f64(&mut s, t.hit_ratio());
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn op_name(kind: JobKind) -> &'static str {
    match kind {
        JobKind::Assemble => "assemble",
        JobKind::Solve => "solve",
    }
}

fn precision_of(tag: PrecisionTag) -> Precision {
    match tag {
        PrecisionTag::F64 => Precision::F64,
        PrecisionTag::F32Refined => Precision::F32Refined {
            refine_tol: 1e-9,
            max_refine: 4,
        },
    }
}

/// Analytic per-subdomain working-set proxy for admission: the dense
/// triangular-solve result `Y` (`n × m`) plus the assembled `F̃` tile
/// (`m × m`) at the working precision's width.
fn working_set_bytes(spec: &MeshSpec, precision: PrecisionTag) -> usize {
    let n = (spec.cells + 1).pow(u32::from(spec.dim));
    let m = if spec.dim == 2 {
        4 * (spec.cells + 1)
    } else {
        6 * (spec.cells + 1) * (spec.cells + 1)
    };
    let width = match precision {
        PrecisionTag::F64 => 8,
        PrecisionTag::F32Refined => 4,
    };
    width * (n * m + m * m)
}

fn done_line(o: &JobOutcome) -> String {
    let mut s = String::from("{\"ok\":true,\"event\":\"done\",\"tenant\":");
    write_json_str(&mut s, &o.tenant);
    s.push_str(",\"job\":");
    write_json_str(&mut s, &o.job);
    s.push_str(",\"op\":");
    write_json_str(&mut s, op_name(o.kind));
    s.push_str(",\"cache\":");
    write_json_str(&mut s, if o.cache_hit { "hit" } else { "miss" });
    s.push_str(",\"prep_s\":");
    write_json_f64(&mut s, o.prep_s);
    s.push_str(",\"device_s\":");
    write_json_f64(&mut s, o.device_s);
    if let Some(it) = o.iterations {
        s.push_str(&format!(",\"iters\":{it}"));
    }
    if let Some(r) = o.rel_residual {
        s.push_str(",\"rel_residual\":");
        write_json_f64(&mut s, r);
    }
    s.push('}');
    s
}

fn trim_line(raw: &[u8]) -> &[u8] {
    let mut s = raw;
    while let [rest @ .., b'\n' | b'\r' | b' ' | b'\t'] = s {
        s = rest;
    }
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    s
}

// ---------------------------------------------------------------------------
// In-process handle
// ---------------------------------------------------------------------------

/// Drive a [`Service`] in-process: the protocol without the wire. Results
/// are retained so tests and the bench harness can compare actual solution
/// vectors (bitwise) instead of re-parsing response lines.
pub struct ServeHandle {
    service: Service,
}

impl ServeHandle {
    pub fn new(mut opts: ServeOptions) -> Self {
        opts.keep_results = true;
        ServeHandle {
            service: Service::new(opts),
        }
    }

    /// Submit one protocol line; returns the response lines.
    pub fn request(&mut self, line: &str) -> Vec<String> {
        self.service.handle_line(line.as_bytes()).0
    }

    /// Take (and remove) the retained outcome of a completed job.
    pub fn take_outcome(&mut self, tenant: &str, job: &str) -> Option<JobOutcome> {
        self.service
            .results
            .remove(&(tenant.to_string(), job.to_string()))
    }

    pub fn cache_stats(&self) -> SessionCacheStats {
        self.service.cache_stats()
    }

    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.service.tenant_stats()
    }
}

// ---------------------------------------------------------------------------
// Wire front-ends
// ---------------------------------------------------------------------------

/// Serve one connection (any `BufRead`/`Write` pair) until EOF or a
/// `shutdown` request. Returns whether shutdown was requested — the
/// service itself survives, holding its cache and tenant state for the
/// next connection.
pub fn serve_connection<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    service: &mut Service,
) -> io::Result<bool> {
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // read_until, not read_line: a line that is not valid UTF-8 must
        // become a protocol error response, not an I/O error
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(false); // EOF
        }
        let (lines, shutdown) = service.handle_line(&buf);
        for line in &lines {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Pipe mode: serve stdin → stdout until EOF or shutdown.
pub fn serve_stdio(opts: ServeOptions) -> io::Result<()> {
    let mut service = Service::new(opts);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    serve_connection(&mut reader, &mut writer, &mut service)?;
    Ok(())
}

/// TCP mode: accept connections sequentially on `addr`, sharing one
/// [`Service`] (and therefore one cache and one fairness ledger) across
/// all of them, until a client sends `shutdown`.
pub fn serve_tcp(addr: &str, opts: ServeOptions) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let mut service = Service::new(opts);
    for conn in listener.incoming() {
        let stream = conn?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        match serve_connection(&mut reader, &mut writer, &mut service) {
            Ok(true) => break,
            Ok(false) => {}
            // a dropped client must not take the service down
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> ServeOptions {
        ServeOptions {
            pool: DevicePool::uniform(DeviceSpec::a100(), 1, 2),
            ..ServeOptions::default()
        }
    }

    fn submit_line(tenant: &str, job: &str, op: &str) -> String {
        format!(
            "{{\"op\":\"{op}\",\"tenant\":\"{tenant}\",\"job\":\"{job}\",\
             \"dim\":2,\"cells\":4,\"subs\":[2,2]}}"
        )
    }

    #[test]
    fn submit_run_stats_lifecycle() {
        let mut h = ServeHandle::new(small_opts());
        let r = h.request(&submit_line("acme", "j1", "solve"));
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("\"event\":\"accepted\""), "{}", r[0]);
        let r = h.request("{\"op\":\"run\"}");
        assert_eq!(r.len(), 2, "one done line + one drained line");
        assert!(r[0].contains("\"event\":\"done\""));
        assert!(r[0].contains("\"cache\":\"miss\""));
        assert!(r[1].contains("\"jobs\":1"));
        let out = h.take_outcome("acme", "j1").expect("retained outcome");
        assert!(out.iterations.expect("solve ran") > 0);
        assert!(!out.lambda.expect("dual solution").is_empty());
        let r = h.request("{\"op\":\"stats\"}");
        assert!(r[0].contains("\"jobs_done\":1"), "{}", r[0]);
    }

    #[test]
    fn second_identical_job_hits_the_cache() {
        let mut h = ServeHandle::new(small_opts());
        h.request(&submit_line("a", "cold", "solve"));
        h.request("{\"op\":\"run\"}");
        h.request(&submit_line("b", "warm", "solve"));
        let r = h.request("{\"op\":\"run\"}");
        assert!(r[0].contains("\"cache\":\"hit\""), "{}", r[0]);
        let s = h.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        let warm = h.take_outcome("b", "warm").expect("outcome");
        assert_eq!(warm.prep_s, 0.0, "hits pay no preprocessing");
    }

    #[test]
    fn malformed_line_yields_protocol_error_not_panic() {
        let mut h = ServeHandle::new(small_opts());
        let r = h.request("{\"op\":\"solve\",}");
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("\"kind\":\"protocol\""), "{}", r[0]);
        // the service keeps working afterwards
        let r = h.request("{\"op\":\"stats\"}");
        assert!(r[0].contains("\"ok\":true"));
    }

    #[test]
    fn oversubscribing_job_is_rejected_at_admission() {
        // 1-device pool, tiny arena via a spec with minimal memory
        let spec = DeviceSpec {
            memory_bytes: 1 << 20,
            ..DeviceSpec::a100()
        };
        let mut h = ServeHandle::new(ServeOptions {
            pool: DevicePool::uniform(spec, 1, 1),
            ..ServeOptions::default()
        });
        let r = h.request(
            "{\"op\":\"solve\",\"tenant\":\"a\",\"job\":\"big\",\
             \"dim\":3,\"cells\":24,\"subs\":[2,2,2]}",
        );
        assert!(r[0].contains("\"kind\":\"admission\""), "{}", r[0]);
        // the same job on the host backend is admitted
        let r = h.request(
            "{\"op\":\"solve\",\"tenant\":\"a\",\"job\":\"big\",\
             \"dim\":3,\"cells\":24,\"subs\":[2,2,2],\"backend\":\"cpu\"}",
        );
        assert!(r[0].contains("\"event\":\"accepted\""), "{}", r[0]);
        let stats = h.tenant_stats();
        assert_eq!(stats[0].1.jobs_rejected, 1);
    }

    #[test]
    fn cpu_assemble_fast_path_warms_the_cut_cache() {
        let mut h = ServeHandle::new(small_opts());
        let line = submit_line("a", "a1", "assemble").replace('}', ",\"backend\":\"cpu\"}");
        h.request(&line);
        h.request("{\"op\":\"run\"}");
        let o = h.take_outcome("a", "a1").expect("outcome");
        assert!(o.iterations.is_none(), "assemble does not run PCPG");
        assert!(o.device_s > 0.0);
    }

    #[test]
    fn serve_connection_speaks_the_wire_protocol() {
        let mut service = Service::new(small_opts());
        let input = format!(
            "{}\n{{\"op\":\"run\"}}\n{{\"op\":\"shutdown\"}}\n",
            submit_line("t", "j", "solve")
        );
        let mut reader = io::Cursor::new(input.into_bytes());
        let mut out: Vec<u8> = Vec::new();
        let shutdown =
            serve_connection(&mut reader, &mut out, &mut service).expect("pipe I/O is infallible");
        assert!(shutdown);
        let text = String::from_utf8(out).expect("responses are UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "accepted, done, drained, bye: {text}");
        assert!(lines[3].contains("bye"));
        // every response line is itself valid protocol JSON
        for (i, l) in lines.iter().enumerate() {
            crate::protocol::parse_json_line(l.as_bytes(), i + 1).expect("valid JSON");
        }
    }

    #[test]
    fn non_utf8_input_is_a_protocol_error() {
        let mut service = Service::new(small_opts());
        let (lines, shutdown) = service.handle_line(&[0xff, 0xfe, b'{', b'}', b'\n']);
        assert!(!shutdown);
        assert!(lines[0].contains("\"kind\":\"protocol\""), "{}", lines[0]);
    }
}
