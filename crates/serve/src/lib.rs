//! `sc_serve` — a persistent multi-tenant solver service over the
//! assembly/solver stack.
//!
//! A FETI shop rarely solves one problem once: design loops, load sweeps,
//! and parameter studies resubmit the *same decomposition* with different
//! loads, precisions, and tenants. The expensive preprocessing — mesh
//! decomposition, per-subdomain regularized Cholesky (symbolic + numeric),
//! stepped block-cut resolution — is a pure function of the problem
//! content, so a long-lived service can pay it once and amortize it across
//! every later job, whoever submits it.
//!
//! Three layers:
//!
//! - [`protocol`] — a strict JSON-lines job-intake protocol (hand-rolled,
//!   zero dependencies) with line/field-accurate [`ProtoError`]s. Fuzzed
//!   in `tests/intake.rs`: arbitrary bytes never panic the parser, and
//!   [`encode_request`] → [`parse_request`] is lossless.
//! - [`cache`] — the cross-session prepared-state cache: a byte-budgeted
//!   LRU ([`sc_core::SessionCache`]) keyed by a content hash of
//!   *(mesh spec, precision, factorization options)*. Warm solves are
//!   bitwise identical to cold ones (pinned in `tests/cache.rs`).
//! - [`scheduler`] + [`server`] — weighted deficit-round-robin fairness in
//!   estimated device-seconds, admission control against the shared
//!   [`sc_gpu::DevicePool`] arena, per-job timeout/cancellation, and
//!   per-tenant roll-ups, behind pipe/TCP front-ends plus the in-process
//!   [`ServeHandle`].
//!
//! ```
//! use sc_serve::{ServeHandle, ServeOptions};
//!
//! let mut h = ServeHandle::new(ServeOptions::default());
//! h.request(r#"{"op":"solve","tenant":"acme","job":"j1","dim":2,"cells":4,"subs":[2,2]}"#);
//! let responses = h.request(r#"{"op":"run"}"#);
//! assert!(responses.last().expect("drained line").contains("\"jobs\":1"));
//! let outcome = h.take_outcome("acme", "j1").expect("retained result");
//! assert!(outcome.iterations.expect("PCPG ran") > 0);
//! ```

pub mod cache;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{content_key, prepare, PreparedCache, PreparedSession};
pub use protocol::{
    encode_request, parse_json_line, parse_request, BackendTag, GluingTag, JVal, JobKind,
    JobRequest, MeshSpec, PrecisionTag, ProtoError, Request,
};
pub use scheduler::{estimate_job_seconds, QueuedJob, Scheduler, TenantStats};
pub use server::{
    serve_connection, serve_stdio, serve_tcp, JobOutcome, ServeHandle, ServeOptions, Service,
};
