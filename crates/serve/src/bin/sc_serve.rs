//! The `sc_serve` binary: run the solver service on stdin/stdout (pipe
//! mode, the default) or a TCP listener.
//!
//! ```text
//! sc_serve [--tcp ADDR] [--devices N] [--streams N] [--cache-mb MB]
//! ```
//!
//! Pipe mode serves exactly one session (EOF or `{"op":"shutdown"}` ends
//! it); TCP mode accepts connections sequentially, sharing one service —
//! one cache, one fairness ledger — across all of them.

use std::process::ExitCode;
use std::sync::Arc;

use sc_gpu::{DevicePool, DeviceSpec};
use sc_serve::{serve_stdio, serve_tcp, ServeOptions};

struct Args {
    tcp: Option<String>,
    devices: usize,
    streams: usize,
    cache_mb: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        devices: 2,
        streams: 2,
        cache_mb: 256,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--tcp" => args.tcp = Some(val("--tcp")?),
            "--devices" => {
                args.devices = val("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?
            }
            "--streams" => {
                args.streams = val("--streams")?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?
            }
            "--cache-mb" => {
                args.cache_mb = val("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: sc_serve [--tcp ADDR] [--devices N] [--streams N] [--cache-mb MB]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument \"{other}\"")),
        }
    }
    if args.devices == 0 || args.streams == 0 {
        return Err("--devices and --streams must be positive".to_string());
    }
    Ok(args)
}

fn pool_of(args: &Args) -> Arc<DevicePool> {
    DevicePool::uniform(DeviceSpec::a100(), args.devices, args.streams)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sc_serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = ServeOptions {
        pool: pool_of(&args),
        cache_budget_bytes: args.cache_mb << 20,
        ..ServeOptions::default()
    };
    let result = match &args.tcp {
        Some(addr) => {
            eprintln!("sc_serve: listening on {addr}");
            serve_tcp(addr, opts)
        }
        None => serve_stdio(opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sc_serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
