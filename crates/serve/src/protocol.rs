//! The JSON-lines job-intake protocol: a strict hand-rolled parser with
//! line/field-accurate errors, typed request decoding, and a canonical
//! single-line writer.
//!
//! One request per line, one (or more, for `run`) response lines back. The
//! writer follows the `sc_bench::json` style — compact, deterministic field
//! order — but is independent of it: the serve crate sits *below* the bench
//! crate (the `serve` perf-gate bin lives in `sc_bench`), so depending on it
//! would be circular.
//!
//! Strictness is the point: the parser rejects trailing garbage, duplicate
//! keys, unknown fields, lone surrogates and over-deep nesting with a
//! structured [`ProtoError`] naming the line and (for decode errors) the
//! field — never a panic, which the fuzz proptests in `tests/intake.rs`
//! pin on arbitrary byte streams.

use std::fmt;

/// Nesting depth cap: recursion on attacker-controlled input must be
/// bounded or a line of ten thousand `[`s overflows the stack.
const MAX_DEPTH: usize = 32;

/// Hard cap on request line length (1 MiB): a session server must bound
/// per-request memory before parsing anything.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A structured protocol error: which line of the session stream, which
/// field (when decoding a syntactically valid request), and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// 1-based line number in the session stream.
    pub line: usize,
    /// Dotted field path for decode errors (`"subs[1]"`, `"cells"`);
    /// `None` for lexical/syntax errors.
    pub field: Option<String>,
    /// Human-readable cause.
    pub msg: String,
}

impl ProtoError {
    fn syntax(line: usize, msg: impl Into<String>) -> Self {
        ProtoError {
            line,
            field: None,
            msg: msg.into(),
        }
    }

    fn field(line: usize, field: impl Into<String>, msg: impl Into<String>) -> Self {
        ProtoError {
            line,
            field: Some(field.into()),
            msg: msg.into(),
        }
    }

    /// The error as a protocol response line.
    pub fn to_response(&self) -> String {
        let mut s = String::from("{\"ok\":false,\"error\":{\"kind\":\"protocol\",\"line\":");
        s.push_str(&self.line.to_string());
        if let Some(f) = &self.field {
            s.push_str(",\"field\":");
            write_json_str(&mut s, f);
        }
        s.push_str(",\"msg\":");
        write_json_str(&mut s, &self.msg);
        s.push_str("}}");
        s
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.field {
            Some(fld) => write!(f, "line {}, field \"{}\": {}", self.line, fld, self.msg),
            None => write!(f, "line {}: {}", self.line, self.msg),
        }
    }
}

/// Parsed JSON value. Integers without fraction/exponent that fit `i64`
/// stay exact ([`JVal::Int`]); objects keep insertion order so a parse →
/// write round trip is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn type_name(&self) -> &'static str {
        match self {
            JVal::Null => "null",
            JVal::Bool(_) => "bool",
            JVal::Int(_) => "integer",
            JVal::Num(_) => "number",
            JVal::Str(_) => "string",
            JVal::Arr(_) => "array",
            JVal::Obj(_) => "object",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ProtoError {
        ProtoError::syntax(self.line, format!("{} (byte {})", msg.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ProtoError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format!(
                "expected '{}', found '{}'",
                want as char,
                printable(b)
            ))),
            None => Err(self.err(format!("expected '{}', found end of line", want as char))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<JVal, ProtoError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("expected a value, found end of line")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.keyword("true", JVal::Bool(true)),
            Some(b'f') => self.keyword("false", JVal::Bool(false)),
            Some(b'n') => self.keyword("null", JVal::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", printable(b)))),
        }
    }

    fn keyword(&mut self, word: &str, val: JVal) -> Result<JVal, ProtoError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(format!("invalid keyword (expected \"{word}\")")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JVal, ProtoError> {
        self.expect_byte(b'{')?;
        let mut fields: Vec<(String, JVal)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| ProtoError {
                msg: format!("object key: {}", e.msg),
                ..e
            })?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(ProtoError::field(self.line, key, "duplicate key"));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JVal::Obj(fields)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        printable(b)
                    )))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JVal, ProtoError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JVal::Arr(items)),
                Some(b) => {
                    return Err(self.err(format!(
                        "expected ',' or ']' in array, found '{}'",
                        printable(b)
                    )))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.err("unterminated escape")),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // high surrogate: require a low surrogate next
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    Some(b) => return Err(self.err(format!("invalid escape '\\{}'", printable(b)))),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // re-validate multi-byte UTF-8 from the raw bytes
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if len == 0 || start + len > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtoError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JVal, ProtoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1
            && self.bytes[if start == self.pos - int_digits {
                start
            } else {
                start + 1
            }] == b'0'
        {
            return Err(self.err("leading zero in number"));
        }
        let mut is_int = true;
        if self.peek() == Some(b'.') {
            is_int = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_int = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are pure ASCII");
        if is_int {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JVal::Int(i));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number \"{text}\"")))?;
        if !v.is_finite() {
            return Err(self.err(format!("number \"{text}\" overflows to infinity")));
        }
        Ok(JVal::Num(v))
    }

    fn digits(&mut self) -> Result<usize, ProtoError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

fn printable(b: u8) -> String {
    if (0x20..0x7f).contains(&b) {
        (b as char).to_string()
    } else {
        format!("\\x{b:02x}")
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF4 => 4,
        _ => 0,
    }
}

/// Parse one line into a [`JVal`], rejecting trailing garbage. `line_no` is
/// the 1-based position in the session stream, carried into errors.
pub fn parse_json_line(line: &[u8], line_no: usize) -> Result<JVal, ProtoError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtoError::syntax(
            line_no,
            format!("request longer than {MAX_LINE_BYTES} bytes"),
        ));
    }
    let mut p = Parser {
        bytes: line,
        pos: 0,
        line: line_no,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != line.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(v)
}

/// Escape + quote a string into `out` (writer side).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` in Rust's shortest round-trip form (the property the
/// lossless round-trip proptest relies on). Non-finite values must be
/// rejected before they reach the writer.
pub fn write_json_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "non-finite numbers are not valid JSON");
    let s = format!("{v}");
    out.push_str(&s);
    // "5" alone would re-parse as Int; keep the float-ness explicit
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

// ---------------------------------------------------------------------------
// Typed requests
// ---------------------------------------------------------------------------

/// What a job does once scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Preprocess + assemble the explicit dual operators; no PCPG run.
    Assemble,
    /// Preprocess, assemble, and solve (optionally with scaled loads).
    Solve,
}

/// Subdomain gluing selector (mirrors `sc_fem::Gluing`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GluingTag {
    Redundant,
    Chain,
}

/// Working precision selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecisionTag {
    /// Full `f64`.
    F64,
    /// `f32` assembly/apply under `f64` iterative refinement.
    F32Refined,
}

/// Execution target selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendTag {
    /// The shared simulated-GPU device pool (the service default).
    Cluster,
    /// Host-only assembly (no pool devices touched).
    Cpu,
}

/// The mesh/decomposition content of a job — together with config and
/// precision this is what the session cache keys on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshSpec {
    /// 2 or 3.
    pub dim: u8,
    /// Cells per subdomain edge.
    pub cells: usize,
    /// Subdomain grid (`sz = 1` for 2D).
    pub subs: (usize, usize, usize),
    /// Gluing of the decomposition.
    pub gluing: GluingTag,
}

/// One queued unit of work (`op: "assemble"` / `op: "solve"`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    pub kind: JobKind,
    /// Tenant the job bills to.
    pub tenant: String,
    /// Caller-chosen id, unique per tenant among queued jobs.
    pub job: String,
    pub spec: MeshSpec,
    pub precision: PrecisionTag,
    pub backend: BackendTag,
    /// Load scale of a solve (`f → scale · f`); 1.0 = the problem's own.
    pub scale: f64,
    /// Updates the tenant's fair-share weight when present (> 0).
    pub weight: Option<f64>,
    /// Expire the job if its queue wait exceeds this (virtual seconds).
    pub timeout_s: Option<f64>,
}

/// A decoded protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Submit(JobRequest),
    /// Drain queued jobs in fair-share order; stop once realized
    /// device-seconds exceed the budget (when given).
    Run {
        budget_s: Option<f64>,
    },
    Cancel {
        tenant: String,
        job: String,
    },
    Stats,
    Shutdown,
}

struct FieldReader {
    line: usize,
    fields: Vec<(String, JVal)>,
    taken: Vec<String>,
}

impl FieldReader {
    fn new(v: JVal, line: usize) -> Result<Self, ProtoError> {
        match v {
            JVal::Obj(fields) => Ok(FieldReader {
                line,
                fields,
                taken: Vec::new(),
            }),
            other => Err(ProtoError::syntax(
                line,
                format!("request must be an object, got {}", other.type_name()),
            )),
        }
    }

    fn take(&mut self, name: &str) -> Option<JVal> {
        let i = self.fields.iter().position(|(k, _)| k == name)?;
        self.taken.push(name.to_string());
        Some(self.fields.remove(i).1)
    }

    fn req_str(&mut self, name: &str) -> Result<String, ProtoError> {
        match self.take(name) {
            Some(JVal::Str(s)) => Ok(s),
            Some(v) => Err(ProtoError::field(
                self.line,
                name,
                format!("expected string, got {}", v.type_name()),
            )),
            None => Err(ProtoError::field(self.line, name, "missing required field")),
        }
    }

    fn req_usize(&mut self, name: &str) -> Result<usize, ProtoError> {
        match self.take(name) {
            Some(JVal::Int(i)) if i >= 0 => Ok(i as usize),
            Some(v) => Err(ProtoError::field(
                self.line,
                name,
                format!("expected unsigned integer, got {}", describe(&v)),
            )),
            None => Err(ProtoError::field(self.line, name, "missing required field")),
        }
    }

    fn opt_f64(&mut self, name: &str) -> Result<Option<f64>, ProtoError> {
        match self.take(name) {
            None => Ok(None),
            Some(JVal::Num(v)) if v.is_finite() => Ok(Some(v)),
            Some(JVal::Int(i)) => Ok(Some(i as f64)), // sc-analyze: allow(precision-discipline)
            Some(v) => Err(ProtoError::field(
                self.line,
                name,
                format!("expected finite number, got {}", describe(&v)),
            )),
        }
    }

    fn opt_str(&mut self, name: &str) -> Result<Option<String>, ProtoError> {
        match self.take(name) {
            None => Ok(None),
            Some(JVal::Str(s)) => Ok(Some(s)),
            Some(v) => Err(ProtoError::field(
                self.line,
                name,
                format!("expected string, got {}", v.type_name()),
            )),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if let Some((k, _)) = self.fields.first() {
            return Err(ProtoError::field(self.line, k.clone(), "unknown field"));
        }
        Ok(())
    }
}

fn describe(v: &JVal) -> String {
    match v {
        JVal::Int(i) => format!("integer {i}"),
        JVal::Num(n) => format!("number {n}"),
        other => other.type_name().to_string(),
    }
}

/// Decode one syntactically parsed line into a typed [`Request`].
pub fn decode_request(v: JVal, line_no: usize) -> Result<Request, ProtoError> {
    let mut r = FieldReader::new(v, line_no)?;
    let op = r.req_str("op")?;
    let req = match op.as_str() {
        "assemble" | "solve" => {
            let kind = if op == "assemble" {
                JobKind::Assemble
            } else {
                JobKind::Solve
            };
            let tenant = r.req_str("tenant")?;
            if tenant.is_empty() {
                return Err(ProtoError::field(line_no, "tenant", "must be non-empty"));
            }
            let job = r.req_str("job")?;
            if job.is_empty() {
                return Err(ProtoError::field(line_no, "job", "must be non-empty"));
            }
            let dim = r.req_usize("dim")?;
            if dim != 2 && dim != 3 {
                return Err(ProtoError::field(
                    line_no,
                    "dim",
                    format!("must be 2 or 3, got {dim}"),
                ));
            }
            let cells = r.req_usize("cells")?;
            if cells == 0 || cells > 4096 {
                return Err(ProtoError::field(
                    line_no,
                    "cells",
                    format!("must be in 1..=4096, got {cells}"),
                ));
            }
            let subs = match r.take("subs") {
                Some(JVal::Arr(items)) => {
                    if items.len() != dim {
                        return Err(ProtoError::field(
                            line_no,
                            "subs",
                            format!("expected {dim} entries for dim {dim}, got {}", items.len()),
                        ));
                    }
                    let mut out = [1usize; 3];
                    for (i, item) in items.iter().enumerate() {
                        match item {
                            JVal::Int(v) if *v >= 1 && *v <= 4096 => out[i] = *v as usize,
                            other => {
                                return Err(ProtoError::field(
                                    line_no,
                                    format!("subs[{i}]"),
                                    format!(
                                        "expected integer in 1..=4096, got {}",
                                        describe(other)
                                    ),
                                ))
                            }
                        }
                    }
                    (out[0], out[1], out[2])
                }
                Some(v) => {
                    return Err(ProtoError::field(
                        line_no,
                        "subs",
                        format!("expected array, got {}", v.type_name()),
                    ))
                }
                None => return Err(ProtoError::field(line_no, "subs", "missing required field")),
            };
            let gluing = match r.opt_str("gluing")?.as_deref() {
                None | Some("redundant") => GluingTag::Redundant,
                Some("chain") => GluingTag::Chain,
                Some(other) => {
                    return Err(ProtoError::field(
                        line_no,
                        "gluing",
                        format!("expected \"redundant\" or \"chain\", got \"{other}\""),
                    ))
                }
            };
            let precision = match r.opt_str("precision")?.as_deref() {
                None | Some("f64") => PrecisionTag::F64,
                Some("f32_refined") => PrecisionTag::F32Refined,
                Some(other) => {
                    return Err(ProtoError::field(
                        line_no,
                        "precision",
                        format!("expected \"f64\" or \"f32_refined\", got \"{other}\""),
                    ))
                }
            };
            let backend = match r.opt_str("backend")?.as_deref() {
                None | Some("cluster") => BackendTag::Cluster,
                Some("cpu") => BackendTag::Cpu,
                Some(other) => {
                    return Err(ProtoError::field(
                        line_no,
                        "backend",
                        format!("expected \"cluster\" or \"cpu\", got \"{other}\""),
                    ))
                }
            };
            let scale = r.opt_f64("scale")?.unwrap_or(1.0);
            let weight = r.opt_f64("weight")?;
            if let Some(w) = weight {
                if w <= 0.0 {
                    return Err(ProtoError::field(
                        line_no,
                        "weight",
                        format!("must be positive, got {w}"),
                    ));
                }
            }
            let timeout_s = r.opt_f64("timeout_s")?;
            if let Some(t) = timeout_s {
                if t < 0.0 {
                    return Err(ProtoError::field(
                        line_no,
                        "timeout_s",
                        format!("must be non-negative, got {t}"),
                    ));
                }
            }
            Request::Submit(JobRequest {
                kind,
                tenant,
                job,
                spec: MeshSpec {
                    dim: dim as u8,
                    cells,
                    subs,
                    gluing,
                },
                precision,
                backend,
                scale,
                weight,
                timeout_s,
            })
        }
        "run" => Request::Run {
            budget_s: {
                let b = r.opt_f64("budget_s")?;
                if let Some(v) = b {
                    if v < 0.0 {
                        return Err(ProtoError::field(
                            line_no,
                            "budget_s",
                            format!("must be non-negative, got {v}"),
                        ));
                    }
                }
                b
            },
        },
        "cancel" => Request::Cancel {
            tenant: r.req_str("tenant")?,
            job: r.req_str("job")?,
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtoError::field(
                line_no,
                "op",
                format!(
                "unknown op \"{other}\" (expected assemble, solve, run, cancel, stats, shutdown)"
            ),
            ))
        }
    };
    r.finish()?;
    Ok(req)
}

/// Parse + decode one request line.
pub fn parse_request(line: &[u8], line_no: usize) -> Result<Request, ProtoError> {
    decode_request(parse_json_line(line, line_no)?, line_no)
}

/// Canonical single-line encoding of a request — `parse_request` of the
/// result yields an equal [`Request`] (the lossless round trip the intake
/// proptests pin).
pub fn encode_request(req: &Request) -> String {
    let mut s = String::new();
    match req {
        Request::Submit(j) => {
            s.push_str("{\"op\":");
            write_json_str(
                &mut s,
                match j.kind {
                    JobKind::Assemble => "assemble",
                    JobKind::Solve => "solve",
                },
            );
            s.push_str(",\"tenant\":");
            write_json_str(&mut s, &j.tenant);
            s.push_str(",\"job\":");
            write_json_str(&mut s, &j.job);
            s.push_str(&format!(",\"dim\":{}", j.spec.dim));
            s.push_str(&format!(",\"cells\":{}", j.spec.cells));
            let (sx, sy, sz) = j.spec.subs;
            if j.spec.dim == 2 {
                s.push_str(&format!(",\"subs\":[{sx},{sy}]"));
            } else {
                s.push_str(&format!(",\"subs\":[{sx},{sy},{sz}]"));
            }
            s.push_str(",\"gluing\":");
            write_json_str(
                &mut s,
                match j.spec.gluing {
                    GluingTag::Redundant => "redundant",
                    GluingTag::Chain => "chain",
                },
            );
            s.push_str(",\"precision\":");
            write_json_str(
                &mut s,
                match j.precision {
                    PrecisionTag::F64 => "f64",
                    PrecisionTag::F32Refined => "f32_refined",
                },
            );
            s.push_str(",\"backend\":");
            write_json_str(
                &mut s,
                match j.backend {
                    BackendTag::Cluster => "cluster",
                    BackendTag::Cpu => "cpu",
                },
            );
            s.push_str(",\"scale\":");
            write_json_f64(&mut s, j.scale);
            if let Some(w) = j.weight {
                s.push_str(",\"weight\":");
                write_json_f64(&mut s, w);
            }
            if let Some(t) = j.timeout_s {
                s.push_str(",\"timeout_s\":");
                write_json_f64(&mut s, t);
            }
            s.push('}');
        }
        Request::Run { budget_s } => {
            s.push_str("{\"op\":\"run\"");
            if let Some(b) = budget_s {
                s.push_str(",\"budget_s\":");
                write_json_f64(&mut s, *b);
            }
            s.push('}');
        }
        Request::Cancel { tenant, job } => {
            s.push_str("{\"op\":\"cancel\",\"tenant\":");
            write_json_str(&mut s, tenant);
            s.push_str(",\"job\":");
            write_json_str(&mut s, job);
            s.push('}');
        }
        Request::Stats => s.push_str("{\"op\":\"stats\"}"),
        Request::Shutdown => s.push_str("{\"op\":\"shutdown\"}"),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_assemble_parses() {
        let line = br#"{"op":"assemble","tenant":"a","job":"j1","dim":2,"cells":4,"subs":[2,2]}"#;
        let req = parse_request(line, 1).unwrap();
        let Request::Submit(j) = req else {
            panic!("expected submit")
        };
        assert_eq!(j.kind, JobKind::Assemble);
        assert_eq!(j.spec.subs, (2, 2, 1));
        assert_eq!(j.precision, PrecisionTag::F64);
        assert!((j.scale - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unknown_field_names_the_field() {
        let line = br#"{"op":"stats","bogus":1}"#;
        let err = parse_request(line, 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert_eq!(err.field.as_deref(), Some("bogus"));
    }

    #[test]
    fn wrong_subs_arity_is_field_accurate() {
        let line = br#"{"op":"solve","tenant":"a","job":"j","dim":3,"cells":2,"subs":[2,2]}"#;
        let err = parse_request(line, 2).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("subs"));
        assert!(err.msg.contains("expected 3 entries"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse_json_line(br#"{"a":1,"a":2}"#, 1).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("a"));
        assert!(err.msg.contains("duplicate"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_json_line(br#"{"op":"stats"} extra"#, 1).unwrap_err();
        assert!(err.msg.contains("trailing"));
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let mut line = Vec::new();
        line.extend(std::iter::repeat_n(b'[', 10_000));
        let err = parse_json_line(&line, 1).unwrap_err();
        assert!(err.msg.contains("nesting"));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        assert_eq!(parse_json_line(b"42", 1).unwrap(), JVal::Int(42));
        assert_eq!(parse_json_line(b"-7", 1).unwrap(), JVal::Int(-7));
        assert_eq!(parse_json_line(b"1.5", 1).unwrap(), JVal::Num(1.5));
        assert_eq!(parse_json_line(b"1e3", 1).unwrap(), JVal::Num(1000.0));
        // i64 overflow falls back to float rather than erroring
        assert!(matches!(
            parse_json_line(b"99999999999999999999", 1).unwrap(),
            JVal::Num(_)
        ));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json_line(r#""a\"b\\c\ndé😀""#.as_bytes(), 1).unwrap();
        assert_eq!(v, JVal::Str("a\"b\\c\ndé😀".to_string()));
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\ndé😀");
        assert_eq!(parse_json_line(out.as_bytes(), 1).unwrap(), v);
    }

    #[test]
    fn lone_surrogate_rejected() {
        assert!(parse_json_line(br#""\ud800""#, 1).is_err());
        assert!(parse_json_line(br#""\udc00x""#, 1).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let req = Request::Submit(JobRequest {
            kind: JobKind::Solve,
            tenant: "tenant-β".into(),
            job: "job \"quoted\"".into(),
            spec: MeshSpec {
                dim: 3,
                cells: 5,
                subs: (2, 3, 1),
                gluing: GluingTag::Chain,
            },
            precision: PrecisionTag::F32Refined,
            backend: BackendTag::Cpu,
            scale: 2.25,
            weight: Some(0.5),
            timeout_s: Some(1.75),
        });
        let line = encode_request(&req);
        assert_eq!(parse_request(line.as_bytes(), 1).unwrap(), req);
    }

    #[test]
    fn error_response_is_itself_valid_json() {
        let err = ProtoError::field(3, "cells", "must be in 1..=4096, got 0");
        let resp = err.to_response();
        parse_json_line(resp.as_bytes(), 1).expect("error responses must parse");
    }
}
