//! Dense Cholesky factorization, full and partial.
//!
//! The full factorization backs the FETI coarse problem (`GᵀG`) and dense
//! reference Schur complements in tests. The *partial* factorization is the
//! workhorse of the multifrontal sparse Cholesky in `sc-factor`: it eliminates
//! the leading `p` pivots of a frontal matrix and leaves the trailing Schur
//! complement (the "update matrix") in place.

use crate::gemm::axpy;
use crate::mat::MatMutOf;
use crate::scalar::Scalar;

/// Error returned when a pivot is not strictly positive, i.e. the matrix is
/// not numerically positive definite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CholError {
    /// Index of the offending pivot.
    pub pivot: usize,
    /// Value found on the diagonal before taking the square root (widened to
    /// `f64` regardless of the working precision).
    pub value: f64,
}

impl std::fmt::Display for CholError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for CholError {}

/// Factor `A = L Lᵀ` in place. On success the lower triangle of `a` holds `L`
/// (the strictly upper triangle is left untouched).
///
/// ```
/// use sc_dense::{cholesky_in_place, Mat};
///
/// // A = [[4, 2], [2, 5]]  =>  L = [[2, 0], [1, 2]]
/// let mut a = Mat::from_col_major(2, 2, vec![4.0, 2.0, 2.0, 5.0]);
/// cholesky_in_place(a.as_mut()).unwrap();
/// assert_eq!(a[(0, 0)], 2.0);
/// assert_eq!(a[(1, 0)], 1.0);
/// assert_eq!(a[(1, 1)], 2.0);
/// ```
pub fn cholesky_in_place<S: Scalar>(a: MatMutOf<'_, S>) -> Result<(), CholError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "cholesky needs a square matrix");
    partial_cholesky_in_place(a, n)
}

/// Eliminate the leading `p` pivots of the symmetric matrix in `a` (lower
/// triangle stored), leaving:
///
/// - columns `0..p`: the first `p` columns of the Cholesky factor `L`;
/// - trailing block `a[p.., p..]`: the Schur complement
///   `A₂₂ − L₂₁ L₂₁ᵀ` (lower triangle).
///
/// Above [`crate::blocked::PANEL_BLOCK_MIN_ORDER`] the elimination routes to
/// the blocked panel variant ([`crate::partial_cholesky_blocked`]); smaller
/// fronts run the scalar reference ([`partial_cholesky_scalar`]).
pub fn partial_cholesky_in_place<S: Scalar>(a: MatMutOf<'_, S>, p: usize) -> Result<(), CholError> {
    if a.nrows() >= crate::blocked::PANEL_BLOCK_MIN_ORDER && p >= crate::blocked::NB {
        crate::blocked::partial_cholesky_blocked(a, p)
    } else {
        partial_cholesky_scalar(a, p)
    }
}

/// Scalar reference partial Cholesky (the pre-blocking kernel, kept as the
/// comparison baseline for the blocked path).
///
/// This is right-looking outer-product elimination; with `p == n` it is a
/// complete Cholesky factorization.
pub fn partial_cholesky_scalar<S: Scalar>(
    mut a: MatMutOf<'_, S>,
    p: usize,
) -> Result<(), CholError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "partial cholesky needs a square matrix");
    assert!(p <= n);
    for k in 0..p {
        let dkk = a.get(k, k);
        if dkk <= S::ZERO || !dkk.is_finite() {
            return Err(CholError {
                pivot: k,
                value: dkk.to_f64(),
            });
        }
        let lkk = dkk.sqrt();
        {
            let ck = a.col_mut(k);
            ck[k] = lkk;
            let inv = S::ONE / lkk;
            for v in &mut ck[k + 1..] {
                *v *= inv;
            }
        }
        // Trailing update: A[j.., j] -= L[j.., k] * L[j, k] for j > k.
        for j in k + 1..n {
            let ljk = a.get(j, k);
            // sc-analyze: allow(float-eq)
            if ljk == S::ZERO {
                continue;
            }
            // Need disjoint access to columns k (read) and j (write): split at j.
            let (left, mut right) = a.as_mut().split_cols_at(j);
            let lk = &left.col(k)[j..];
            let cj = &mut right.col_mut(0)[j..];
            axpy(-ljk, lk, cj);
        }
    }
    Ok(())
}

/// Solve `A x = b` given the in-place factor produced by
/// [`cholesky_in_place`] (two triangular solves).
pub fn cholesky_solve<S: Scalar>(l: crate::mat::MatRefOf<'_, S>, b: &mut [S]) {
    crate::gemv::trsv_lower(l, b);
    crate::gemv::trsv_lower_t(l, b);
}

/// log-determinant of `A = L Lᵀ` from its factor: `2 Σ log L[k,k]`
/// (accumulated in the working precision, reported in `f64`).
pub fn cholesky_logdet<S: Scalar>(l: crate::mat::MatRefOf<'_, S>) -> f64 {
    let mut s = S::ZERO;
    for k in 0..l.nrows() {
        s += l.get(k, k).ln();
    }
    2.0 * s.to_f64()
}

/// Explicitly form the Schur complement `C − Bᵀ A⁻¹ B` of the block matrix
/// `[A B; Bᵀ C]` densely. Reference implementation used by tests against the
/// sparse assembler (`A` SPD `n × n`, `B` `n × m`, `C` lower-stored `m × m`).
pub fn dense_schur_reference<S: Scalar>(
    a: &crate::mat::MatOf<S>,
    b: &crate::mat::MatOf<S>,
    c: &crate::mat::MatOf<S>,
) -> Result<crate::mat::MatOf<S>, CholError> {
    let n = a.nrows();
    let m = b.ncols();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.nrows(), n);
    assert_eq!(c.nrows(), m);
    assert_eq!(c.ncols(), m);
    let mut l = a.clone();
    cholesky_in_place(l.as_mut())?;
    // Y = L^{-1} B
    let mut y = b.clone();
    crate::trsm::trsm_lower_left(l.as_ref(), y.as_mut());
    // S = C - Yᵀ Y (lower triangle)
    let mut s = c.clone();
    crate::syrk::syrk_t(-S::ONE, y.as_ref(), S::ONE, s.as_mut());
    s.symmetrize_from_lower();
    Ok(s)
}

/// Check `‖L Lᵀ − A‖_max` for a factor/matrix pair (test helper).
pub fn reconstruction_error<S: Scalar>(l: &crate::mat::MatOf<S>, a: &crate::mat::MatOf<S>) -> f64 {
    let n = l.nrows();
    let mut err = 0.0f64;
    for j in 0..n {
        for i in j..n {
            // (L Lᵀ)[i,j] = Σ_k L[i,k] L[j,k] for k <= min(i,j) = j
            let mut s = S::ZERO;
            for k in 0..=j {
                s += l[(i, k)] * l[(j, k)];
            }
            err = err.max((s - a[(i, j)]).abs().to_f64());
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let g = Mat::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // A = GᵀG + n·I  => SPD
        let mut a = Mat::zeros(n, n);
        crate::syrk::syrk_t(1.0, g.as_ref(), 0.0, a.as_mut());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a.symmetrize_from_lower();
        a
    }

    #[test]
    fn full_factorization_reconstructs() {
        let a = spd(15, 1);
        let mut l = a.clone();
        cholesky_in_place(l.as_mut()).unwrap();
        assert!(reconstruction_error(&l, &a) < 1e-10);
    }

    #[test]
    fn solve_produces_small_residual() {
        let n = 12;
        let a = spd(n, 2);
        let mut l = a.clone();
        cholesky_in_place(l.as_mut()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        cholesky_solve(l.as_ref(), &mut x);
        let mut r = vec![0.0; n];
        crate::gemv::gemv(1.0, a.as_ref(), &x, 0.0, &mut r);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = Mat::identity(3);
        a[(1, 1)] = -1.0;
        let err = cholesky_in_place(a.as_mut()).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value < 0.0);
    }

    #[test]
    fn partial_factorization_leaves_schur_complement() {
        let n = 10;
        let p = 4;
        let a = spd(n, 3);
        let mut f = a.clone();
        partial_cholesky_in_place(f.as_mut(), p).unwrap();
        // Expected Schur complement: A22 - A21 A11^{-1} A12, computed densely.
        let a11 = a.submatrix(0, 0, p, p);
        let a21 = a.submatrix(p, 0, n - p, p);
        let a22 = a.submatrix(p, p, n - p, n - p);
        let s = dense_schur_reference(&a11, &a21.transpose(), &a22).unwrap();
        for j in 0..(n - p) {
            for i in j..(n - p) {
                assert!(
                    (f[(p + i, p + j)] - s[(i, j)]).abs() < 1e-9,
                    "schur mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn partial_with_p_equals_n_is_full() {
        let a = spd(8, 4);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        cholesky_in_place(f1.as_mut()).unwrap();
        partial_cholesky_in_place(f2.as_mut(), 8).unwrap();
        assert!(crate::max_abs_diff(f1.as_ref(), f2.as_ref()) < 1e-14);
    }

    #[test]
    fn logdet_matches_product_of_pivots() {
        let a = spd(6, 5);
        let mut l = a.clone();
        cholesky_in_place(l.as_mut()).unwrap();
        let ld = cholesky_logdet(l.as_ref());
        let mut prod = 1.0;
        for k in 0..6 {
            prod *= l[(k, k)] * l[(k, k)];
        }
        assert!((ld - prod.ln()).abs() < 1e-10);
    }

    #[test]
    fn dense_schur_reference_identity_blocks() {
        // A = I, B = I, C = 2I  => S = 2I - I = I
        let a = Mat::identity(4);
        let b = Mat::identity(4);
        let mut c = Mat::identity(4);
        for i in 0..4 {
            c[(i, i)] = 2.0;
        }
        let s = dense_schur_reference(&a, &b, &c).unwrap();
        assert!(crate::max_abs_diff(s.as_ref(), Mat::identity(4).as_ref()) < 1e-12);
    }

    #[test]
    fn f32_factorization_reconstructs_loosely() {
        let a = spd(10, 6);
        let a32 = a.cast::<f32>();
        let mut l32 = a32.clone();
        cholesky_in_place(l32.as_mut()).unwrap();
        assert!(reconstruction_error(&l32, &a32) < 1e-3);
        // widened error vs exact f64 factor also small
        let mut l64 = a.clone();
        cholesky_in_place(l64.as_mut()).unwrap();
        assert!(crate::max_abs_diff(l32.cast::<f64>().as_ref(), l64.as_ref()) < 1e-3);
    }
}
