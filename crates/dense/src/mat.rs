//! Column-major dense matrix storage and borrowed views.
//!
//! [`MatOf`] owns its data with leading dimension equal to the row count.
//! [`MatRefOf`]/[`MatMutOf`] are borrowed windows with an explicit leading
//! dimension (`ld`), which is what lets the blocked TRSM/SYRK kernels of the
//! paper address sub-matrices with plain pointer arithmetic ("extracting the
//! submatrix is trivial using pointer arithmetic due to the leading dimension
//! parameter of BLAS routines", §3.2).
//!
//! All three types are generic over the element [`Scalar`] (`f32` or `f64`);
//! the [`Mat`]/[`MatRef`]/[`MatMut`] aliases pin `f64`, keeping every
//! pre-mixed-precision call site source- and bitwise-compatible.

use crate::scalar::Scalar;

/// Owned column-major matrix. `data[j * nrows + i]` is entry `(i, j)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MatOf<S = f64> {
    nrows: usize,
    ncols: usize,
    data: Vec<S>,
}

/// Owned column-major `f64` matrix (the historical default element type).
pub type Mat = MatOf<f64>;

impl<S: Scalar> MatOf<S> {
    /// Zero-filled matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MatOf {
            nrows,
            ncols,
            data: vec![S::ZERO; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = MatOf::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::ONE;
        }
        m
    }

    /// Build a matrix from a generator function `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        MatOf { nrows, ncols, data }
    }

    /// Build from a column-major data vector (length must be `nrows * ncols`).
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        MatOf { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable full view.
    #[inline]
    pub fn as_ref(&self) -> MatRefOf<'_, S> {
        MatRefOf {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            data: &self.data,
        }
    }

    /// Mutable full view.
    #[inline]
    pub fn as_mut(&mut self) -> MatMutOf<'_, S> {
        MatMutOf {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            data: &mut self.data,
        }
    }

    /// Immutable column slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutable column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> MatOf<S> {
        MatOf::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Fill every entry with `v`.
    pub fn fill(&mut self, v: S) {
        self.data.fill(v);
    }

    /// Extract a rectangular copy `rows × cols` starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatOf<S> {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        MatOf::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Mirror the (strictly) lower triangle into the upper triangle in place.
    ///
    /// SYRK-style kernels only fill the lower triangle; the explicit dual
    /// operator application wants a full symmetric matrix.
    pub fn symmetrize_from_lower(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for i in (j + 1)..self.nrows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }

    /// Element-wise precision conversion (through `f64`, the common superset
    /// of both formats). `cast::<f64>()` of an f32 matrix is exact; casting
    /// down rounds to nearest.
    pub fn cast<T: Scalar>(&self) -> MatOf<T> {
        MatOf {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<S: Scalar> std::ops::Index<(usize, usize)> for MatOf<S> {
    type Output = S;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<S: Scalar> std::ops::IndexMut<(usize, usize)> for MatOf<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

/// Immutable view of a column-major matrix window with leading dimension `ld`.
#[derive(Clone, Copy, Debug)]
pub struct MatRefOf<'a, S = f64> {
    nrows: usize,
    ncols: usize,
    ld: usize,
    /// Slice starting at entry (0, 0) of the window; column `j` occupies
    /// `data[j*ld .. j*ld + nrows]`.
    data: &'a [S],
}

/// Immutable `f64` view (the historical default element type).
pub type MatRef<'a> = MatRefOf<'a, f64>;

impl<'a, S: Scalar> MatRefOf<'a, S> {
    /// Construct a view from raw parts. `data` must cover every addressed
    /// entry: `(ncols-1)*ld + nrows <= data.len()` when non-empty.
    pub fn from_parts(nrows: usize, ncols: usize, ld: usize, data: &'a [S]) -> Self {
        assert!(ld >= nrows.max(1));
        if nrows > 0 && ncols > 0 {
            assert!((ncols - 1) * ld + nrows <= data.len(), "view out of bounds");
        }
        MatRefOf {
            nrows,
            ncols,
            ld,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension (stride between consecutive columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Entry access (bounds-checked in debug builds only).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i]
    }

    /// Column `j` as a contiguous slice of length `nrows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [S] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Sub-window of shape `rows × cols` at offset `(r0, c0)`.
    #[inline]
    pub fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatRefOf<'a, S> {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        let start = c0 * self.ld + r0;
        let end = if rows > 0 && cols > 0 {
            start + (cols - 1) * self.ld + rows
        } else {
            start
        };
        MatRefOf {
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            data: &self.data[start..end.max(start)],
        }
    }

    /// Copy into an owned [`MatOf`].
    pub fn to_mat(&self) -> MatOf<S> {
        MatOf::from_fn(self.nrows, self.ncols, |i, j| self.get(i, j))
    }
}

/// Mutable view of a column-major matrix window with leading dimension `ld`.
#[derive(Debug)]
pub struct MatMutOf<'a, S = f64> {
    nrows: usize,
    ncols: usize,
    ld: usize,
    data: &'a mut [S],
}

/// Mutable `f64` view (the historical default element type).
pub type MatMut<'a> = MatMutOf<'a, f64>;

impl<'a, S: Scalar> MatMutOf<'a, S> {
    /// Construct a mutable view from raw parts (same contract as
    /// [`MatRefOf::from_parts`]).
    pub fn from_parts(nrows: usize, ncols: usize, ld: usize, data: &'a mut [S]) -> Self {
        assert!(ld >= nrows.max(1));
        if nrows > 0 && ncols > 0 {
            assert!((ncols - 1) * ld + nrows <= data.len(), "view out of bounds");
        }
        MatMutOf {
            nrows,
            ncols,
            ld,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension (stride between consecutive columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Immutable reborrow.
    #[inline]
    pub fn as_ref(&self) -> MatRefOf<'_, S> {
        MatRefOf {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Mutable reborrow (shorter lifetime).
    #[inline]
    pub fn as_mut(&mut self) -> MatMutOf<'_, S> {
        MatMutOf {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Entry access (bounds-checked in debug builds only).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i]
    }

    /// Entry write (bounds-checked in debug builds only).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i] = v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        &mut self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Mutable sub-window of shape `rows × cols` at offset `(r0, c0)`,
    /// consuming the view (use [`Self::as_mut`] to reborrow first).
    pub fn into_sub(self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMutOf<'a, S> {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        let start = c0 * self.ld + r0;
        let end = if rows > 0 && cols > 0 {
            start + (cols - 1) * self.ld + rows
        } else {
            start
        };
        MatMutOf {
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            data: &mut self.data[start..end.max(start)],
        }
    }

    /// Mutable sub-window (reborrowing convenience).
    pub fn sub_mut(&mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMutOf<'_, S> {
        self.as_mut().into_sub(r0, c0, rows, cols)
    }

    /// Split into two disjoint mutable column-block views `[0, c)` and `[c, ncols)`.
    pub fn split_cols_at(self, c: usize) -> (MatMutOf<'a, S>, MatMutOf<'a, S>) {
        assert!(c <= self.ncols);
        let (left, right) = self.data.split_at_mut(c * self.ld);
        (
            MatMutOf {
                nrows: self.nrows,
                ncols: c,
                ld: self.ld,
                data: left,
            },
            MatMutOf {
                nrows: self.nrows,
                ncols: self.ncols - c,
                ld: self.ld,
                data: right,
            },
        )
    }

    /// Copy all entries from `src` (shapes must match).
    pub fn copy_from(&mut self, src: MatRefOf<'_, S>) {
        assert_eq!(self.nrows, src.nrows());
        assert_eq!(self.ncols, src.ncols());
        for j in 0..self.ncols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Set every entry to `v`.
    pub fn fill(&mut self, v: S) {
        for j in 0..self.ncols {
            self.col_mut(j).fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Mat::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.);
        assert_eq!(m[(1, 0)], 2.);
        assert_eq!(m[(0, 1)], 3.);
        assert_eq!(m[(1, 2)], 6.);
    }

    #[test]
    fn views_address_subwindows() {
        let m = Mat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let v = m.as_ref().sub(1, 2, 2, 2);
        assert_eq!(v.get(0, 0), m[(1, 2)]);
        assert_eq!(v.get(1, 1), m[(2, 3)]);
        assert_eq!(v.col(1)[0], m[(1, 3)]);
    }

    #[test]
    fn mut_views_write_through() {
        let mut m = Mat::zeros(3, 3);
        {
            let mut v = m.as_mut().into_sub(1, 1, 2, 2);
            v.set(0, 0, 7.0);
            v.set(1, 1, 8.0);
        }
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(2, 2)], 8.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_cols_gives_disjoint_views() {
        let mut m = Mat::from_fn(2, 4, |_, j| j as f64);
        let (mut l, mut r) = m.as_mut().split_cols_at(2);
        assert_eq!(l.ncols(), 2);
        assert_eq!(r.ncols(), 2);
        l.set(0, 0, -1.0);
        r.set(0, 0, -2.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 2)], -2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetrize_mirrors_lower() {
        let mut m = Mat::zeros(3, 3);
        m[(1, 0)] = 5.0;
        m[(2, 1)] = 6.0;
        m.symmetrize_from_lower();
        assert_eq!(m[(0, 1)], 5.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn submatrix_copies() {
        let m = Mat::from_fn(4, 4, |i, j| (i + 4 * j) as f64);
        let s = m.submatrix(1, 1, 2, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s[(0, 0)], m[(1, 1)]);
        assert_eq!(s[(1, 2)], m[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "view out of bounds")]
    fn view_bounds_checked() {
        let data = vec![0.0; 5];
        MatRef::from_parts(3, 2, 3, &data);
    }

    #[test]
    fn generic_storage_works_in_f32() {
        let m: MatOf<f32> = MatOf::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(m[(2, 1)], 5.0f32);
        let wide: Mat = m.cast();
        assert_eq!(wide[(2, 1)], 5.0f64);
        // f32 → f64 → f32 roundtrip is exact
        assert_eq!(wide.cast::<f32>(), m);
    }
}
