//! Column-major dense matrix storage and borrowed views.
//!
//! [`Mat`] owns its data with leading dimension equal to the row count.
//! [`MatRef`]/[`MatMut`] are borrowed windows with an explicit leading
//! dimension (`ld`), which is what lets the blocked TRSM/SYRK kernels of the
//! paper address sub-matrices with plain pointer arithmetic ("extracting the
//! submatrix is trivial using pointer arithmetic due to the leading dimension
//! parameter of BLAS routines", §3.2).

/// Owned column-major `f64` matrix. `data[j * nrows + i]` is entry `(i, j)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero-filled matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a generator function `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    /// Build from a column-major data vector (length must be `nrows * ncols`).
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        Mat { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable full view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            data: &self.data,
        }
    }

    /// Mutable full view.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            data: &mut self.data,
        }
    }

    /// Immutable column slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutable column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Fill every entry with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Extract a rectangular copy `rows × cols` starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Mat {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        Mat::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Mirror the (strictly) lower triangle into the upper triangle in place.
    ///
    /// SYRK-style kernels only fill the lower triangle; the explicit dual
    /// operator application wants a full symmetric matrix.
    pub fn symmetrize_from_lower(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for i in (j + 1)..self.nrows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

/// Immutable view of a column-major matrix window with leading dimension `ld`.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a> {
    nrows: usize,
    ncols: usize,
    ld: usize,
    /// Slice starting at entry (0, 0) of the window; column `j` occupies
    /// `data[j*ld .. j*ld + nrows]`.
    data: &'a [f64],
}

impl<'a> MatRef<'a> {
    /// Construct a view from raw parts. `data` must cover every addressed
    /// entry: `(ncols-1)*ld + nrows <= data.len()` when non-empty.
    pub fn from_parts(nrows: usize, ncols: usize, ld: usize, data: &'a [f64]) -> Self {
        assert!(ld >= nrows.max(1));
        if nrows > 0 && ncols > 0 {
            assert!((ncols - 1) * ld + nrows <= data.len(), "view out of bounds");
        }
        MatRef {
            nrows,
            ncols,
            ld,
            data,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Entry access (bounds-checked in debug builds only).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i]
    }

    /// Column `j` as a contiguous slice of length `nrows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Sub-window of shape `rows × cols` at offset `(r0, c0)`.
    #[inline]
    pub fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatRef<'a> {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        let start = c0 * self.ld + r0;
        let end = if rows > 0 && cols > 0 {
            start + (cols - 1) * self.ld + rows
        } else {
            start
        };
        MatRef {
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            data: &self.data[start..end.max(start)],
        }
    }

    /// Copy into an owned [`Mat`].
    pub fn to_mat(&self) -> Mat {
        Mat::from_fn(self.nrows, self.ncols, |i, j| self.get(i, j))
    }
}

/// Mutable view of a column-major matrix window with leading dimension `ld`.
#[derive(Debug)]
pub struct MatMut<'a> {
    nrows: usize,
    ncols: usize,
    ld: usize,
    data: &'a mut [f64],
}

impl<'a> MatMut<'a> {
    /// Construct a mutable view from raw parts (same contract as
    /// [`MatRef::from_parts`]).
    pub fn from_parts(nrows: usize, ncols: usize, ld: usize, data: &'a mut [f64]) -> Self {
        assert!(ld >= nrows.max(1));
        if nrows > 0 && ncols > 0 {
            assert!((ncols - 1) * ld + nrows <= data.len(), "view out of bounds");
        }
        MatMut {
            nrows,
            ncols,
            ld,
            data,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Immutable reborrow.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Mutable reborrow (shorter lifetime).
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            data: self.data,
        }
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.ld + i] = v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Mutable sub-window of shape `rows × cols` at offset `(r0, c0)`,
    /// consuming the view (use [`Self::as_mut`] to reborrow first).
    pub fn into_sub(self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMut<'a> {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        let start = c0 * self.ld + r0;
        let end = if rows > 0 && cols > 0 {
            start + (cols - 1) * self.ld + rows
        } else {
            start
        };
        MatMut {
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            data: &mut self.data[start..end.max(start)],
        }
    }

    /// Mutable sub-window (reborrowing convenience).
    pub fn sub_mut(&mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMut<'_> {
        self.as_mut().into_sub(r0, c0, rows, cols)
    }

    /// Split into two disjoint mutable column-block views `[0, c)` and `[c, ncols)`.
    pub fn split_cols_at(self, c: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(c <= self.ncols);
        let (left, right) = self.data.split_at_mut(c * self.ld);
        (
            MatMut {
                nrows: self.nrows,
                ncols: c,
                ld: self.ld,
                data: left,
            },
            MatMut {
                nrows: self.nrows,
                ncols: self.ncols - c,
                ld: self.ld,
                data: right,
            },
        )
    }

    /// Copy all entries from `src` (shapes must match).
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(self.nrows, src.nrows());
        assert_eq!(self.ncols, src.ncols());
        for j in 0..self.ncols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Set every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.ncols {
            self.col_mut(j).fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Mat::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.);
        assert_eq!(m[(1, 0)], 2.);
        assert_eq!(m[(0, 1)], 3.);
        assert_eq!(m[(1, 2)], 6.);
    }

    #[test]
    fn views_address_subwindows() {
        let m = Mat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let v = m.as_ref().sub(1, 2, 2, 2);
        assert_eq!(v.get(0, 0), m[(1, 2)]);
        assert_eq!(v.get(1, 1), m[(2, 3)]);
        assert_eq!(v.col(1)[0], m[(1, 3)]);
    }

    #[test]
    fn mut_views_write_through() {
        let mut m = Mat::zeros(3, 3);
        {
            let mut v = m.as_mut().into_sub(1, 1, 2, 2);
            v.set(0, 0, 7.0);
            v.set(1, 1, 8.0);
        }
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(2, 2)], 8.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_cols_gives_disjoint_views() {
        let mut m = Mat::from_fn(2, 4, |_, j| j as f64);
        let (mut l, mut r) = m.as_mut().split_cols_at(2);
        assert_eq!(l.ncols(), 2);
        assert_eq!(r.ncols(), 2);
        l.set(0, 0, -1.0);
        r.set(0, 0, -2.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 2)], -2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetrize_mirrors_lower() {
        let mut m = Mat::zeros(3, 3);
        m[(1, 0)] = 5.0;
        m[(2, 1)] = 6.0;
        m.symmetrize_from_lower();
        assert_eq!(m[(0, 1)], 5.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn submatrix_copies() {
        let m = Mat::from_fn(4, 4, |i, j| (i + 4 * j) as f64);
        let s = m.submatrix(1, 1, 2, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s[(0, 0)], m[(1, 1)]);
        assert_eq!(s[(1, 2)], m[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "view out of bounds")]
    fn view_bounds_checked() {
        let data = vec![0.0; 5];
        MatRef::from_parts(3, 2, 3, &data);
    }
}
