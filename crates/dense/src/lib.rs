//! Dense linear algebra substrate for the Schur-complement assembler.
//!
//! Provides a column-major [`Mat`] type with borrowed views ([`MatRef`],
//! [`MatMut`]) plus the BLAS-like kernels the paper's algorithms are built
//! from: [`gemm`](gemm::gemm), [`syrk`](syrk::syrk_t), [`trsm`](trsm::trsm_lower_left),
//! [`gemv`](gemv::gemv), and dense [Cholesky](chol) (full and partial, the
//! latter used by the multifrontal factorization's frontal matrices).
//!
//! Every kernel and storage type is generic over the sealed [`Scalar`] trait
//! (`f32`/`f64`); the un-suffixed names ([`Mat`], [`MatRef`], [`MatMut`]) are
//! `f64` aliases of the generic [`MatOf`]/[`MatRefOf`]/[`MatMutOf`] types, so
//! pre-mixed-precision code keeps compiling — and keeps producing bitwise
//! identical results, since the kernels never reorder arithmetic per scalar
//! type.
//!
//! All kernels are sequential by default — the FETI solver parallelizes across
//! subdomains, one worker per subdomain, exactly like the paper's
//! one-thread-per-subdomain loop. Rayon-parallel variants (`par_*`) exist for
//! whole-matrix reference computations in tests and benches.
//!
//! Large problems automatically route to the cache-blocked microkernels in
//! [`blocked`] (packed panel layout in [`pack`]); the scalar kernels remain
//! the reference implementations and the `*_scalar` names stay exported. See
//! `ARCHITECTURE.md` at the workspace root for where these kernels sit in
//! the assembly pipeline, and the README's "Kernel performance" section for
//! the tuning knobs.

pub mod blocked;
pub mod chol;
pub mod gemm;
pub mod gemv;
pub mod mat;
pub mod pack;
pub mod scalar;
pub mod syrk;
pub mod trsm;

pub use blocked::{
    gemm_blocked, par_syrk_t_blocked, par_trsm_lower_left, partial_cholesky_blocked,
    syrk_t_blocked, trsm_lower_left_blocked,
};
pub use chol::{
    cholesky_in_place, cholesky_logdet, cholesky_solve, dense_schur_reference,
    partial_cholesky_in_place, partial_cholesky_scalar, reconstruction_error, CholError,
};
pub use gemm::{gemm, gemm_scalar, par_gemm, Trans};
pub use gemv::{dot, gemv, gemv_t, trsv_lower, trsv_lower_t};
pub use mat::{Mat, MatMut, MatMutOf, MatOf, MatRef, MatRefOf};
pub use pack::{PackedA, PackedB, MR, NR};
pub use scalar::Scalar;
pub use syrk::{par_syrk_t, syrk_t, syrk_t_scalar};
pub use trsm::{trsm_lower_left, trsm_lower_left_scalar, trsm_lower_left_t};

/// Maximum absolute difference between two matrices of identical shape,
/// reported in `f64` regardless of working precision.
///
/// Panics if shapes differ. Used pervasively by tests.
pub fn max_abs_diff<S: Scalar>(a: MatRefOf<'_, S>, b: MatRefOf<'_, S>) -> f64 {
    assert_eq!(a.nrows(), b.nrows(), "row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "col mismatch");
    let mut m = 0.0f64;
    for j in 0..a.ncols() {
        let ca = a.col(j);
        let cb = b.col(j);
        for i in 0..a.nrows() {
            let d = (ca[i].to_f64() - cb[i].to_f64()).abs();
            if d > m {
                m = d;
            }
        }
    }
    m
}

/// Frobenius norm of a matrix (accumulated and reported in `f64`).
pub fn frob_norm<S: Scalar>(a: MatRefOf<'_, S>) -> f64 {
    let mut s = 0.0;
    for j in 0..a.ncols() {
        for &v in a.col(j) {
            s += v.to_f64() * v.to_f64();
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = Mat::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(max_abs_diff(a.as_ref(), a.as_ref()), 0.0);
    }

    #[test]
    fn frob_norm_simple() {
        let a = Mat::from_fn(2, 2, |i, j| if i == j { 3.0 } else { 4.0 });
        // entries 3,4,4,3 -> sqrt(9+16+16+9) = sqrt(50)
        assert!((frob_norm(a.as_ref()) - 50f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn max_abs_diff_shape_mismatch_panics() {
        let a = Mat::zeros(2, 2);
        let b = Mat::zeros(3, 2);
        max_abs_diff(a.as_ref(), b.as_ref());
    }
}
