//! Dense triangular solve with multiple right-hand sides (TRSM).
//!
//! Only the variants the assembler needs: lower-triangular factor applied
//! from the left, non-transposed (`L X = B`, forward substitution) and
//! transposed (`Lᵀ X = B`, backward substitution). The solves are in-place:
//! on return the RHS matrix holds the solution, matching the paper's
//! description of TRSM as an in-place routine (§3.2).

use crate::gemm::axpy;
use crate::mat::{MatMutOf, MatRefOf};
use crate::scalar::Scalar;

/// Solve `L X = B` in place, `L` lower triangular (non-unit diagonal).
///
/// Above [`crate::blocked::PANEL_BLOCK_MIN_ORDER`] (with at least a handful
/// of RHS columns) the solve routes to the cache-blocked variant
/// ([`crate::trsm_lower_left_blocked`]); smaller problems run the scalar
/// reference ([`trsm_lower_left_scalar`]).
///
/// ```
/// use sc_dense::{trsm_lower_left, Mat};
///
/// // L = [[2, 0], [1, 3]], B = [[2], [7]]  =>  X = [[1], [2]]
/// let l = Mat::from_col_major(2, 2, vec![2.0, 1.0, 0.0, 3.0]);
/// let mut b = Mat::from_col_major(2, 1, vec![2.0, 7.0]);
/// trsm_lower_left(l.as_ref(), b.as_mut());
/// assert_eq!(b[(0, 0)], 1.0);
/// assert_eq!(b[(1, 0)], 2.0);
/// ```
pub fn trsm_lower_left<S: Scalar>(l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) {
    if l.nrows() >= crate::blocked::PANEL_BLOCK_MIN_ORDER && b.ncols() >= 4 {
        crate::blocked::trsm_lower_left_blocked(l, b);
    } else {
        trsm_lower_left_scalar(l, b);
    }
}

/// Scalar reference forward substitution (the pre-blocking kernel, kept as
/// the comparison baseline for the blocked path).
///
/// Column-sweep forward substitution: for each factor column `k`, the
/// just-computed solution row `k` is eliminated from all rows below via a
/// contiguous AXPY on the RHS column. Cost `n² m` flops for an `n × n` factor
/// and `n × m` RHS.
pub fn trsm_lower_left_scalar<S: Scalar>(l: MatRefOf<'_, S>, mut b: MatMutOf<'_, S>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "factor must be square");
    assert_eq!(b.nrows(), n, "RHS row mismatch");
    for j in 0..b.ncols() {
        let bcol = b.col_mut(j);
        for k in 0..n {
            let lk = l.col(k);
            let xk = bcol[k] / lk[k];
            bcol[k] = xk;
            // no zero-value fast path: a real BLAS TRSM performs the full
            // update regardless of values, and the orig-vs-optimized
            // comparisons in the benches rely on that behaviour
            axpy(-xk, &lk[k + 1..], &mut bcol[k + 1..]);
        }
    }
}

/// Solve `Lᵀ X = B` in place, `L` lower triangular (non-unit diagonal).
///
/// Backward substitution expressed over the columns of `L` (dot products
/// against the stored lower triangle).
pub fn trsm_lower_left_t<S: Scalar>(l: MatRefOf<'_, S>, mut b: MatMutOf<'_, S>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "factor must be square");
    assert_eq!(b.nrows(), n, "RHS row mismatch");
    for j in 0..b.ncols() {
        let bcol = b.col_mut(j);
        for k in (0..n).rev() {
            let lk = l.col(k);
            // x_k = (b_k - L[k+1.., k] · x[k+1..]) / L[k, k]
            let mut s = bcol[k];
            for i in k + 1..n {
                s -= lk[i] * bcol[i];
            }
            bcol[k] = s / lk[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Trans};
    use crate::mat::Mat;

    fn lower_factor(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                2.0 + r.abs() // well away from zero
            } else if i > j {
                0.5 * r
            } else {
                0.0
            }
        })
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn forward_solve_reconstructs_rhs() {
        let n = 12;
        let l = lower_factor(n, 1);
        let b = rand_mat(n, 5, 2);
        let mut x = b.clone();
        trsm_lower_left(l.as_ref(), x.as_mut());
        // L * X should equal B
        let mut lx = Mat::zeros(n, 5);
        gemm(
            1.0,
            l.as_ref(),
            Trans::No,
            x.as_ref(),
            Trans::No,
            0.0,
            lx.as_mut(),
        );
        assert!(crate::max_abs_diff(lx.as_ref(), b.as_ref()) < 1e-10);
    }

    #[test]
    fn backward_solve_reconstructs_rhs() {
        let n = 10;
        let l = lower_factor(n, 3);
        let b = rand_mat(n, 4, 4);
        let mut x = b.clone();
        trsm_lower_left_t(l.as_ref(), x.as_mut());
        let mut ltx = Mat::zeros(n, 4);
        gemm(
            1.0,
            l.as_ref(),
            Trans::Yes,
            x.as_ref(),
            Trans::No,
            0.0,
            ltx.as_mut(),
        );
        assert!(crate::max_abs_diff(ltx.as_ref(), b.as_ref()) < 1e-10);
    }

    #[test]
    fn forward_preserves_zeros_above_pivot() {
        // Fundamental stepped-shape property (paper §3.2): zeros above the
        // column pivot are preserved by forward substitution.
        let n = 8;
        let l = lower_factor(n, 5);
        let mut b = Mat::zeros(n, 3);
        // column j has pivot at row 2*j: zeros above must survive
        for j in 0..3 {
            for i in (2 * j)..n {
                b[(i, j)] = (i + j + 1) as f64;
            }
        }
        trsm_lower_left(l.as_ref(), b.as_mut());
        for j in 0..3 {
            for i in 0..(2 * j) {
                assert_eq!(b[(i, j)], 0.0, "zero above pivot destroyed at ({i},{j})");
            }
        }
    }

    #[test]
    fn identity_factor_is_noop() {
        let l = Mat::identity(6);
        let b = rand_mat(6, 2, 6);
        let mut x = b.clone();
        trsm_lower_left(l.as_ref(), x.as_mut());
        assert!(crate::max_abs_diff(x.as_ref(), b.as_ref()) < 1e-15);
        trsm_lower_left_t(l.as_ref(), x.as_mut());
        assert!(crate::max_abs_diff(x.as_ref(), b.as_ref()) < 1e-15);
    }

    #[test]
    fn subview_solve_matches_extracted() {
        // Solving on a trailing-subfactor view must equal solving an
        // extracted copy — this is what RHS-splitting TRSM relies on.
        let n = 9;
        let p = 4;
        let l = lower_factor(n, 7);
        let b = rand_mat(n - p, 3, 8);
        let mut x_view = b.clone();
        trsm_lower_left(l.as_ref().sub(p, p, n - p, n - p), x_view.as_mut());
        let lsub = l.submatrix(p, p, n - p, n - p);
        let mut x_copy = b.clone();
        trsm_lower_left(lsub.as_ref(), x_copy.as_mut());
        assert!(crate::max_abs_diff(x_view.as_ref(), x_copy.as_ref()) < 1e-15);
    }

    #[test]
    fn f32_solve_tracks_f64_within_eps() {
        let n = 8;
        let l = lower_factor(n, 9);
        let b = rand_mat(n, 3, 10);
        let mut x64 = b.clone();
        trsm_lower_left(l.as_ref(), x64.as_mut());
        let l32 = l.cast::<f32>();
        let mut x32 = b.cast::<f32>();
        trsm_lower_left(l32.as_ref(), x32.as_mut());
        assert!(crate::max_abs_diff(x32.cast::<f64>().as_ref(), x64.as_ref()) < 1e-4);
    }
}
