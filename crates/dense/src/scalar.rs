//! The sealed scalar abstraction behind the mixed-precision stack.
//!
//! Every numeric layer (dense kernels, sparse storage, factorizations, the
//! Schur assembler, PCPG) is generic over [`Scalar`], implemented for `f32`
//! and `f64` only. The trait carries exactly what the kernels need —
//! arithmetic, a square root, an epsilon, and [`Scalar::BYTES`] for the
//! simulated-GPU byte pricing (H2D transfers and temporary-arena footprints
//! scale with the element width, which is what lets the planner admit twice
//! as many explicit subdomains in f32).
//!
//! The trait is **sealed**: the byte-pricing and refinement logic assume IEEE
//! binary32/binary64 semantics, so downstream crates cannot implement it for
//! other types. `f64` code paths through the generic kernels are bitwise
//! identical to the pre-generic implementations — the kernels never reorder
//! arithmetic on the strength of the abstraction.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// IEEE floating-point element type of the numeric stack (`f32` or `f64`).
///
/// See the [module docs](self) for the sealing rationale. The cast helpers
/// [`Scalar::from_f64`] / [`Scalar::to_f64`] are the **only** sanctioned
/// precision boundary — the `precision-discipline` lint of `sc_analyze`
/// forbids bare `as f32` / `as f64` casts in the numeric crates outside this
/// module.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the format (`f32::EPSILON` / `f64::EPSILON`) —
    /// the attainable-accuracy floor the refinement loop targets against.
    const EPSILON: Self;
    /// `size_of::<Self>()`: the element width every byte-pricing term of the
    /// simulated GPU uses instead of a hard-coded 8.
    const BYTES: usize;
    /// Stable lowercase format name (`"f32"` / `"f64"`) for diagnostics and
    /// bench records.
    const NAME: &'static str;

    /// Convert from `f64` (rounds to nearest for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widen to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// IEEE finiteness test.
    fn is_finite(self) -> bool;
    /// IEEE `maximum` of two values (`f64::max` semantics).
    fn max_with(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b` with a single rounding.
    ///
    /// Maps to the hardware FMA instruction; the cache-blocked microkernels
    /// use it explicitly because Rust never contracts separate `*`/`+` into
    /// an FMA on its own. Results differ from unfused arithmetic by at most
    /// one rounding per operation (which is why blocked kernels are pinned
    /// to the scalar reference by tolerance, not bitwise).
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = std::mem::size_of::<f64>();
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn ln(self) -> Self {
        f64::ln(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline(always)]
    fn max_with(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = std::mem::size_of::<f32>();
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn ln(self) -> Self {
        f32::ln(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline(always)]
    fn max_with(self, other: Self) -> Self {
        f32::max(self, other)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths_match_size_of() {
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f32 as Scalar>::BYTES * 2, <f64 as Scalar>::BYTES);
    }

    #[test]
    fn f64_roundtrip_is_identity() {
        for v in [0.0, -1.5, std::f64::consts::PI, 1e300, -1e-300] {
            assert_eq!(<f64 as Scalar>::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn f32_widening_is_exact() {
        // every f32 is exactly representable in f64: to_f64 ∘ from_f64 on an
        // f32-representable value is the identity
        for v in [0.0f32, -1.5, 3.25, 1e30, -1e-30] {
            let w = <f32 as Scalar>::from_f64(f64::from(v));
            assert_eq!(w, v);
            assert_eq!(w.to_f64(), f64::from(v));
        }
    }

    #[test]
    fn generic_helpers_match_std() {
        fn probe<S: Scalar>(x: S) -> (S, S, bool) {
            (x.sqrt(), x.abs(), x.is_finite())
        }
        assert_eq!(probe(4.0f64), (2.0, 4.0, true));
        assert_eq!(probe(4.0f32), (2.0, 4.0, true));
        assert_eq!(Scalar::max_with(-3.0f64, 1.0), 1.0);
        assert!((2.0f64.ln() - std::f64::consts::LN_2).abs() < 1e-15);
    }
}
