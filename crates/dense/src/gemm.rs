//! General matrix-matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
//!
//! The kernel is written for column-major data: the `NoTrans × NoTrans` case
//! runs as a sequence of column AXPYs (contiguous, vectorizable) and the
//! `Trans × NoTrans` case as column dot products. These two cases are the only
//! ones on the assembler's hot path (factor-splitting TRSM uses
//! `C -= L_sub * R_top`; output-split SYRK uses `C += Yᵀ * Y`).

use crate::mat::{MatMutOf, MatRefOf};
use crate::scalar::Scalar;

/// Transposition selector for [`gemm`] operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

#[inline]
fn op_shape<S: Scalar>(a: MatRefOf<'_, S>, t: Trans) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` (sequential).
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
///
/// Above [`crate::blocked::GEMM_BLOCK_MIN_VOLUME`] the product routes to the
/// cache-blocked microkernel ([`crate::gemm_blocked`]); smaller problems run
/// the scalar reference ([`gemm_scalar`]). `beta == 0` always overwrites `C`
/// (NaN/inf in uninitialized output storage does not survive).
///
/// ```
/// use sc_dense::{gemm, Mat, Trans};
///
/// let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
/// let b = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
/// let mut c = Mat::zeros(2, 2);
/// gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut());
/// // C[0,0] = 0*0 + 1*2 + 2*4 = 10
/// assert_eq!(c[(0, 0)], 10.0);
/// ```
pub fn gemm<S: Scalar>(
    alpha: S,
    a: MatRefOf<'_, S>,
    ta: Trans,
    b: MatRefOf<'_, S>,
    tb: Trans,
    beta: S,
    c: MatMutOf<'_, S>,
) {
    let (m, ka) = op_shape(a, ta);
    let (_, n) = op_shape(b, tb);
    if crate::blocked::gemm_prefers_blocked(m, n, ka) {
        crate::blocked::gemm_blocked(alpha, a, ta, b, tb, beta, c);
    } else {
        gemm_scalar(alpha, a, ta, b, tb, beta, c);
    }
}

/// Scalar reference `C = alpha * op(A) * op(B) + beta * C` (the pre-blocking
/// kernel, kept as the comparison baseline for the blocked path).
pub fn gemm_scalar<S: Scalar>(
    alpha: S,
    a: MatRefOf<'_, S>,
    ta: Trans,
    b: MatRefOf<'_, S>,
    tb: Trans,
    beta: S,
    mut c: MatMutOf<'_, S>,
) {
    let (m, ka) = op_shape(a, ta);
    let (kb, n) = op_shape(b, tb);
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C col mismatch");
    scale(beta, c.as_mut());
    // sc-analyze: allow(float-eq)
    if alpha == S::ZERO || m == 0 || n == 0 || ka == 0 {
        return;
    }
    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, c),
        (Trans::Yes, Trans::No) => gemm_tn(alpha, a, b, c),
        (Trans::No, Trans::Yes) => gemm_nt(alpha, a, b, c),
        (Trans::Yes, Trans::Yes) => gemm_tt(alpha, a, b, c),
    }
}

#[inline]
pub(crate) fn scale<S: Scalar>(beta: S, mut c: MatMutOf<'_, S>) {
    // sc-analyze: allow(float-eq)
    if beta == S::ONE {
        return;
    }
    // sc-analyze: allow(float-eq)
    if beta == S::ZERO {
        c.fill(S::ZERO);
        return;
    }
    for j in 0..c.ncols() {
        for v in c.col_mut(j) {
            *v *= beta;
        }
    }
}

/// AXPY-based `C += alpha * A * B` for column-major operands.
fn gemm_nn<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, b: MatRefOf<'_, S>, mut c: MatMutOf<'_, S>) {
    let k = a.ncols();
    for j in 0..c.ncols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for (p, &bpj) in bcol.iter().enumerate().take(k) {
            // unconditional AXPY: dense BLAS does not branch on values
            axpy(alpha * bpj, a.col(p), ccol);
        }
    }
}

/// Dot-product-based `C += alpha * Aᵀ * B`.
fn gemm_tn<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, b: MatRefOf<'_, S>, mut c: MatMutOf<'_, S>) {
    for j in 0..c.ncols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for (i, cij) in ccol.iter_mut().enumerate() {
            *cij += alpha * dot_slices(a.col(i), bcol);
        }
    }
}

fn gemm_nt<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, b: MatRefOf<'_, S>, mut c: MatMutOf<'_, S>) {
    // C[:, j] += alpha * sum_p A[:, p] * B[j, p]
    for j in 0..c.ncols() {
        let ccol = c.col_mut(j);
        for p in 0..a.ncols() {
            axpy(alpha * b.get(j, p), a.col(p), ccol);
        }
    }
}

fn gemm_tt<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, b: MatRefOf<'_, S>, mut c: MatMutOf<'_, S>) {
    // C[i, j] += alpha * sum_p A[p, i] * B[j, p]
    for j in 0..c.ncols() {
        for i in 0..c.nrows() {
            let acol = a.col(i);
            let mut s = S::ZERO;
            for (p, &apv) in acol.iter().enumerate() {
                s += apv * b.get(j, p);
            }
            let v = c.get(i, j) + alpha * s;
            c.set(i, j, v);
        }
    }
}

#[inline]
pub(crate) fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[inline]
pub(crate) fn dot_slices<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    // Four-way unrolled accumulation: keeps FP dependencies short so LLVM can
    // vectorize without needing -ffast-math-style reassociation.
    let mut s0 = S::ZERO;
    let mut s1 = S::ZERO;
    let mut s2 = S::ZERO;
    let mut s3 = S::ZERO;
    let n4 = x.len() / 4 * 4;
    let mut i = 0;
    while i < n4 {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
        i += 4;
    }
    for p in n4..x.len() {
        s0 += x[p] * y[p];
    }
    (s0 + s1) + (s2 + s3)
}

/// Rayon-parallel `C = alpha * op(A) * op(B) + beta * C`, parallelized over
/// column blocks of `C`. Used for large reference computations.
pub fn par_gemm<S: Scalar>(
    alpha: S,
    a: MatRefOf<'_, S>,
    ta: Trans,
    b: MatRefOf<'_, S>,
    tb: Trans,
    beta: S,
    c: MatMutOf<'_, S>,
) {
    let n = c.ncols();
    let workers = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(workers).max(1);
    // Split C into disjoint column blocks and process them in parallel. The
    // recursion depth is small (log2 of block count).
    #[allow(clippy::too_many_arguments)]
    fn rec<S: Scalar>(
        alpha: S,
        a: MatRefOf<'_, S>,
        ta: Trans,
        b: MatRefOf<'_, S>,
        tb: Trans,
        beta: S,
        c: MatMutOf<'_, S>,
        c0: usize,
        chunk: usize,
    ) {
        let n = c.ncols();
        if n <= chunk {
            let bsub = match tb {
                Trans::No => b.sub(0, c0, b.nrows(), n),
                Trans::Yes => b.sub(c0, 0, n, b.ncols()),
            };
            gemm(alpha, a, ta, bsub, tb, beta, c);
            return;
        }
        let half = (n / chunk / 2 * chunk).max(chunk);
        let (l, r) = c.split_cols_at(half);
        rayon::join(
            || rec(alpha, a, ta, b, tb, beta, l, c0, chunk),
            || rec(alpha, a, ta, b, tb, beta, r, c0 + half, chunk),
        );
    }
    rec(alpha, a, ta, b, tb, beta, c, 0, chunk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn naive(alpha: f64, a: &Mat, ta: Trans, b: &Mat, tb: Trans, beta: f64, c: &Mat) -> Mat {
        let ae = |i: usize, j: usize| match ta {
            Trans::No => a[(i, j)],
            Trans::Yes => a[(j, i)],
        };
        let be = |i: usize, j: usize| match tb {
            Trans::No => b[(i, j)],
            Trans::Yes => b[(j, i)],
        };
        let (m, k) = match ta {
            Trans::No => (a.nrows(), a.ncols()),
            Trans::Yes => (a.ncols(), a.nrows()),
        };
        let n = c.ncols();
        Mat::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for p in 0..k {
                s += ae(i, p) * be(p, j);
            }
            alpha * s + beta * c[(i, j)]
        })
    }

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        let (m, k, n) = (7, 5, 6);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => mk(m, k, 1),
                Trans::Yes => mk(k, m, 2),
            };
            let b = match tb {
                Trans::No => mk(k, n, 3),
                Trans::Yes => mk(n, k, 4),
            };
            let mut c = mk(m, n, 5);
            let expect = naive(1.5, &a, ta, &b, tb, 0.5, &c);
            gemm(1.5, a.as_ref(), ta, b.as_ref(), tb, 0.5, c.as_mut());
            assert!(
                crate::max_abs_diff(c.as_ref(), expect.as_ref()) < 1e-12,
                "mismatch for ({ta:?},{tb:?})"
            );
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_free() {
        let a = mk(3, 3, 7);
        let b = mk(3, 3, 8);
        let mut c = Mat::from_fn(3, 3, |_, _| f64::NAN);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
        for j in 0..3 {
            for i in 0..3 {
                assert!(c[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn alpha_zero_only_scales() {
        let a = mk(3, 4, 9);
        let b = mk(4, 2, 10);
        let mut c = mk(3, 2, 11);
        let expect = Mat::from_fn(3, 2, |i, j| 2.0 * c[(i, j)]);
        gemm(
            0.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            2.0,
            c.as_mut(),
        );
        assert!(crate::max_abs_diff(c.as_ref(), expect.as_ref()) < 1e-15);
    }

    #[test]
    fn par_gemm_matches_gemm() {
        let (m, k, n) = (23, 17, 31);
        let a = mk(m, k, 20);
        let b = mk(k, n, 21);
        let mut c1 = mk(m, n, 22);
        let mut c2 = c1.clone();
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            1.0,
            c1.as_mut(),
        );
        par_gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            1.0,
            c2.as_mut(),
        );
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    #[test]
    fn par_gemm_trans_matches() {
        let (m, k, n) = (13, 19, 29);
        let a = mk(k, m, 30);
        let b = mk(k, n, 31);
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        gemm(
            1.0,
            a.as_ref(),
            Trans::Yes,
            b.as_ref(),
            Trans::No,
            0.0,
            c1.as_mut(),
        );
        par_gemm(
            1.0,
            a.as_ref(),
            Trans::Yes,
            b.as_ref(),
            Trans::No,
            0.0,
            c2.as_mut(),
        );
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Mat::zeros(0, 0);
        let b = Mat::zeros(0, 5);
        let mut c = Mat::zeros(0, 5);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            1.0,
            c.as_mut(),
        );
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let mut c = crate::mat::Mat::from_fn(3, 2, |_, _| 1.0);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 1.0); // beta=1 keeps C
    }

    #[test]
    fn f32_gemm_matches_f64_within_eps() {
        let a = mk(6, 4, 40);
        let b = mk(4, 5, 41);
        let mut c64 = Mat::zeros(6, 5);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c64.as_mut(),
        );
        let a32 = a.cast::<f32>();
        let b32 = b.cast::<f32>();
        let mut c32 = crate::mat::MatOf::<f32>::zeros(6, 5);
        gemm(
            1.0f32,
            a32.as_ref(),
            Trans::No,
            b32.as_ref(),
            Trans::No,
            0.0f32,
            c32.as_mut(),
        );
        assert!(crate::max_abs_diff(c32.cast::<f64>().as_ref(), c64.as_ref()) < 1e-5);
    }
}
