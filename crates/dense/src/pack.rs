//! Packed panel storage for the cache-blocked kernels.
//!
//! BLIS-style packing: before a cache block of `op(A)`/`op(B)` enters the
//! register microkernel, it is copied once into a contiguous panel layout so
//! the innermost loop streams both operands with unit stride regardless of
//! the source leading dimension or transposition:
//!
//! - [`PackedA`] holds an `mc × kc` block of `op(A)` as a sequence of
//!   [`MR`]-row *micro-panels*, each stored k-major (`panel[p * MR + ir]` is
//!   row `ir`, depth `p`).
//! - [`PackedB`] holds a `kc × nc` block of `op(B)` as a sequence of
//!   [`NR`]-column micro-panels, each stored k-major
//!   (`panel[p * NR + jr]` is depth `p`, column `jr`).
//!
//! Edge panels (block height not a multiple of `MR`, width not a multiple of
//! `NR`) are zero-padded, so the microkernel always runs full `MR × NR`
//! tiles and never branches on the boundary; the padded lanes contribute
//! exact zeros and the write-back simply drops them.

use crate::gemm::Trans;
use crate::mat::MatRefOf;
use crate::scalar::Scalar;

/// Rows per A micro-panel: the register-block height of the gemm
/// microkernel. Sixteen `f64` lanes = two AVX-512 vectors (or four AVX2
/// vectors); `f32` packs twice the lanes into the same byte width for
/// free.
pub const MR: usize = 16;

/// Columns per B micro-panel: the register-block width of the gemm
/// microkernel. `MR × NR` accumulators stay resident in registers.
pub const NR: usize = 8;

/// An `mc × kc` cache block of `op(A)`, repacked into [`MR`]-row
/// micro-panels (see module docs for the layout).
pub struct PackedA<S> {
    data: Vec<S>,
    mc: usize,
    kc: usize,
}

impl<S: Scalar> PackedA<S> {
    /// Pack the block of `op(A)` whose rows are `i0 .. i0 + mc` and whose
    /// depth range is `p0 .. p0 + kc` (row/depth indices in the *operated*
    /// orientation: `ta == Trans::Yes` reads `a` transposed).
    pub fn pack(a: MatRefOf<'_, S>, ta: Trans, i0: usize, mc: usize, p0: usize, kc: usize) -> Self {
        let panels = mc.div_ceil(MR).max(1);
        let mut data = vec![S::ZERO; panels * kc * MR];
        for ip in 0..mc.div_ceil(MR) {
            let base = ip * kc * MR;
            let h = MR.min(mc - ip * MR);
            match ta {
                Trans::No => {
                    // columns of `a` are contiguous: copy column slivers
                    for p in 0..kc {
                        let src = &a.col(p0 + p)[i0 + ip * MR..i0 + ip * MR + h];
                        data[base + p * MR..base + p * MR + h].copy_from_slice(src);
                    }
                }
                Trans::Yes => {
                    // rows of `op(A)` are columns of `a`: gather with `get`
                    for p in 0..kc {
                        for ir in 0..h {
                            data[base + p * MR + ir] = a.get(p0 + p, i0 + ip * MR + ir);
                        }
                    }
                }
            }
        }
        PackedA { data, mc, kc }
    }

    /// Micro-panel `ip` (rows `ip * MR .. ip * MR + MR` of the block),
    /// length `kc * MR`.
    #[inline]
    pub fn panel(&self, ip: usize) -> &[S] {
        &self.data[ip * self.kc * MR..(ip + 1) * self.kc * MR]
    }

    /// Read back element `(i, p)` of the packed block (round-trip accessor
    /// used by the packing tests; zero in the padded region).
    #[inline]
    pub fn get(&self, i: usize, p: usize) -> S {
        debug_assert!(p < self.kc);
        self.data[(i / MR) * self.kc * MR + p * MR + i % MR]
    }

    /// Block height `mc` (unpadded).
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.mc
    }

    /// Block depth `kc`.
    #[inline]
    pub fn block_depth(&self) -> usize {
        self.kc
    }
}

/// A `kc × nc` cache block of `op(B)`, repacked into [`NR`]-column
/// micro-panels (see module docs for the layout).
pub struct PackedB<S> {
    data: Vec<S>,
    nc: usize,
    kc: usize,
}

impl<S: Scalar> PackedB<S> {
    /// Pack the block of `op(B)` whose depth range is `p0 .. p0 + kc` and
    /// whose columns are `j0 .. j0 + nc` (indices in the operated
    /// orientation, as in [`PackedA::pack`]).
    pub fn pack(b: MatRefOf<'_, S>, tb: Trans, p0: usize, kc: usize, j0: usize, nc: usize) -> Self {
        let panels = nc.div_ceil(NR).max(1);
        let mut data = vec![S::ZERO; panels * kc * NR];
        for jp in 0..nc.div_ceil(NR) {
            let base = jp * kc * NR;
            let w = NR.min(nc - jp * NR);
            match tb {
                Trans::No => {
                    for jr in 0..w {
                        let src = &b.col(j0 + jp * NR + jr)[p0..p0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            data[base + p * NR + jr] = v;
                        }
                    }
                }
                Trans::Yes => {
                    // depth runs along the columns of `b`: row sliver copies
                    for p in 0..kc {
                        let src = b.col(p0 + p);
                        for jr in 0..w {
                            data[base + p * NR + jr] = src[j0 + jp * NR + jr];
                        }
                    }
                }
            }
        }
        PackedB { data, nc, kc }
    }

    /// Micro-panel `jp` (columns `jp * NR .. jp * NR + NR` of the block),
    /// length `kc * NR`.
    #[inline]
    pub fn panel(&self, jp: usize) -> &[S] {
        &self.data[jp * self.kc * NR..(jp + 1) * self.kc * NR]
    }

    /// Read back element `(p, j)` of the packed block (round-trip accessor;
    /// zero in the padded region).
    #[inline]
    pub fn get(&self, p: usize, j: usize) -> S {
        debug_assert!(p < self.kc);
        self.data[(j / NR) * self.kc * NR + p * NR + j % NR]
    }

    /// Block width `nc` (unpadded).
    #[inline]
    pub fn block_cols(&self) -> usize {
        self.nc
    }

    /// Block depth `kc`.
    #[inline]
    pub fn block_depth(&self) -> usize {
        self.kc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn packed_a_round_trips_both_orientations() {
        let a = mk(13, 11, 1);
        for ta in [Trans::No, Trans::Yes] {
            let (rows, depth) = match ta {
                Trans::No => (13, 11),
                Trans::Yes => (11, 13),
            };
            let p = PackedA::pack(a.as_ref(), ta, 1, rows - 2, 2, depth - 3);
            for i in 0..rows - 2 {
                for k in 0..depth - 3 {
                    let want = match ta {
                        Trans::No => a[(1 + i, 2 + k)],
                        Trans::Yes => a[(2 + k, 1 + i)],
                    };
                    assert_eq!(p.get(i, k), want, "mismatch at ({i},{k}) ta={ta:?}");
                }
            }
        }
    }

    #[test]
    fn packed_b_round_trips_both_orientations() {
        let b = mk(9, 14, 2);
        for tb in [Trans::No, Trans::Yes] {
            let (depth, cols) = match tb {
                Trans::No => (9, 14),
                Trans::Yes => (14, 9),
            };
            let p = PackedB::pack(b.as_ref(), tb, 1, depth - 2, 3, cols - 4);
            for k in 0..depth - 2 {
                for j in 0..cols - 4 {
                    let want = match tb {
                        Trans::No => b[(1 + k, 3 + j)],
                        Trans::Yes => b[(3 + j, 1 + k)],
                    };
                    assert_eq!(p.get(k, j), want, "mismatch at ({k},{j}) tb={tb:?}");
                }
            }
        }
    }

    #[test]
    fn edge_panels_are_zero_padded() {
        let a = mk(5, 3, 3);
        let p = PackedA::pack(a.as_ref(), Trans::No, 0, 5, 0, 3);
        // rows 5..8 of the only panel are padding
        for k in 0..3 {
            for i in 5..MR {
                assert_eq!(p.panel(0)[k * MR + i], 0.0);
            }
        }
        let b = mk(3, 5, 4);
        let pb = PackedB::pack(b.as_ref(), Trans::No, 0, 3, 0, 5);
        for k in 0..3 {
            for j in 5..NR {
                // columns 5..NR of the only panel are padding
                assert_eq!(pb.panel(0)[k * NR + j], 0.0);
            }
        }
    }
}
