//! Cache-blocked, SIMD-friendly variants of the dense hot kernels.
//!
//! The scalar kernels in [`mod@crate::gemm`], [`crate::trsm`], [`crate::syrk`]
//! and [`crate::chol`] stay as the reference implementations; the public
//! entry points (`gemm`, `trsm_lower_left`, `syrk_t`,
//! `partial_cholesky_in_place`) auto-select the blocked variants here once a
//! problem is large enough to pay for packing. Keeping the dispatch *inside*
//! `sc_dense` means every execution backend (`CpuExec`, the simulated
//! `GpuExec`, `RecordingExec`) sees the same numbers bitwise — the
//! cross-backend equality tests in `sc_core::exec` do not care which variant
//! ran, only that they all ran the same one.
//!
//! Structure (BLIS-style):
//!
//! - [`gemm_blocked`] drives an `NC → KC → MC` cache-block loop nest over
//!   panels packed by [`crate::pack`], with an `MR × NR` register microkernel
//!   whose accumulators are fixed-size arrays — LLVM turns the inner loop
//!   into broadcast-FMA vector code without any explicit intrinsics.
//! - [`trsm_lower_left_blocked`] factors the solve into diagonal-block scalar
//!   sweeps plus rank-`NB` gemm updates of the trailing rows;
//!   [`par_trsm_lower_left`] distributes independent RHS column blocks over
//!   the rayon shim.
//! - [`syrk_t_blocked`] computes the lower triangle per column block: a
//!   scalar diagonal tile plus a below-diagonal rectangle delegated to gemm.
//! - [`partial_cholesky_blocked`] is right-looking panel Cholesky: scalar
//!   factorization of the diagonal tile, a column-sweep triangular solve for
//!   the panel below it, and a gemm-based symmetric trailing update that only
//!   touches the lower trapezoid.
//!
//! Accumulation order differs from the scalar kernels (sums are re-blocked),
//! so blocked results agree with the reference to rounding, not bitwise; the
//! proptests in `tests/blocked.rs` pin the tolerance.

use crate::chol::{partial_cholesky_scalar, CholError};
use crate::gemm::{axpy, gemm, scale, Trans};
use crate::mat::{MatMutOf, MatRefOf};
use crate::pack::{PackedA, PackedB, MR, NR};
use crate::scalar::Scalar;
use crate::syrk::syrk_t_scalar;
use crate::trsm::trsm_lower_left_scalar;

/// Depth of one packed cache block (`kc`): `KC × MR` A-slivers and `KC × NR`
/// B-slivers stay L1-resident while the microkernel streams them.
pub const KC: usize = 256;
/// Height of one packed A block (`mc`): `MC × KC` values sit in L2.
pub const MC: usize = 128;
/// Width of one packed B block (`nc`): `KC × NC` values sit in L3.
pub const NC: usize = 1024;
/// Diagonal-block order for the blocked TRSM/SYRK/Cholesky panel loops.
pub const NB: usize = 64;

/// Minimum `m * n * k` volume for [`crate::gemm()`] to route to the blocked
/// kernel; below it the packing traffic dominates and the scalar AXPY/dot
/// forms win.
pub const GEMM_BLOCK_MIN_VOLUME: usize = 64 * 64 * 64;

/// Minimum factor order for `trsm_lower_left` / `syrk_t` /
/// `partial_cholesky_in_place` to route to their blocked variants.
pub const PANEL_BLOCK_MIN_ORDER: usize = 128;

#[inline]
fn op_shape<S: Scalar>(a: MatRefOf<'_, S>, t: Trans) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

/// `true` when [`gemm_blocked`] is expected to beat the scalar kernel for an
/// `m × k` by `k × n` product (the dispatch predicate used by
/// [`crate::gemm()`]).
#[inline]
pub fn gemm_prefers_blocked(m: usize, n: usize, k: usize) -> bool {
    m >= MR && n >= NR && k >= 8 && m * n * k >= GEMM_BLOCK_MIN_VOLUME
}

/// Register microkernel: `acc[jr][ir] += Σ_p apanel[p*MR+ir] * bpanel[p*NR+jr]`.
///
/// The fixed-size accumulator array maps onto SIMD registers
/// (`MR` f64 lanes = two 4-wide vectors per `jr`); the per-`p` body is a
/// broadcast of `b` against a unit-stride load of `a` — exactly the shape
/// LLVM auto-vectorizes into FMA sequences.
#[inline(always)]
fn microkernel<S: Scalar>(kc: usize, apanel: &[S], bpanel: &[S], acc: &mut [[S; MR]; NR]) {
    // The sealed Scalar trait admits exactly f32 and f64, so dispatching on
    // the element width to a width-specialized kernel is exhaustive; the
    // pointer reinterpretations below are sound because S *is* that type.
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
    {
        if S::BYTES == 8 {
            // SAFETY: S::BYTES == 8 identifies S == f64 under the sealed trait.
            unsafe {
                return microkernel_f64_avx512(
                    kc,
                    apanel.as_ptr().cast(),
                    bpanel.as_ptr().cast(),
                    &mut *(acc as *mut [[S; MR]; NR]).cast(),
                );
            }
        }
        if S::BYTES == 4 {
            // SAFETY: S::BYTES == 4 identifies S == f32 under the sealed trait.
            unsafe {
                return microkernel_f32_avx512(
                    kc,
                    apanel.as_ptr().cast(),
                    bpanel.as_ptr().cast(),
                    &mut *(acc as *mut [[S; MR]; NR]).cast(),
                );
            }
        }
    }
    microkernel_generic(kc, apanel, bpanel, acc);
}

/// Portable auto-vectorized microkernel (used when no width-specialized
/// variant is compiled in).
#[inline(always)]
#[cfg_attr(
    all(target_arch = "x86_64", target_feature = "avx512f"),
    allow(dead_code)
)]
fn microkernel_generic<S: Scalar>(kc: usize, apanel: &[S], bpanel: &[S], acc: &mut [[S; MR]; NR]) {
    // One named accumulator array per B lane: LLVM reliably promotes these
    // to vector registers (both a 2-D local tile and writes through the
    // `&mut` out-param have been observed to spill every iteration).
    let mut c0 = [S::ZERO; MR];
    let mut c1 = [S::ZERO; MR];
    let mut c2 = [S::ZERO; MR];
    let mut c3 = [S::ZERO; MR];
    let mut c4 = [S::ZERO; MR];
    let mut c5 = [S::ZERO; MR];
    let mut c6 = [S::ZERO; MR];
    let mut c7 = [S::ZERO; MR];
    let ait = apanel.chunks_exact(MR).take(kc);
    let bit = bpanel.chunks_exact(NR).take(kc);
    for (av, bv) in ait.zip(bit) {
        let a: &[S; MR] = av.try_into().expect("chunks_exact yields MR-length slices");
        let b: &[S; NR] = bv.try_into().expect("chunks_exact yields NR-length slices");
        for ir in 0..MR {
            c0[ir] += a[ir] * b[0];
            c1[ir] += a[ir] * b[1];
            c2[ir] += a[ir] * b[2];
            c3[ir] += a[ir] * b[3];
            c4[ir] += a[ir] * b[4];
            c5[ir] += a[ir] * b[5];
            c6[ir] += a[ir] * b[6];
            c7[ir] += a[ir] * b[7];
        }
    }
    *acc = [c0, c1, c2, c3, c4, c5, c6, c7];
}

/// AVX-512 `f64` microkernel: the `16 × 8` accumulator tile is sixteen
/// `zmm` registers (two per B lane), updated with broadcast-FMA — one
/// fused rounding per multiply-accumulate, like every BLAS microkernel.
///
/// # Safety
/// `apanel` must hold at least `kc * MR` and `bpanel` at least `kc * NR`
/// readable `f64` values, and the caller must only reach this on a CPU with
/// AVX-512F (guaranteed here by compile-time `target_feature`).
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
unsafe fn microkernel_f64_avx512(
    kc: usize,
    apanel: *const f64,
    bpanel: *const f64,
    acc: &mut [[f64; MR]; NR],
) {
    use core::arch::x86_64::*;
    let z = _mm512_setzero_pd();
    let (mut c00, mut c01) = (z, z);
    let (mut c10, mut c11) = (z, z);
    let (mut c20, mut c21) = (z, z);
    let (mut c30, mut c31) = (z, z);
    let (mut c40, mut c41) = (z, z);
    let (mut c50, mut c51) = (z, z);
    let (mut c60, mut c61) = (z, z);
    let (mut c70, mut c71) = (z, z);
    for p in 0..kc {
        let a0 = _mm512_loadu_pd(apanel.add(p * MR));
        let a1 = _mm512_loadu_pd(apanel.add(p * MR + 8));
        let bk = bpanel.add(p * NR);
        let b0 = _mm512_set1_pd(*bk);
        c00 = _mm512_fmadd_pd(a0, b0, c00);
        c01 = _mm512_fmadd_pd(a1, b0, c01);
        let b1 = _mm512_set1_pd(*bk.add(1));
        c10 = _mm512_fmadd_pd(a0, b1, c10);
        c11 = _mm512_fmadd_pd(a1, b1, c11);
        let b2 = _mm512_set1_pd(*bk.add(2));
        c20 = _mm512_fmadd_pd(a0, b2, c20);
        c21 = _mm512_fmadd_pd(a1, b2, c21);
        let b3 = _mm512_set1_pd(*bk.add(3));
        c30 = _mm512_fmadd_pd(a0, b3, c30);
        c31 = _mm512_fmadd_pd(a1, b3, c31);
        let b4 = _mm512_set1_pd(*bk.add(4));
        c40 = _mm512_fmadd_pd(a0, b4, c40);
        c41 = _mm512_fmadd_pd(a1, b4, c41);
        let b5 = _mm512_set1_pd(*bk.add(5));
        c50 = _mm512_fmadd_pd(a0, b5, c50);
        c51 = _mm512_fmadd_pd(a1, b5, c51);
        let b6 = _mm512_set1_pd(*bk.add(6));
        c60 = _mm512_fmadd_pd(a0, b6, c60);
        c61 = _mm512_fmadd_pd(a1, b6, c61);
        let b7 = _mm512_set1_pd(*bk.add(7));
        c70 = _mm512_fmadd_pd(a0, b7, c70);
        c71 = _mm512_fmadd_pd(a1, b7, c71);
    }
    let pairs = [
        (c00, c01),
        (c10, c11),
        (c20, c21),
        (c30, c31),
        (c40, c41),
        (c50, c51),
        (c60, c61),
        (c70, c71),
    ];
    for (jr, (lo, hi)) in pairs.into_iter().enumerate() {
        _mm512_storeu_pd(acc[jr].as_mut_ptr(), lo);
        _mm512_storeu_pd(acc[jr].as_mut_ptr().add(8), hi);
    }
}

/// AVX-512 `f32` microkernel: one 16-lane `zmm` register per B lane — the
/// halved element width doubles the SIMD lane count for free.
///
/// # Safety
/// Same contract as [`microkernel_f64_avx512`], with `f32` elements.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
unsafe fn microkernel_f32_avx512(
    kc: usize,
    apanel: *const f32,
    bpanel: *const f32,
    acc: &mut [[f32; MR]; NR],
) {
    use core::arch::x86_64::*;
    let z = _mm512_setzero_ps();
    let mut c0 = z;
    let mut c1 = z;
    let mut c2 = z;
    let mut c3 = z;
    let mut c4 = z;
    let mut c5 = z;
    let mut c6 = z;
    let mut c7 = z;
    for p in 0..kc {
        let a = _mm512_loadu_ps(apanel.add(p * MR));
        let bk = bpanel.add(p * NR);
        c0 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk), c0);
        c1 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(1)), c1);
        c2 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(2)), c2);
        c3 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(3)), c3);
        c4 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(4)), c4);
        c5 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(5)), c5);
        c6 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(6)), c6);
        c7 = _mm512_fmadd_ps(a, _mm512_set1_ps(*bk.add(7)), c7);
    }
    let regs = [c0, c1, c2, c3, c4, c5, c6, c7];
    for (jr, r) in regs.into_iter().enumerate() {
        _mm512_storeu_ps(acc[jr].as_mut_ptr(), r);
    }
}

/// Write `C[i0.., j0..] += alpha * acc` for the live `mr × nr` corner of a
/// microkernel tile (the padded lanes hold exact zeros and are dropped).
#[inline]
fn store_tile<S: Scalar>(
    alpha: S,
    acc: &[[S; MR]; NR],
    c: &mut MatMutOf<'_, S>,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for (jr, accj) in acc.iter().enumerate().take(nr) {
        let col = &mut c.col_mut(j0 + jr)[i0..i0 + mr];
        for (ci, &v) in col.iter_mut().zip(accj.iter()) {
            *ci += alpha * v;
        }
    }
}

/// Cache-blocked `C = alpha * op(A) * op(B) + beta * C`.
///
/// Same contract as [`crate::gemm()`] (which routes here above
/// [`GEMM_BLOCK_MIN_VOLUME`]); callers can invoke it directly to force the
/// blocked path, e.g. for the perf-gate comparison in the `kernels` bench
/// bin. `beta == 0` overwrites `C` outright, so NaN/inf in uninitialized
/// output storage never survives.
pub fn gemm_blocked<S: Scalar>(
    alpha: S,
    a: MatRefOf<'_, S>,
    ta: Trans,
    b: MatRefOf<'_, S>,
    tb: Trans,
    beta: S,
    mut c: MatMutOf<'_, S>,
) {
    let (m, ka) = op_shape(a, ta);
    let (kb, n) = op_shape(b, tb);
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C col mismatch");
    scale(beta, c.as_mut());
    // sc-analyze: allow(float-eq)
    if alpha == S::ZERO || m == 0 || n == 0 || ka == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..ka).step_by(KC) {
            let kc = KC.min(ka - pc);
            let bp = PackedB::pack(b, tb, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let ap = PackedA::pack(a, ta, ic, mc, pc, kc);
                for jp in 0..nc.div_ceil(NR) {
                    let nr = NR.min(nc - jp * NR);
                    let bpanel = bp.panel(jp);
                    for ip in 0..mc.div_ceil(MR) {
                        let mr = MR.min(mc - ip * MR);
                        let mut acc = [[S::ZERO; MR]; NR];
                        microkernel(kc, ap.panel(ip), bpanel, &mut acc);
                        store_tile(alpha, &acc, &mut c, ic + ip * MR, jc + jp * NR, mr, nr);
                    }
                }
            }
        }
    }
}

/// Blocked forward substitution `L X = B` in place: scalar solve of each
/// `NB × NB` diagonal block, then one rank-`NB` gemm update of all trailing
/// rows (which routes through [`gemm_blocked`] when large). Same contract as
/// [`crate::trsm_lower_left`], which routes here above
/// [`PANEL_BLOCK_MIN_ORDER`].
pub fn trsm_lower_left_blocked<S: Scalar>(l: MatRefOf<'_, S>, mut b: MatMutOf<'_, S>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n, "factor must be square");
    assert_eq!(b.nrows(), n, "RHS row mismatch");
    let m = b.ncols();
    for kb in (0..n).step_by(NB) {
        let nb = NB.min(n - kb);
        trsm_lower_left_scalar(l.sub(kb, kb, nb, nb), b.sub_mut(kb, 0, nb, m));
        let rem = n - kb - nb;
        if rem > 0 {
            // the just-solved block rows, copied out so the trailing gemm can
            // read them while writing rows below (safe-view aliasing)
            let x1 = b.as_ref().sub(kb, 0, nb, m).to_mat();
            gemm(
                -S::ONE,
                l.sub(kb + nb, kb, rem, nb),
                Trans::No,
                x1.as_ref(),
                Trans::No,
                S::ONE,
                b.sub_mut(kb + nb, 0, rem, m),
            );
        }
    }
}

/// Rayon-parallel blocked `L X = B`: RHS column blocks are independent, so
/// the solve recursively splits `B` into disjoint column-block views (one
/// per shim worker) and runs [`trsm_lower_left_blocked`] on each.
pub fn par_trsm_lower_left<S: Scalar>(l: MatRefOf<'_, S>, b: MatMutOf<'_, S>) {
    let workers = rayon::current_num_threads().max(1);
    let chunk = b.ncols().div_ceil(workers).max(1);
    fn rec<S: Scalar>(l: MatRefOf<'_, S>, b: MatMutOf<'_, S>, chunk: usize) {
        if b.ncols() <= chunk {
            trsm_lower_left_blocked(l, b);
            return;
        }
        let half = (b.ncols() / chunk / 2 * chunk).max(chunk);
        let (lo, hi) = b.split_cols_at(half);
        rayon::join(|| rec(l, lo, chunk), || rec(l, hi, chunk));
    }
    rec(l, b, chunk);
}

/// Blocked `C(lower) = beta * C + alpha * Aᵀ A`: per column block, a scalar
/// diagonal tile plus a below-diagonal rectangle delegated to gemm. Same
/// contract as [`crate::syrk_t`] (strictly upper triangle untouched), which
/// routes here above [`PANEL_BLOCK_MIN_ORDER`].
pub fn syrk_t_blocked<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, mut c: MatMutOf<'_, S>) {
    let n = a.ncols();
    let k = a.nrows();
    assert_eq!(c.nrows(), n, "syrk C row mismatch");
    assert_eq!(c.ncols(), n, "syrk C col mismatch");
    for jb in (0..n).step_by(NB) {
        let nb = NB.min(n - jb);
        syrk_t_scalar(alpha, a.sub(0, jb, k, nb), beta, c.sub_mut(jb, jb, nb, nb));
        let rem = n - jb - nb;
        if rem > 0 {
            gemm(
                alpha,
                a.sub(0, jb + nb, k, rem),
                Trans::Yes,
                a.sub(0, jb, k, nb),
                Trans::No,
                beta,
                c.sub_mut(jb + nb, jb, rem, nb),
            );
        }
    }
}

/// Rayon-parallel blocked `C(lower) = beta * C + alpha * Aᵀ A`: the serial
/// [`syrk_t_blocked`] loop touches a disjoint `NB`-column stripe of `C` per
/// block (the diagonal tile and the below-diagonal rectangle both live in
/// columns `jb .. jb + nb`), so the stripes fan out over the shim workers
/// the same way [`par_trsm_lower_left`] distributes RHS column blocks.
///
/// Each stripe replays the **exact** `syrk_t_scalar` + `gemm` calls of the
/// serial loop on the same sub-views, so the result is bitwise identical to
/// [`syrk_t_blocked`] regardless of the worker count (pinned by the
/// proptest in `tests/blocked.rs`).
pub fn par_syrk_t_blocked<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
    let n = a.ncols();
    assert_eq!(c.nrows(), n, "syrk C row mismatch");
    assert_eq!(c.ncols(), n, "syrk C col mismatch");
    let workers = rayon::current_num_threads().max(1);
    // columns per worker, rounded up to a whole number of NB blocks so every
    // split boundary coincides with a serial-loop block boundary
    let chunk = n.div_ceil(NB).div_ceil(workers).max(1) * NB;

    /// One NB-aligned column stripe of the serial loop: `c` holds **all** `n`
    /// rows of global columns `col0 .. col0 + c.ncols()`.
    fn stripe<S: Scalar>(
        alpha: S,
        a: MatRefOf<'_, S>,
        beta: S,
        mut c: MatMutOf<'_, S>,
        col0: usize,
    ) {
        let n = a.ncols();
        let k = a.nrows();
        for jl in (0..c.ncols()).step_by(NB) {
            let jb = col0 + jl;
            let nb = NB.min(n - jb);
            syrk_t_scalar(alpha, a.sub(0, jb, k, nb), beta, c.sub_mut(jb, jl, nb, nb));
            let rem = n - jb - nb;
            if rem > 0 {
                gemm(
                    alpha,
                    a.sub(0, jb + nb, k, rem),
                    Trans::Yes,
                    a.sub(0, jb, k, nb),
                    Trans::No,
                    beta,
                    c.sub_mut(jb + nb, jl, rem, nb),
                );
            }
        }
    }

    fn rec<S: Scalar>(
        alpha: S,
        a: MatRefOf<'_, S>,
        beta: S,
        c: MatMutOf<'_, S>,
        col0: usize,
        chunk: usize,
    ) {
        if c.ncols() <= chunk {
            stripe(alpha, a, beta, c, col0);
            return;
        }
        let half = (c.ncols() / chunk / 2 * chunk).max(chunk);
        let (lo, hi) = c.split_cols_at(half);
        rayon::join(
            || rec(alpha, a, beta, lo, col0, chunk),
            || rec(alpha, a, beta, hi, col0 + half, chunk),
        );
    }
    rec(alpha, a, beta, c, 0, chunk);
}

/// `C(lower) += alpha * L Lᵀ` for the trailing update of the blocked
/// Cholesky (`L` is `q × k`, `C` is `q × q`, strictly upper triangle
/// untouched). Diagonal tiles use column AXPYs clipped to the lower rows;
/// the rectangles below them go through gemm.
fn syrk_n_lower<S: Scalar>(alpha: S, l: MatRefOf<'_, S>, mut c: MatMutOf<'_, S>) {
    let q = l.nrows();
    let k = l.ncols();
    for jb in (0..q).step_by(NB) {
        let nb = NB.min(q - jb);
        for jj in 0..nb {
            let j = jb + jj;
            let cj = &mut c.col_mut(j)[j..jb + nb];
            for kk in 0..k {
                let ljk = l.get(j, kk);
                // sc-analyze: allow(float-eq)
                if ljk != S::ZERO {
                    axpy(alpha * ljk, &l.col(kk)[j..jb + nb], cj);
                }
            }
        }
        let rem = q - jb - nb;
        if rem > 0 {
            gemm(
                alpha,
                l.sub(jb + nb, 0, rem, k),
                Trans::No,
                l.sub(jb, 0, nb, k),
                Trans::Yes,
                S::ONE,
                c.sub_mut(jb + nb, jb, rem, nb),
            );
        }
    }
}

/// Blocked right-looking partial Cholesky: eliminate the leading `p` pivots
/// in `NB`-column panels. Each panel step factors the diagonal tile with the
/// scalar kernel, solves the sub-diagonal panel `L21 L11ᵀ = A21` by column
/// sweep, and applies the symmetric trailing update through gemm. Same
/// contract as [`crate::partial_cholesky_in_place`], which routes here above
/// [`PANEL_BLOCK_MIN_ORDER`].
pub fn partial_cholesky_blocked<S: Scalar>(
    mut a: MatMutOf<'_, S>,
    p: usize,
) -> Result<(), CholError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "partial cholesky needs a square matrix");
    assert!(p <= n);
    for kb in (0..p).step_by(NB) {
        let nb = NB.min(p - kb);
        partial_cholesky_scalar(a.sub_mut(kb, kb, nb, nb), nb).map_err(|e| CholError {
            pivot: e.pivot + kb,
            value: e.value,
        })?;
        let rem = n - kb - nb;
        if rem == 0 {
            continue;
        }
        // L21 = A21 L11⁻ᵀ: column sweep against the freshly factored tile.
        // Column k reads columns j < k of the same panel, so split the
        // matrix at the global column to get disjoint views.
        for kk in 0..nb {
            let (left, mut right) = a.as_mut().split_cols_at(kb + kk);
            let ck = right.col_mut(0);
            for jj in 0..kk {
                let cj = left.col(kb + jj);
                let lkj = cj[kb + kk];
                // sc-analyze: allow(float-eq)
                if lkj != S::ZERO {
                    axpy(-lkj, &cj[kb + nb..], &mut ck[kb + nb..]);
                }
            }
            let inv = S::ONE / ck[kb + kk];
            for v in &mut ck[kb + nb..] {
                *v *= inv;
            }
        }
        // Trailing symmetric update: A22(lower) -= L21 L21ᵀ.
        let (lpart, mut trail) = a.as_mut().split_cols_at(kb + nb);
        let l21 = lpart.as_ref().sub(kb + nb, kb, rem, nb);
        let c22 = trail.sub_mut(kb + nb, 0, rem, rem);
        syrk_n_lower(-S::ONE, l21, c22);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn blocked_gemm_matches_scalar_all_transposes() {
        let (m, k, n) = (37, 29, 23);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => mk(m, k, 1),
                Trans::Yes => mk(k, m, 2),
            };
            let b = match tb {
                Trans::No => mk(k, n, 3),
                Trans::Yes => mk(n, k, 4),
            };
            let mut c1 = mk(m, n, 5);
            let mut c2 = c1.clone();
            crate::gemm::gemm_scalar(1.25, a.as_ref(), ta, b.as_ref(), tb, 0.5, c1.as_mut());
            gemm_blocked(1.25, a.as_ref(), ta, b.as_ref(), tb, 0.5, c2.as_mut());
            assert!(
                crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12,
                "mismatch for ({ta:?},{tb:?})"
            );
        }
    }

    #[test]
    fn blocked_gemm_beta_zero_overwrites_nan() {
        let a = mk(16, 16, 6);
        let b = mk(16, 16, 7);
        let mut c = Mat::from_fn(16, 16, |_, _| f64::NAN);
        gemm_blocked(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
        for j in 0..16 {
            for i in 0..16 {
                assert!(c[(i, j)].is_finite(), "NaN survived at ({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_gemm_spans_cache_block_boundaries() {
        // sizes straddling KC/MC/NC multiples plus ragged edges
        let (m, k, n) = (MC + MR + 3, KC + 5, NR * 3 + 2);
        let a = mk(m, k, 8);
        let b = mk(k, n, 9);
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        crate::gemm::gemm_scalar(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c1.as_mut(),
        );
        gemm_blocked(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c2.as_mut(),
        );
        let scale = (k as f64).sqrt();
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-13 * scale);
    }

    fn lower_factor(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                2.0 + r.abs()
            } else if i > j {
                0.5 * r / n as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn blocked_trsm_matches_scalar() {
        let n = NB * 2 + 7;
        let l = lower_factor(n, 10);
        let b = mk(n, 9, 11);
        let mut x1 = b.clone();
        let mut x2 = b.clone();
        trsm_lower_left_scalar(l.as_ref(), x1.as_mut());
        trsm_lower_left_blocked(l.as_ref(), x2.as_mut());
        assert!(crate::max_abs_diff(x1.as_ref(), x2.as_ref()) < 1e-11);
    }

    #[test]
    fn par_trsm_matches_blocked() {
        let n = NB + 13;
        let l = lower_factor(n, 12);
        let b = mk(n, 33, 13);
        let mut x1 = b.clone();
        let mut x2 = b.clone();
        trsm_lower_left_blocked(l.as_ref(), x1.as_mut());
        par_trsm_lower_left(l.as_ref(), x2.as_mut());
        // each column is solved by the same sequential kernel regardless of
        // which worker owns its block
        assert_eq!(x1, x2);
    }

    #[test]
    fn par_syrk_matches_blocked() {
        for n in [1, NB - 1, NB, NB * 2 + 13, NB * 3] {
            let a = mk(37, n, 18);
            let mut c1 = mk(n, n, 19);
            let mut c2 = c1.clone();
            syrk_t_blocked(0.75, a.as_ref(), -0.5, c1.as_mut());
            par_syrk_t_blocked(0.75, a.as_ref(), -0.5, c2.as_mut());
            // each NB column-block runs the same scalar tile + gemm calls on the
            // same sub-views regardless of which worker owns its stripe
            assert_eq!(c1, c2, "n={n}");
        }
    }

    #[test]
    fn blocked_syrk_matches_scalar_and_leaves_upper() {
        let n = NB + 21;
        let a = mk(40, n, 14);
        let mut c1 = mk(n, n, 15);
        let mut c2 = c1.clone();
        let upper_before = c1[(0, n - 1)];
        syrk_t_scalar(1.5, a.as_ref(), 0.25, c1.as_mut());
        syrk_t_blocked(1.5, a.as_ref(), 0.25, c2.as_mut());
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-11);
        assert_eq!(c2[(0, n - 1)], upper_before, "upper triangle touched");
    }

    fn spd(n: usize, seed: u64) -> Mat {
        let g = mk(n, n, seed);
        let mut a = Mat::zeros(n, n);
        syrk_t_scalar(1.0, g.as_ref(), 0.0, a.as_mut());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a.symmetrize_from_lower();
        a
    }

    #[test]
    fn blocked_cholesky_matches_scalar() {
        let n = NB * 2 + 9;
        let a = spd(n, 16);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        partial_cholesky_scalar(f1.as_mut(), n).unwrap();
        partial_cholesky_blocked(f2.as_mut(), n).unwrap();
        assert!(crate::max_abs_diff(f1.as_ref(), f2.as_ref()) < 1e-10);
        assert!(crate::chol::reconstruction_error(&f2, &a) < 1e-9);
    }

    #[test]
    fn blocked_partial_cholesky_leaves_schur_complement() {
        let n = NB + 37;
        let p = NB + 5;
        let a = spd(n, 17);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        partial_cholesky_scalar(f1.as_mut(), p).unwrap();
        partial_cholesky_blocked(f2.as_mut(), p).unwrap();
        assert!(crate::max_abs_diff(f1.as_ref(), f2.as_ref()) < 1e-9);
    }

    #[test]
    fn blocked_cholesky_reports_offset_pivot() {
        let n = NB + 10;
        let mut a = spd(n, 18);
        let bad = NB + 3;
        // destroy positive definiteness at a pivot inside the second panel
        a[(bad, bad)] = -1.0;
        for j in 0..n {
            for i in 0..n {
                if i != j && (i == bad || j == bad) {
                    a[(i, j)] = 0.0;
                }
            }
        }
        let err = partial_cholesky_blocked(a.as_mut(), n).unwrap_err();
        assert_eq!(err.pivot, bad);
        assert!(err.value < 0.0);
    }
}
