//! Symmetric rank-k update: `C(lower) = beta * C + alpha * Aᵀ A`.
//!
//! This is the transposed flavour used by the Schur assembler
//! (`F = Yᵀ Y`, paper Eq. 14). Only the lower triangle of `C` is referenced
//! and written, matching BLAS `SYRK('L', 'T', ...)` semantics.

use crate::gemm::dot_slices;
use crate::mat::{MatMutOf, MatRefOf};
use crate::scalar::Scalar;

/// `C(lower) = beta * C(lower) + alpha * Aᵀ A` (sequential).
///
/// `A` is `k × n`, `C` is `n × n`. The strictly upper triangle of `C` is left
/// untouched. Above [`crate::blocked::PANEL_BLOCK_MIN_ORDER`] the update
/// routes to the cache-blocked variant ([`crate::syrk_t_blocked`]); smaller
/// problems run the scalar reference ([`syrk_t_scalar`]).
///
/// ```
/// use sc_dense::{syrk_t, Mat};
///
/// // A = [[1, 2]] (1×2)  =>  AᵀA = [[1, 2], [2, 4]], lower triangle stored
/// let a = Mat::from_col_major(1, 2, vec![1.0, 2.0]);
/// let mut c = Mat::zeros(2, 2);
/// syrk_t(1.0, a.as_ref(), 0.0, c.as_mut());
/// assert_eq!(c[(0, 0)], 1.0);
/// assert_eq!(c[(1, 0)], 2.0);
/// assert_eq!(c[(1, 1)], 4.0);
/// assert_eq!(c[(0, 1)], 0.0); // strictly upper untouched
/// ```
pub fn syrk_t<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
    if a.ncols() >= crate::blocked::PANEL_BLOCK_MIN_ORDER && a.nrows() >= 16 {
        crate::blocked::syrk_t_blocked(alpha, a, beta, c);
    } else {
        syrk_t_scalar(alpha, a, beta, c);
    }
}

/// Scalar reference SYRK (the pre-blocking kernel, kept as the comparison
/// baseline for the blocked path).
pub fn syrk_t_scalar<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, mut c: MatMutOf<'_, S>) {
    let n = a.ncols();
    assert_eq!(c.nrows(), n, "syrk C row mismatch");
    assert_eq!(c.ncols(), n, "syrk C col mismatch");
    for j in 0..n {
        let aj = a.col(j);
        let ccol = c.col_mut(j);
        // sc-analyze: allow(float-eq)
        if beta == S::ZERO {
            for (i, cij) in ccol.iter_mut().enumerate().skip(j) {
                *cij = alpha * dot_slices(a.col(i), aj);
            }
        } else {
            for (i, cij) in ccol.iter_mut().enumerate().skip(j) {
                *cij = beta * *cij + alpha * dot_slices(a.col(i), aj);
            }
        }
    }
}

/// Rayon-parallel [`syrk_t`], parallelized over output columns by recursive
/// column-block splitting (each split produces disjoint `MatMut` views, so no
/// unsafe code is needed).
pub fn par_syrk_t<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, c: MatMutOf<'_, S>) {
    let n = a.ncols();
    assert_eq!(c.nrows(), n, "syrk C row mismatch");
    assert_eq!(c.ncols(), n, "syrk C col mismatch");
    split_cols(alpha, a, beta, c, 0);
}

/// Process the column block of `C` starting at global column `c0`.
fn split_cols<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, beta: S, mut c: MatMutOf<'_, S>, c0: usize) {
    let ncols = c.ncols();
    // Small blocks: compute directly. Column j (global) writes rows j..n.
    if ncols <= 8 {
        for j in 0..ncols {
            let gj = c0 + j;
            let aj = a.col(gj);
            let ccol = c.col_mut(j);
            // sc-analyze: allow(float-eq)
            if beta == S::ZERO {
                for (i, cij) in ccol.iter_mut().enumerate().skip(gj) {
                    *cij = alpha * dot_slices(a.col(i), aj);
                }
            } else {
                for (i, cij) in ccol.iter_mut().enumerate().skip(gj) {
                    *cij = beta * *cij + alpha * dot_slices(a.col(i), aj);
                }
            }
        }
        return;
    }
    let half = ncols / 2;
    let (l, r) = c.split_cols_at(half);
    rayon::join(
        || split_cols(alpha, a, beta, l, c0),
        || split_cols(alpha, a, beta, r, c0 + half),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn naive_lower(alpha: f64, a: &Mat, beta: f64, c: &Mat) -> Mat {
        let n = a.ncols();
        Mat::from_fn(n, n, |i, j| {
            if i < j {
                c[(i, j)]
            } else {
                let mut s = 0.0;
                for p in 0..a.nrows() {
                    s += a[(p, i)] * a[(p, j)];
                }
                alpha * s + beta * c[(i, j)]
            }
        })
    }

    #[test]
    fn syrk_matches_naive() {
        let a = mk(9, 6, 1);
        let mut c = mk(6, 6, 2);
        let expect = naive_lower(2.0, &a, 0.5, &c);
        syrk_t(2.0, a.as_ref(), 0.5, c.as_mut());
        assert!(crate::max_abs_diff(c.as_ref(), expect.as_ref()) < 1e-12);
    }

    #[test]
    fn syrk_beta_zero_ignores_garbage() {
        let a = mk(4, 3, 3);
        let mut c = Mat::from_fn(3, 3, |i, j| if i >= j { f64::NAN } else { 9.0 });
        syrk_t(1.0, a.as_ref(), 0.0, c.as_mut());
        for j in 0..3 {
            for i in j..3 {
                assert!(c[(i, j)].is_finite());
            }
        }
        assert_eq!(c[(0, 1)], 9.0, "upper triangle untouched");
    }

    #[test]
    fn syrk_result_is_positive_semidefinite_diagonal() {
        let a = mk(5, 4, 4);
        let mut c = Mat::zeros(4, 4);
        syrk_t(1.0, a.as_ref(), 0.0, c.as_mut());
        for i in 0..4 {
            assert!(c[(i, i)] >= 0.0);
        }
    }

    #[test]
    fn par_syrk_matches_seq() {
        let a = mk(40, 33, 5);
        let mut c1 = mk(33, 33, 6);
        let mut c2 = c1.clone();
        syrk_t(1.0, a.as_ref(), 1.0, c1.as_mut());
        par_syrk_t(1.0, a.as_ref(), 1.0, c2.as_mut());
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    #[test]
    fn par_syrk_beta_zero_matches_seq() {
        let a = mk(25, 19, 7);
        let mut c1 = Mat::zeros(19, 19);
        let mut c2 = Mat::zeros(19, 19);
        syrk_t(1.5, a.as_ref(), 0.0, c1.as_mut());
        par_syrk_t(1.5, a.as_ref(), 0.0, c2.as_mut());
        assert!(crate::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    #[test]
    fn empty_k_scales_only() {
        let a = Mat::zeros(0, 3);
        let mut c = Mat::from_fn(3, 3, |_, _| 2.0);
        syrk_t(1.0, a.as_ref(), 0.5, c.as_mut());
        assert_eq!(c[(2, 0)], 1.0);
        assert_eq!(c[(0, 2)], 2.0); // upper untouched
    }

    #[test]
    fn f32_syrk_diagonal_nonnegative() {
        let a32 = mk(6, 5, 8).cast::<f32>();
        let mut c = crate::mat::MatOf::<f32>::zeros(5, 5);
        syrk_t(1.0f32, a32.as_ref(), 0.0f32, c.as_mut());
        for i in 0..5 {
            assert!(c[(i, i)] >= 0.0f32);
        }
    }
}
