//! Dense matrix-vector kernels: GEMV, transposed GEMV, triangular solves with
//! a single RHS, and dot products. These drive the *solution phase* of the
//! explicit dual operator (dense `F̃ᵢ` times a dual vector) and the coarse
//! problem of the FETI solver.

use crate::gemm::{axpy, dot_slices};
use crate::mat::MatRefOf;
use crate::scalar::Scalar;

/// `y = alpha * A x + beta * y`.
pub fn gemv<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, x: &[S], beta: S, y: &mut [S]) {
    assert_eq!(a.ncols(), x.len(), "gemv x length mismatch");
    assert_eq!(a.nrows(), y.len(), "gemv y length mismatch");
    // sc-analyze: allow(float-eq)
    if beta == S::ZERO {
        y.fill(S::ZERO);
    // sc-analyze: allow(float-eq)
    } else if beta != S::ONE {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for (j, &xj) in x.iter().enumerate() {
        let w = alpha * xj;
        // sc-analyze: allow(float-eq)
        if w != S::ZERO {
            axpy(w, a.col(j), y);
        }
    }
}

/// `y = alpha * Aᵀ x + beta * y`.
pub fn gemv_t<S: Scalar>(alpha: S, a: MatRefOf<'_, S>, x: &[S], beta: S, y: &mut [S]) {
    assert_eq!(a.nrows(), x.len(), "gemv_t x length mismatch");
    assert_eq!(a.ncols(), y.len(), "gemv_t y length mismatch");
    for (j, yj) in y.iter_mut().enumerate() {
        let s = dot_slices(a.col(j), x);
        *yj = alpha * s + if beta == S::ZERO { S::ZERO } else { beta * *yj }; // sc-analyze: allow(float-eq)
    }
}

/// Solve `L x = b` in place for a dense lower-triangular `L`.
pub fn trsv_lower<S: Scalar>(l: MatRefOf<'_, S>, x: &mut [S]) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(x.len(), n);
    for k in 0..n {
        let lk = l.col(k);
        let xk = x[k] / lk[k];
        x[k] = xk;
        // sc-analyze: allow(float-eq)
        if xk != S::ZERO {
            axpy(-xk, &lk[k + 1..], &mut x[k + 1..]);
        }
    }
}

/// Solve `Lᵀ x = b` in place for a dense lower-triangular `L`.
pub fn trsv_lower_t<S: Scalar>(l: MatRefOf<'_, S>, x: &mut [S]) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(x.len(), n);
    for k in (0..n).rev() {
        let lk = l.col(k);
        let mut s = x[k];
        for i in k + 1..n {
            s -= lk[i] * x[i];
        }
        x[k] = s / lk[k];
    }
}

/// Euclidean dot product of two equal-length slices.
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len());
    dot_slices(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn mk(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemv_matches_naive() {
        let a = mk(4, 3, 1);
        let x = [1.0, -2.0, 0.5];
        let mut y = [1.0, 1.0, 1.0, 1.0];
        gemv(2.0, a.as_ref(), &x, 0.5, &mut y);
        for i in 0..4 {
            let mut s = 0.0;
            for j in 0..3 {
                s += a[(i, j)] * x[j];
            }
            assert!((y[i] - (2.0 * s + 0.5)).abs() < 1e-14);
        }
    }

    #[test]
    fn gemv_t_matches_naive() {
        let a = mk(4, 3, 2);
        let x = [0.3, -1.0, 2.0, 0.7];
        let mut y = [0.0; 3];
        gemv_t(1.0, a.as_ref(), &x, 0.0, &mut y);
        for j in 0..3 {
            let mut s = 0.0;
            for i in 0..4 {
                s += a[(i, j)] * x[i];
            }
            assert!((y[j] - s).abs() < 1e-14);
        }
    }

    #[test]
    fn trsv_roundtrips() {
        let n = 7;
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                ((i * j + 1) % 3) as f64 * 0.25
            } else {
                0.0
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let mut x = b.clone();
        trsv_lower(l.as_ref(), &mut x);
        // L x == b
        let mut lx = vec![0.0; n];
        gemv(1.0, l.as_ref(), &x, 0.0, &mut lx);
        for i in 0..n {
            assert!((lx[i] - b[i]).abs() < 1e-12);
        }
        let mut xt = b.clone();
        trsv_lower_t(l.as_ref(), &mut xt);
        let mut ltx = vec![0.0; n];
        gemv_t(1.0, l.as_ref(), &xt, 0.0, &mut ltx);
        for i in 0..n {
            assert!((ltx[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let empty: [f64; 0] = [];
        assert_eq!(dot(&empty, &empty), 0.0);
    }

    #[test]
    fn f32_trsv_solves() {
        let l: crate::mat::MatOf<f32> = crate::mat::MatOf::from_fn(3, 3, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.5
            } else {
                0.0
            }
        });
        let mut x = [2.0f32, 5.0, 7.75];
        trsv_lower(l.as_ref(), &mut x);
        assert_eq!(x, [1.0f32, 2.25, 3.0625]);
    }
}
