//! Property-based tests of the dense kernel algebra.

use proptest::prelude::*;
use sc_dense::{cholesky_in_place, gemm, syrk_t, trsm_lower_left, trsm_lower_left_t, Mat, Trans};

fn mat_strategy(m: usize, n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-2.0f64..2.0, m * n).prop_map(move |v| Mat::from_col_major(m, n, v))
}

fn spd_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n, n).prop_map(move |g| {
        let mut a = Mat::zeros(n, n);
        syrk_t(1.0, g.as_ref(), 0.0, a.as_mut());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        a.symmetrize_from_lower();
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_is_linear_in_alpha(a in mat_strategy(5, 4), b in mat_strategy(4, 6)) {
        let mut c1 = Mat::zeros(5, 6);
        gemm(2.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c1.as_mut());
        let mut c2 = Mat::zeros(5, 6);
        gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c2.as_mut());
        for j in 0..6 {
            for i in 0..5 {
                prop_assert!((c1[(i, j)] - 2.0 * c2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_transpose_identity(a in mat_strategy(4, 5), b in mat_strategy(4, 3)) {
        // AᵀB == (Aᵀ)B computed through the transposed copy
        let mut c1 = Mat::zeros(5, 3);
        gemm(1.0, a.as_ref(), Trans::Yes, b.as_ref(), Trans::No, 0.0, c1.as_mut());
        let at = a.transpose();
        let mut c2 = Mat::zeros(5, 3);
        gemm(1.0, at.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c2.as_mut());
        prop_assert!(sc_dense::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    #[test]
    fn syrk_equals_explicit_product(a in mat_strategy(6, 4)) {
        let mut c = Mat::zeros(4, 4);
        syrk_t(1.0, a.as_ref(), 0.0, c.as_mut());
        let mut full = Mat::zeros(4, 4);
        gemm(1.0, a.as_ref(), Trans::Yes, a.as_ref(), Trans::No, 0.0, full.as_mut());
        for j in 0..4 {
            for i in j..4 {
                prop_assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solve_roundtrip(a in spd_strategy(6), b in mat_strategy(6, 2)) {
        let mut l = a.clone();
        cholesky_in_place(l.as_mut()).unwrap();
        let mut x = b.clone();
        trsm_lower_left(l.as_ref(), x.as_mut());
        trsm_lower_left_t(l.as_ref(), x.as_mut());
        // A x == b
        let mut ax = Mat::zeros(6, 2);
        gemm(1.0, a.as_ref(), Trans::No, x.as_ref(), Trans::No, 0.0, ax.as_mut());
        prop_assert!(sc_dense::max_abs_diff(ax.as_ref(), b.as_ref()) < 1e-6);
    }

    #[test]
    fn trsm_solution_is_unique(a in spd_strategy(5), b in mat_strategy(5, 3)) {
        let mut l = a.clone();
        cholesky_in_place(l.as_mut()).unwrap();
        let mut x1 = b.clone();
        trsm_lower_left(l.as_ref(), x1.as_mut());
        // column-by-column solve must agree with the blocked matrix solve
        let mut x2 = b.clone();
        for j in 0..3 {
            let mut col: Vec<f64> = (0..5).map(|i| b[(i, j)]).collect();
            sc_dense::trsv_lower(l.as_ref(), &mut col);
            for i in 0..5 {
                x2[(i, j)] = col[i];
            }
        }
        prop_assert!(sc_dense::max_abs_diff(x1.as_ref(), x2.as_ref()) < 1e-12);
    }
}
