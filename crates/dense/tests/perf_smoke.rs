use sc_dense::{gemm_blocked, gemm_scalar, Mat, Trans};
use std::time::Instant;

#[test]
#[ignore]
fn blocked_vs_scalar_512() {
    let n = 512;
    let a = Mat::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 97) as f64 / 97.0);
    let b = Mat::from_fn(n, n, |i, j| ((i * 13 + j * 17) % 89) as f64 / 89.0);
    let mut c = Mat::zeros(n, n);
    // warmup
    gemm_blocked(
        1.0,
        a.as_ref(),
        Trans::No,
        b.as_ref(),
        Trans::No,
        0.0,
        c.as_mut(),
    );
    let t0 = Instant::now();
    for _ in 0..3 {
        gemm_blocked(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
    }
    let tb = t0.elapsed().as_secs_f64() / 3.0;
    gemm_scalar(
        1.0,
        a.as_ref(),
        Trans::No,
        b.as_ref(),
        Trans::No,
        0.0,
        c.as_mut(),
    );
    let t0 = Instant::now();
    for _ in 0..3 {
        gemm_scalar(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
    }
    let ts = t0.elapsed().as_secs_f64() / 3.0;
    let gf = 2.0 * (n as f64).powi(3) / 1e9;
    eprintln!(
        "blocked {:.1} ms ({:.2} GF/s)  scalar {:.1} ms ({:.2} GF/s)  speedup {:.2}x",
        tb * 1e3,
        gf / tb,
        ts * 1e3,
        gf / ts,
        ts / tb
    );
}
