//! Property tests pinning the cache-blocked kernels to the scalar reference.
//!
//! The blocked gemm reassociates the reduction over `k` (packed panels +
//! register tile + FMA), so agreement with the scalar kernels is by tolerance
//! scaled to the reduction depth. Where the blocked path preserves the scalar
//! evaluation order exactly — the packed-panel round trip, and the
//! partitioning of RHS columns in `par_trsm_lower_left` — agreement is
//! bitwise.

use proptest::prelude::*;
use sc_dense::{
    gemm_blocked, gemm_scalar, par_syrk_t_blocked, partial_cholesky_blocked,
    partial_cholesky_scalar, syrk_t_blocked, syrk_t_scalar, trsm_lower_left_blocked,
    trsm_lower_left_scalar, Mat, MatOf, PackedA, PackedB, Scalar, Trans,
};

fn mat_strategy(m: usize, n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-2.0f64..2.0, m * n).prop_map(move |v| Mat::from_col_major(m, n, v))
}

/// Absolute tolerance for a reassociated dot product of length `k` with
/// entries bounded by 2: `k * 4 * eps * slack`.
fn tol<S: Scalar>(k: usize) -> f64 {
    (k.max(1) as f64) * 4.0 * S::EPSILON.to_f64() * 8.0
}

fn check_gemm<S: Scalar>(a: &MatOf<S>, b: &MatOf<S>, ta: Trans, tb: Trans, k: usize) {
    let (m, n) = (
        match ta {
            Trans::No => a.nrows(),
            Trans::Yes => a.ncols(),
        },
        match tb {
            Trans::No => b.ncols(),
            Trans::Yes => b.nrows(),
        },
    );
    let alpha = S::from_f64(1.5);
    let beta = S::from_f64(-0.5);
    let mut cb = MatOf::<S>::from_fn(m, n, |i, j| S::from_f64((i + 2 * j) as f64 * 0.25));
    let mut cs = cb.clone();
    gemm_blocked(alpha, a.as_ref(), ta, b.as_ref(), tb, beta, cb.as_mut());
    gemm_scalar(alpha, a.as_ref(), ta, b.as_ref(), tb, beta, cs.as_mut());
    let d = sc_dense::max_abs_diff(cb.as_ref(), cs.as_ref());
    assert!(
        d < tol::<S>(k),
        "{} gemm blocked vs scalar diff {d:.3e} (m={m} n={n} k={k} ta={ta:?} tb={tb:?})",
        S::NAME
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_gemm_matches_scalar_f64(
        m in 1usize..70, n in 1usize..40, k in 1usize..50, seed in 0u64..1_000_000,
    ) {
        let _ = seed;
        for (ta, tb) in [(Trans::No, Trans::No), (Trans::Yes, Trans::No),
                         (Trans::No, Trans::Yes), (Trans::Yes, Trans::Yes)] {
            let (ar, ac) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
            let (br, bc) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
            let mut s = seed | 1;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let a = Mat::from_fn(ar, ac, |_, _| next());
            let b = Mat::from_fn(br, bc, |_, _| next());
            check_gemm(&a, &b, ta, tb, k);
        }
    }

    #[test]
    fn blocked_gemm_matches_scalar_f32(
        m in 1usize..60, n in 1usize..30, k in 1usize..40, seed in 0u64..1_000_000,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Mat::from_fn(m, k, |_, _| next()).cast::<f32>();
        let b = Mat::from_fn(k, n, |_, _| next()).cast::<f32>();
        check_gemm(&a, &b, Trans::No, Trans::No, k);
    }

    #[test]
    fn packed_panels_round_trip(
        m in 1usize..50, k in 1usize..40, seed in 0u64..1_000_000,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Mat::from_fn(m, k, |_, _| next());
        let pa = PackedA::pack(a.as_ref(), Trans::No, 0, m, 0, k);
        let pb = PackedB::pack(a.as_ref(), Trans::No, 0, m, 0, k);
        for i in 0..m {
            for p in 0..k {
                // packing is pure data movement: bitwise round trip
                prop_assert_eq!(pa.get(i, p), a[(i, p)]);
                prop_assert_eq!(pb.get(i, p), a[(i, p)]);
            }
        }
    }

    #[test]
    fn blocked_trsm_matches_scalar(n in 1usize..90, m in 1usize..20, a in mat_strategy(1, 1)) {
        let _ = a;
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j { 2.0 + (i as f64) * 0.01 }
            else if i > j { ((i * 7 + j * 3) % 11) as f64 * 0.05 - 0.25 }
            else { 0.0 }
        });
        let b0 = Mat::from_fn(n, m, |i, j| ((i * 5 + j) % 13) as f64 * 0.2 - 1.0);
        let mut xb = b0.clone();
        let mut xs = b0.clone();
        trsm_lower_left_blocked(l.as_ref(), xb.as_mut());
        trsm_lower_left_scalar(l.as_ref(), xs.as_mut());
        prop_assert!(sc_dense::max_abs_diff(xb.as_ref(), xs.as_ref()) < tol::<f64>(n));
    }

    #[test]
    fn blocked_syrk_matches_scalar(k in 1usize..40, n in 1usize..90, a in mat_strategy(1, 1)) {
        let _ = a;
        let x = Mat::from_fn(k, n, |i, j| ((i * 3 + j * 5) % 17) as f64 * 0.1 - 0.8);
        let mut cb = Mat::from_fn(n, n, |i, j| (i + j) as f64 * 0.1);
        let mut cs = cb.clone();
        syrk_t_blocked(0.75, x.as_ref(), -1.25, cb.as_mut());
        syrk_t_scalar(0.75, x.as_ref(), -1.25, cs.as_mut());
        prop_assert!(sc_dense::max_abs_diff(cb.as_ref(), cs.as_ref()) < tol::<f64>(k));
    }

    #[test]
    fn par_syrk_bitwise_matches_serial_blocked(
        k in 1usize..50, n in 1usize..200, seed in 0u64..1_000_000,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x = Mat::from_fn(k, n, |_, _| next());
        let mut cs = Mat::from_fn(n, n, |_, _| next());
        let mut cp = cs.clone();
        syrk_t_blocked(1.25, x.as_ref(), -0.75, cs.as_mut());
        par_syrk_t_blocked(1.25, x.as_ref(), -0.75, cp.as_mut());
        // column-stripe partitioning replays the exact serial sub-view calls,
        // so the parallel variant is bitwise identical, not just close
        prop_assert_eq!(cs, cp);
    }

    #[test]
    fn blocked_partial_cholesky_matches_scalar(
        n in 2usize..120, pfrac in 0usize..=4, g in mat_strategy(1, 1),
    ) {
        let _ = g;
        let p = (n * pfrac / 4).max(1).min(n);
        let mut s = 0x5eed_u64 | 1;
        let gm = Mat::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = Mat::zeros(n, n);
        syrk_t_scalar(1.0, gm.as_ref(), 0.0, a.as_mut());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        a.symmetrize_from_lower();
        let mut fb = a.clone();
        let mut fs = a.clone();
        partial_cholesky_blocked(fb.as_mut(), p).unwrap();
        partial_cholesky_scalar(fs.as_mut(), p).unwrap();
        // compare the lower trapezoid + trailing Schur complement only (the
        // strictly-upper triangle is untouched by contract in both)
        let mut d = 0.0f64;
        for j in 0..n {
            for i in j..n {
                d = d.max((fb[(i, j)] - fs[(i, j)]).abs());
            }
        }
        prop_assert!(d < tol::<f64>(n) * (n as f64).sqrt(), "chol diff {d:.3e} n={n} p={p}");
    }
}

/// Deterministic sweep of degenerate and boundary shapes the strategies above
/// may miss: empty operands, single rows/columns, and exact tile multiples.
#[test]
fn blocked_gemm_degenerate_and_boundary_shapes() {
    for &(m, n, k) in &[
        (0usize, 0usize, 0usize),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (16, 8, 1),
        (17, 9, 1),
        (16, 8, 256),
        (32, 16, 257),
        (15, 7, 31),
    ] {
        let a = Mat::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 100) as f64 * 0.01 - 0.5);
        let b = Mat::from_fn(k, n, |i, j| ((i * 13 + j * 7) % 100) as f64 * 0.01 - 0.3);
        check_gemm(&a, &b, Trans::No, Trans::No, k);
    }
}
