//! Legacy-surface shims: the deprecated [`DualMode`] payload enum and its
//! translation onto the composable [`Backend`] +
//! [`FormulationChoice`] surface.
//!
//! This module (together with `tests/api_surface.rs`, which pins the old
//! and new surfaces bitwise against each other) is the only place allowed
//! to `allow(deprecated)` — the CI deprecation-budget check enforces that.

#[allow(unused_imports)] // doc links only
use crate::solver::FetiSolverBuilder;
use crate::solver::{ExecPlan, FetiOptions, FormulationChoice, HybridOptions};
use sc_core::{Backend, ClusterOptions, ScConfig, ScheduleOptions, StreamPolicy};
use sc_gpu::{Device, DevicePool};
use std::sync::Arc;

/// How the dual operator is realized — the pre-0.2 selector. The payload
/// variants are deprecated: the execution target is now a
/// [`Backend`] *value* and the formulation a
/// [`FormulationChoice`], combined through
/// [`FetiSolverBuilder`]. Results stay
/// bitwise identical across the translation (pinned by
/// `tests/api_surface.rs`).
#[derive(Clone)]
pub enum DualMode {
    /// Implicit application (factorization only in preprocessing).
    Implicit,
    /// Explicit dense `F̃ᵢ`, assembled on the CPU.
    #[deprecated(
        since = "0.2.0",
        note = "use FetiSolverBuilder::backend(Backend::cpu()) \
                .formulation(FormulationChoice::Explicit).assembly(cfg)"
    )]
    ExplicitCpu(ScConfig),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU with the
    /// pre-scheduler round-robin stream assignment.
    #[deprecated(
        since = "0.2.0",
        note = "use FetiSolverBuilder::backend(Backend::gpu(device)) \
                .formulation(FormulationChoice::Explicit).assembly(cfg)"
    )]
    ExplicitGpu(ScConfig, Arc<Device>),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU through the
    /// §4.4 scheduler.
    #[deprecated(
        since = "0.2.0",
        note = "use FetiSolverBuilder::backend(Backend::gpu_with(device, schedule)) \
                .formulation(FormulationChoice::Explicit).assembly(cfg)"
    )]
    ExplicitGpuScheduled(ScConfig, Arc<Device>, ScheduleOptions),
    /// Explicit dense `F̃ᵢ`, sharded across a pool of simulated GPUs.
    #[deprecated(
        since = "0.2.0",
        note = "use FetiSolverBuilder::backend(Backend::cluster_with(pool, opts)) \
                .formulation(FormulationChoice::Explicit).assembly(cfg)"
    )]
    ExplicitGpuCluster {
        /// Assembly configuration.
        cfg: ScConfig,
        /// The device pool (heterogeneous mixes allowed).
        pool: Arc<DevicePool>,
        /// Cluster scheduling options.
        opts: ClusterOptions,
    },
    /// Per-subdomain explicit-vs-implicit selection under the §4.4 cost
    /// model, subject to the device arena capacities.
    #[deprecated(
        since = "0.2.0",
        note = "use FetiSolverBuilder::backend(Backend::cluster_with(pool, opts)) \
                .formulation(FormulationChoice::Auto(plan)).assembly(cfg)"
    )]
    Hybrid {
        /// Assembly configuration of the explicit shares.
        cfg: ScConfig,
        /// The device pool (may be empty: everything then runs on the host).
        pool: Arc<DevicePool>,
        /// Hybrid decision + scheduling options.
        opts: HybridOptions,
    },
}

/// Translate the legacy selector onto the composable plan. Every mapping
/// preserves the numerics bitwise; the legacy live round-robin GPU driver
/// maps onto the scheduled driver with [`StreamPolicy::RoundRobin`] (same
/// stream assignment, deterministic record/replay timeline).
#[allow(deprecated)]
pub(crate) fn plan_of(opts: &FetiOptions) -> ExecPlan {
    match &opts.dual {
        DualMode::Implicit => ExecPlan {
            cfg: ScConfig::Auto,
            backend: Backend::cpu(),
            formulation: FormulationChoice::Implicit,
        },
        DualMode::ExplicitCpu(cfg) => ExecPlan {
            cfg: *cfg,
            backend: Backend::cpu(),
            formulation: FormulationChoice::Explicit,
        },
        DualMode::ExplicitGpu(cfg, device) => ExecPlan {
            cfg: *cfg,
            backend: Backend::gpu_with(
                Arc::clone(device),
                ScheduleOptions::default().with_policy(StreamPolicy::RoundRobin),
            ),
            formulation: FormulationChoice::Explicit,
        },
        DualMode::ExplicitGpuScheduled(cfg, device, sched) => ExecPlan {
            cfg: *cfg,
            backend: Backend::gpu_with(Arc::clone(device), sched.clone()),
            formulation: FormulationChoice::Explicit,
        },
        DualMode::ExplicitGpuCluster { cfg, pool, opts } => ExecPlan {
            cfg: *cfg,
            backend: Backend::cluster_with(Arc::clone(pool), opts.clone()),
            formulation: FormulationChoice::Explicit,
        },
        DualMode::Hybrid { cfg, pool, opts } => ExecPlan {
            cfg: *cfg,
            backend: Backend::cluster_with(Arc::clone(pool), opts.cluster.clone()),
            formulation: FormulationChoice::Auto(opts.plan.clone()),
        },
    }
}
