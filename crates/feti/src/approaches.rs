//! The eight dual-operator strategies of the paper's Table 2, with their
//! preprocessing pipelines and per-iteration costs instrumented for the
//! benches (Figures 9 and 10).
//!
//! Library mapping (see DESIGN.md "Substitutions"):
//!
//! | paper          | here                                                       |
//! |----------------|------------------------------------------------------------|
//! | `impl_mkl`     | implicit, supernodal multifrontal engine (PARDISO analog)  |
//! | `impl_cholmod` | implicit, up-looking simplicial engine (CHOLMOD analog)    |
//! | `expl_mkl`     | sparse-RHS Schur (`sc_factor::schur`) on the CPU           |
//! | `expl_cholmod` | plain (non-stepped) TRSM+SYRK on the CPU, simplicial factor|
//! | `expl_cuda`    | plain TRSM+SYRK on the simulated GPU (algorithm of \[9\])    |
//! | `expl_cpu_opt` | stepped TRSM+SYRK on the CPU (this paper)                  |
//! | `expl_gpu_opt` | stepped TRSM+SYRK on the simulated GPU (this paper)        |
//! | `expl_hybrid`  | assembly like `expl_mkl`, application on the GPU           |

use crate::dualop::{apply_implicit, DualOperator, SubdomainFactors};
use rayon::prelude::*;
use sc_core::{FactorStorage, ScConfig};
use sc_dense::Mat;
use sc_factor::{schur_from_factor, Engine};
use sc_fem::HeatProblem;
use sc_gpu::{Device, GpuKernels};
use sc_order::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Dual-operator strategy (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DualOpApproach {
    /// Implicit with the fast (supernodal) factorization.
    ImplMkl,
    /// Implicit with the simplicial factorization.
    ImplCholmod,
    /// Explicit SC via sparse-RHS solves on the CPU.
    ExplMkl,
    /// Explicit SC via plain TRSM+SYRK on the CPU.
    ExplCholmod,
    /// Explicit SC via plain TRSM+SYRK on the GPU (baseline of \[9\]).
    ExplCuda,
    /// Explicit SC via stepped TRSM+SYRK on the CPU (this paper).
    ExplCpuOpt,
    /// Explicit SC via stepped TRSM+SYRK on the GPU (this paper).
    ExplGpuOpt,
    /// CPU sparse-RHS assembly + GPU application.
    ExplHybrid,
}

impl DualOpApproach {
    /// All approaches, in the paper's Table 2 order.
    pub const ALL: [DualOpApproach; 8] = [
        DualOpApproach::ImplMkl,
        DualOpApproach::ImplCholmod,
        DualOpApproach::ExplMkl,
        DualOpApproach::ExplCholmod,
        DualOpApproach::ExplCuda,
        DualOpApproach::ExplCpuOpt,
        DualOpApproach::ExplGpuOpt,
        DualOpApproach::ExplHybrid,
    ];

    /// The paper's name for this approach.
    pub fn paper_name(&self) -> &'static str {
        match self {
            DualOpApproach::ImplMkl => "impl_mkl",
            DualOpApproach::ImplCholmod => "impl_cholmod",
            DualOpApproach::ExplMkl => "expl_mkl",
            DualOpApproach::ExplCholmod => "expl_cholmod",
            DualOpApproach::ExplCuda => "expl_cuda",
            DualOpApproach::ExplCpuOpt => "expl_cpu_opt",
            DualOpApproach::ExplGpuOpt => "expl_gpu_opt",
            DualOpApproach::ExplHybrid => "expl_hybrid",
        }
    }

    /// True when the approach reports simulated GPU time.
    pub fn uses_gpu(&self) -> bool {
        matches!(
            self,
            DualOpApproach::ExplCuda | DualOpApproach::ExplGpuOpt | DualOpApproach::ExplHybrid
        )
    }
}

/// Preprocessing timings (the quantities plotted in Figure 9).
#[derive(Clone, Copy, Debug, Default)]
pub struct PreprocessReport {
    /// Measured wall seconds of the numeric factorization loop.
    pub factorization_s: f64,
    /// Measured wall seconds of CPU-side SC assembly (0 for implicit).
    pub assembly_cpu_s: f64,
    /// Simulated GPU makespan of the device-side assembly (0 for CPU paths).
    pub assembly_gpu_s: f64,
}

impl PreprocessReport {
    /// End-to-end preprocessing time: CPU pipeline plus the GPU tail
    /// (sequential model; the overlapped `mix` model lives in the fig8
    /// driver).
    pub fn total_s(&self) -> f64 {
        self.factorization_s + self.assembly_cpu_s + self.assembly_gpu_s
    }
}

/// Per-iteration cost of applying the global dual operator once.
#[derive(Clone, Copy, Debug, Default)]
pub struct ApplyCost {
    /// Measured (CPU) or simulated (GPU) seconds per application.
    pub per_iteration_s: f64,
}

/// Preprocessed dual operators plus instrumentation.
pub struct PreparedDualOp {
    /// Per-subdomain operators, ready to apply.
    pub ops: Vec<DualOperator>,
    /// Factor bundles (needed by implicit applications and primal recovery).
    pub factors: Vec<SubdomainFactors>,
    /// Timing report.
    pub report: PreprocessReport,
}

fn sc_config_for(approach: DualOpApproach, three_d: bool) -> ScConfig {
    match approach {
        DualOpApproach::ExplCholmod | DualOpApproach::ExplCuda => ScConfig::original(if three_d {
            FactorStorage::Dense
        } else {
            FactorStorage::Sparse
        }),
        DualOpApproach::ExplCpuOpt => ScConfig::optimized(false, three_d),
        DualOpApproach::ExplGpuOpt => ScConfig::optimized(true, three_d),
        _ => ScConfig::original(FactorStorage::Sparse),
    }
}

/// Run the preprocessing pipeline of one approach over all subdomains.
///
/// `device` is required for GPU approaches; its timeline is reset first so
/// `report.assembly_gpu_s` is this call's makespan.
pub fn preprocess_approach(
    problem: &HeatProblem,
    approach: DualOpApproach,
    device: Option<&Arc<Device>>,
) -> PreparedDualOp {
    let three_d = problem.dim == 3;
    let engine = match approach {
        DualOpApproach::ImplMkl => Engine::Supernodal,
        // every explicit GPU path needs extractable factors => simplicial,
        // like CHOLMOD in the paper ("only Cholmod allows extraction of
        // factors, impl_cholmod is the baseline for CUDA-based approaches")
        _ => Engine::Simplicial,
    };

    // --- numeric factorization loop (parallel over subdomains) ---
    let t0 = Instant::now();
    let factors: Vec<SubdomainFactors> = problem
        .subdomains
        .par_iter()
        .map(|sd| SubdomainFactors::build(sd, engine, Ordering::NestedDissection))
        .collect();
    let factorization_s = t0.elapsed().as_secs_f64();

    // --- assembly section ---
    let mut report = PreprocessReport {
        factorization_s,
        ..Default::default()
    };
    let ops: Vec<DualOperator> = match approach {
        DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod => {
            // no assembly: operators borrow nothing, applications go through
            // `factors`; build lightweight implicit wrappers for uniformity
            problem
                .subdomains
                .par_iter()
                .map(|sd| {
                    DualOperator::implicit(SubdomainFactors::build(
                        sd,
                        engine,
                        Ordering::NestedDissection,
                    ))
                })
                .collect()
        }
        DualOpApproach::ExplMkl => {
            let t = Instant::now();
            let ops = factors
                .par_iter()
                .map(|f| {
                    let l = f.chol.factor_csc();
                    let fmat = schur_from_factor(&l, &f.chol.symbolic().parent, &f.bt_perm);
                    DualOperator::ExplicitCpu(fmat)
                })
                .collect();
            report.assembly_cpu_s = t.elapsed().as_secs_f64();
            ops
        }
        DualOpApproach::ExplCholmod | DualOpApproach::ExplCpuOpt => {
            let cfg = sc_config_for(approach, three_d);
            let t = Instant::now();
            let ops = factors
                .par_iter()
                .map(|f| DualOperator::explicit_cpu(f, &cfg))
                .collect();
            report.assembly_cpu_s = t.elapsed().as_secs_f64();
            ops
        }
        DualOpApproach::ExplCuda | DualOpApproach::ExplGpuOpt => {
            let device = device.expect("GPU approach needs a device");
            device.reset();
            let cfg = sc_config_for(approach, three_d);
            let n_streams = device.n_streams();
            let ops = factors
                .par_iter()
                .enumerate()
                .map(|(i, f)| {
                    let kernels = GpuKernels::new(device.stream(i % n_streams));
                    DualOperator::explicit_gpu(f, &cfg, kernels)
                })
                .collect();
            report.assembly_gpu_s = device.synchronize();
            ops
        }
        DualOpApproach::ExplHybrid => {
            let device = device.expect("hybrid approach needs a device");
            device.reset();
            let n_streams = device.n_streams();
            let t = Instant::now();
            let mats: Vec<Mat> = factors
                .par_iter()
                .map(|f| {
                    let l = f.chol.factor_csc();
                    schur_from_factor(&l, &f.chol.symbolic().parent, &f.bt_perm)
                })
                .collect();
            report.assembly_cpu_s = t.elapsed().as_secs_f64();
            // upload the dense F̃ᵢ to the device for application
            let ops = mats
                .into_iter()
                .enumerate()
                .map(|(i, fmat)| {
                    let kernels = GpuKernels::new(device.stream(i % n_streams));
                    kernels.upload_bytes(8 * fmat.nrows() * fmat.ncols());
                    DualOperator::ExplicitGpu { f: fmat, kernels }
                })
                .collect();
            report.assembly_gpu_s = device.synchronize();
            ops
        }
    };

    PreparedDualOp {
        ops,
        factors,
        report,
    }
}

/// Measure the per-iteration cost of applying the global dual operator.
///
/// CPU approaches are wall-timed over `reps` applications; GPU approaches
/// report the simulated makespan per application.
pub fn measure_apply_cost(
    problem: &HeatProblem,
    prepared: &PreparedDualOp,
    approach: DualOpApproach,
    device: Option<&Arc<Device>>,
    reps: usize,
) -> ApplyCost {
    let p: Vec<f64> = (0..problem.n_lambda)
        .map(|i| ((i % 13) as f64) - 6.0) // sc-analyze: allow(precision-discipline)
        .collect();
    let apply_once = || {
        let locals: Vec<Vec<f64>> = problem
            .subdomains
            .par_iter()
            .enumerate()
            .map(|(i, sd)| {
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| p[gl]).collect();
                let mut ql = vec![0.0; sd.n_lambda()];
                match approach {
                    DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod => {
                        apply_implicit(&prepared.factors[i], &pl, &mut ql)
                    }
                    _ => prepared.ops[i].apply(&pl, &mut ql),
                }
                ql
            })
            .collect();
        std::hint::black_box(&locals);
    };

    if approach.uses_gpu() {
        let device = device.expect("GPU approach needs a device");
        device.reset();
        for _ in 0..reps {
            apply_once();
        }
        ApplyCost {
            per_iteration_s: device.synchronize() / reps as f64, // sc-analyze: allow(precision-discipline)
        }
    } else {
        let t = Instant::now();
        for _ in 0..reps {
            apply_once();
        }
        ApplyCost {
            per_iteration_s: t.elapsed().as_secs_f64() / reps as f64, // sc-analyze: allow(precision-discipline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_fem::Gluing;
    use sc_gpu::DeviceSpec;

    fn small_problem() -> HeatProblem {
        HeatProblem::build_2d(3, (2, 2), Gluing::Redundant)
    }

    #[test]
    fn all_approaches_produce_equivalent_operators() {
        let problem = small_problem();
        let device = Device::new(DeviceSpec::a100(), 2);
        let mut reference: Option<Vec<Vec<f64>>> = None;
        for approach in DualOpApproach::ALL {
            let prepared = preprocess_approach(&problem, approach, Some(&device));
            // apply to a fixed vector per subdomain and compare across
            // approaches
            let outs: Vec<Vec<f64>> = problem
                .subdomains
                .iter()
                .enumerate()
                .map(|(i, sd)| {
                    let m = sd.n_lambda();
                    let pl: Vec<f64> = (0..m).map(|k| ((k % 5) as f64) - 2.0).collect();
                    let mut ql = vec![0.0; m];
                    match approach {
                        DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod => {
                            apply_implicit(&prepared.factors[i], &pl, &mut ql)
                        }
                        _ => prepared.ops[i].apply(&pl, &mut ql),
                    }
                    ql
                })
                .collect();
            match &reference {
                None => reference = Some(outs),
                Some(r) => {
                    for (a, b) in r.iter().zip(&outs) {
                        for (x, y) in a.iter().zip(b) {
                            assert!(
                                (x - y).abs() < 1e-7,
                                "{} deviates: {x} vs {y}",
                                approach.paper_name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gpu_approaches_report_simulated_time() {
        let problem = small_problem();
        let device = Device::new(DeviceSpec::a100(), 2);
        let prepared = preprocess_approach(&problem, DualOpApproach::ExplGpuOpt, Some(&device));
        assert!(prepared.report.assembly_gpu_s > 0.0);
        assert_eq!(prepared.report.assembly_cpu_s, 0.0);
        let cost = measure_apply_cost(
            &problem,
            &prepared,
            DualOpApproach::ExplGpuOpt,
            Some(&device),
            3,
        );
        assert!(cost.per_iteration_s > 0.0);
    }

    #[test]
    fn implicit_approaches_skip_assembly() {
        let problem = small_problem();
        let prepared = preprocess_approach(&problem, DualOpApproach::ImplCholmod, None);
        assert_eq!(prepared.report.assembly_cpu_s, 0.0);
        assert_eq!(prepared.report.assembly_gpu_s, 0.0);
        assert!(prepared.report.factorization_s > 0.0);
    }
}
