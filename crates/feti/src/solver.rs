//! The Total-FETI solver driver: per-subdomain preprocessing, coarse problem,
//! PCPG solve, and primal solution recovery.

use crate::dualop::{DualOperator, SubdomainFactors};
use crate::pcpg::PcpgStats;
use rayon::prelude::*;
use sc_core::{
    assemble_sc_batch_cluster_map, assemble_sc_batch_gpu_map, assemble_sc_batch_map,
    assemble_sc_batch_scheduled_map, BatchReport, ClusterOptions, ClusterReport, ScConfig,
    ScheduleOptions,
};
use sc_dense::Mat;
use sc_factor::Engine;
use sc_fem::HeatProblem;
use sc_gpu::{Device, DevicePool, GpuKernels};
use sc_order::Ordering;
use sc_sparse::{Coo, Csc};
use std::sync::Arc;

/// How the dual operator is realized.
#[derive(Clone)]
pub enum DualMode {
    /// Implicit application (factorization only in preprocessing).
    Implicit,
    /// Explicit dense `F̃ᵢ`, assembled on the CPU.
    ExplicitCpu(ScConfig),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU; subdomains are
    /// distributed round-robin over the device's streams.
    ExplicitGpu(ScConfig, Arc<Device>),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU through the
    /// §4.4 scheduler (`sc_core::schedule`): cost-model-driven LPT stream
    /// assignment with temporary-arena admission instead of blind
    /// round-robin. The schedule's per-stream timeline is exposed through
    /// [`FetiSolver::assembly_report`].
    ExplicitGpuScheduled(ScConfig, Arc<Device>, ScheduleOptions),
    /// Explicit dense `F̃ᵢ`, sharded across a **pool of simulated GPUs**
    /// (the paper's 8-GPU Karolina node): a two-level plan partitions
    /// subdomains across devices (cost-aware LPT with per-device
    /// arena-capacity admissibility), then each device runs the §4.4
    /// scheduler on its share. Numerics stay bitwise identical to the
    /// sequential CPU path; [`FetiSolver::cluster_report`] exposes the
    /// per-device roll-up.
    ExplicitGpuCluster {
        /// Assembly configuration.
        cfg: ScConfig,
        /// The device pool (heterogeneous mixes allowed).
        pool: Arc<DevicePool>,
        /// Cluster scheduling options.
        opts: ClusterOptions,
    },
}

/// Dual preconditioner selection for PCPG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preconditioner {
    /// No preconditioning (identity).
    None,
    /// The lumped preconditioner `M⁻¹ = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ` — three sparse
    /// products per subdomain per iteration, the cheap standard choice in
    /// FETI practice.
    Lumped,
}

/// Solver options.
#[derive(Clone)]
pub struct FetiOptions {
    /// Dual operator realization.
    pub dual: DualMode,
    /// Numeric factorization engine for `K_reg`.
    pub engine: Engine,
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Dual preconditioner.
    pub preconditioner: Preconditioner,
    /// PCPG relative tolerance.
    pub tol: f64,
    /// PCPG iteration budget.
    pub max_iter: usize,
}

impl Default for FetiOptions {
    fn default() -> Self {
        FetiOptions {
            dual: DualMode::Implicit,
            engine: Engine::Simplicial,
            ordering: Ordering::NestedDissection,
            preconditioner: Preconditioner::None,
            tol: 1e-9,
            max_iter: 1000,
        }
    }
}

/// Solution of a FETI solve.
pub struct FetiSolution {
    /// Per-subdomain primal solutions.
    pub u_locals: Vec<Vec<f64>>,
    /// The dual solution `λ`.
    pub lambda: Vec<f64>,
    /// PCPG statistics.
    pub stats: PcpgStats,
}

/// A preprocessed FETI solver ready to run PCPG.
pub struct FetiSolver<'p> {
    problem: &'p HeatProblem,
    factors: Vec<SubdomainFactors>,
    /// `Some` for the explicit modes; the implicit mode applies through
    /// `factors` directly.
    explicit_ops: Option<Vec<DualOperator>>,
    /// Sparse `G = B R` (`n_lambda × n_kernels`).
    g: Csc,
    /// Dense Cholesky factor of `GᵀG`.
    gtg: Mat,
    /// Kernel column of each subdomain (floating ones only).
    kernel_col: Vec<Option<usize>>,
    /// Dual right-hand side `d = B K⁺ f`.
    d: Vec<f64>,
    /// Coarse right-hand side `e = Rᵀ f`.
    e: Vec<f64>,
    /// Timing/cache diagnostics of the batched explicit assembly (`None` for
    /// the implicit mode).
    assembly_report: Option<BatchReport>,
    /// Per-device roll-up of the cluster-sharded assembly (`None` unless
    /// [`DualMode::ExplicitGpuCluster`] was used).
    cluster_report: Option<ClusterReport>,
}

impl<'p> FetiSolver<'p> {
    /// Run the initialization + preprocessing stages (paper §2.2): orderings,
    /// factorizations, explicit assembly (if requested), coarse problem.
    pub fn new(problem: &'p HeatProblem, opts: &FetiOptions) -> Self {
        // per-subdomain factorizations in parallel (the paper's loop over the
        // cluster's subdomains, one thread per subdomain)
        let factors: Vec<SubdomainFactors> = problem
            .subdomains
            .par_iter()
            .map(|sd| SubdomainFactors::build(sd, opts.engine, opts.ordering))
            .collect();

        // dual operators: explicit modes pre-assemble the dense F̃ᵢ through
        // the batched driver (one rayon task per subdomain, shared block-cut
        // cache); the implicit mode reuses `factors` directly at application
        // time
        let mut assembly_report: Option<BatchReport> = None;
        let mut cluster_report: Option<ClusterReport> = None;
        let explicit_ops: Option<Vec<DualOperator>> = match &opts.dual {
            DualMode::Implicit => None,
            DualMode::ExplicitCpu(cfg) => {
                // each task extracts its own factor copy, so peak memory is
                // one factor per worker, not one per subdomain
                let batch = assemble_sc_batch_map(
                    &factors,
                    cfg,
                    |_| sc_core::CpuExec,
                    |_, f| f.chol.factor_csc(),
                    |f| &f.bt_perm,
                );
                assembly_report = Some(batch.report);
                Some(batch.f.into_iter().map(DualOperator::ExplicitCpu).collect())
            }
            DualMode::ExplicitGpu(cfg, device) => {
                let n_streams = device.n_streams();
                let batch = assemble_sc_batch_gpu_map(
                    &factors,
                    cfg,
                    device,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                assembly_report = Some(batch.report);
                Some(
                    batch
                        .f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| DualOperator::ExplicitGpu {
                            f,
                            kernels: GpuKernels::new(device.stream(i % n_streams)),
                        })
                        .collect(),
                )
            }
            DualMode::ExplicitGpuScheduled(cfg, device, sched_opts) => {
                let batch = assemble_sc_batch_scheduled_map(
                    &factors,
                    cfg,
                    device,
                    sched_opts,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                // keep each operator on the stream its schedule placed it on
                let stream_of: Vec<usize> = batch
                    .report
                    .timings
                    .iter()
                    .map(|t| t.stream.unwrap_or(0))
                    .collect();
                assembly_report = Some(batch.report);
                Some(
                    batch
                        .f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| DualOperator::ExplicitGpu {
                            f,
                            kernels: GpuKernels::new(device.stream(stream_of[i])),
                        })
                        .collect(),
                )
            }
            DualMode::ExplicitGpuCluster { cfg, pool, opts } => {
                let res = assemble_sc_batch_cluster_map(
                    &factors,
                    cfg,
                    pool,
                    opts,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                // bind each operator to the device and stream its schedule
                // placed it on
                let combined = res.report.combined();
                let placement: Vec<(usize, usize)> = combined
                    .timings
                    .iter()
                    .map(|t| (res.report.device_of[t.index], t.stream.unwrap_or(0)))
                    .collect();
                assembly_report = Some(combined);
                cluster_report = Some(res.report);
                Some(
                    res.f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| {
                            let (dev, stream) = placement[i];
                            DualOperator::ExplicitGpu {
                                f,
                                kernels: GpuKernels::new(pool.device(dev).stream(stream)),
                            }
                        })
                        .collect(),
                )
            }
        };

        // kernel numbering and G = B R (kernel = constant vector: G entries
        // are just the B̃ signs, since each B̃ᵀ column has a single ±1)
        let mut kernel_col = vec![None; problem.subdomains.len()];
        let mut n_kernels = 0;
        for (i, sd) in problem.subdomains.iter().enumerate() {
            if sd.kernel.is_some() {
                kernel_col[i] = Some(n_kernels);
                n_kernels += 1;
            }
        }
        let mut g_coo = Coo::new(problem.n_lambda, n_kernels.max(1));
        let mut e = vec![0.0; n_kernels.max(1)];
        for (i, sd) in problem.subdomains.iter().enumerate() {
            let Some(kc) = kernel_col[i] else { continue };
            let ker = sd.kernel.as_ref().expect("kernel column implies kernel");
            // G[:, kc] = B_i r_i
            let mut gr = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ker, 0.0, &mut gr);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                if gr[ll] != 0.0 {
                    g_coo.push(gl, kc, gr[ll]);
                }
            }
            // e_i = R_iᵀ f_i
            e[kc] = sd.f.iter().zip(ker).map(|(fi, ri)| fi * ri).sum();
        }
        let g = g_coo.to_csc();

        // coarse factor (GᵀG); for zero kernels keep a 1x1 identity
        let gtg = if n_kernels == 0 {
            Mat::identity(1)
        } else {
            let gd = g.to_dense();
            let mut gtg = Mat::zeros(n_kernels, n_kernels);
            sc_dense::syrk_t(1.0, gd.as_ref(), 0.0, gtg.as_mut());
            gtg.symmetrize_from_lower();
            let mut l = gtg;
            sc_dense::cholesky_in_place(l.as_mut())
                .expect("GᵀG must be SPD (decomposition has a fixed subdomain)");
            l
        };

        // d = B K⁺ f
        let d_locals: Vec<Vec<f64>> = factors
            .par_iter()
            .zip(&problem.subdomains)
            .map(|(f, sd)| {
                let kf = f.solve_kplus(&sd.f);
                let mut dl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kf, 0.0, &mut dl);
                dl
            })
            .collect();
        let mut d = vec![0.0; problem.n_lambda];
        for (sd, dl) in problem.subdomains.iter().zip(&d_locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                d[gl] += dl[ll];
            }
        }

        FetiSolver {
            problem,
            factors,
            explicit_ops,
            g,
            gtg,
            kernel_col,
            d,
            e,
            assembly_report,
            cluster_report,
        }
    }

    /// Diagnostics of the batched explicit assembly: per-subdomain wall
    /// times, achieved parallel speedup, and block-cut cache hit counts.
    /// `None` when the dual operator is applied implicitly. For
    /// [`DualMode::ExplicitGpuCluster`] this is the flattened cluster
    /// roll-up ([`ClusterReport::combined`]).
    pub fn assembly_report(&self) -> Option<&BatchReport> {
        self.assembly_report.as_ref()
    }

    /// Per-device diagnostics of the cluster-sharded assembly: the device
    /// partition, per-device makespans/utilization, and the cluster
    /// makespan. `None` unless [`DualMode::ExplicitGpuCluster`] was used.
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.cluster_report.as_ref()
    }

    /// Number of kernel columns (size of the coarse problem).
    pub fn n_kernels(&self) -> usize {
        self.kernel_col.iter().flatten().count()
    }

    /// Apply the assembled dual operator `F` to a global dual vector.
    pub fn apply_f(&self, p: &[f64]) -> Vec<f64> {
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .enumerate()
            .map(|(i, sd)| {
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| p[gl]).collect();
                let mut ql = vec![0.0; sd.n_lambda()];
                match &self.explicit_ops {
                    Some(ops) => ops[i].apply(&pl, &mut ql),
                    None => crate::dualop::apply_implicit(&self.factors[i], &pl, &mut ql),
                }
                ql
            })
            .collect();
        let mut q = vec![0.0; self.problem.n_lambda];
        for (sd, ql) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                q[gl] += ql[ll];
            }
        }
        q
    }

    /// Solve the small coarse system `(GᵀG) x = b`.
    fn coarse_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        sc_dense::cholesky_solve(self.gtg.as_ref(), &mut x);
        x
    }

    /// Projector `P x = x − G (GᵀG)⁻¹ Gᵀ x`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        if self.n_kernels() == 0 {
            return x.to_vec();
        }
        let mut gtx = vec![0.0; self.g.ncols()];
        self.g.spmv_t(1.0, x, 0.0, &mut gtx);
        let y = self.coarse_solve(&gtx);
        let mut out = x.to_vec();
        self.g.spmv(-1.0, &y, 1.0, &mut out);
        out
    }

    /// Apply the lumped preconditioner `M⁻¹ w = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ w̃ᵢ`.
    pub fn apply_lumped(&self, w: &[f64]) -> Vec<f64> {
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .map(|sd| {
                let wl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| w[gl]).collect();
                let mut t = vec![0.0; sd.n_dofs()];
                sd.bt.spmv(1.0, &wl, 0.0, &mut t); // B̃ᵀ w̃
                let mut kt = vec![0.0; sd.n_dofs()];
                sd.k.spmv(1.0, &t, 0.0, &mut kt); // K B̃ᵀ w̃
                let mut zl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kt, 0.0, &mut zl); // B̃ K B̃ᵀ w̃
                zl
            })
            .collect();
        let mut z = vec![0.0; self.problem.n_lambda];
        for (sd, zl) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                z[gl] += zl[ll];
            }
        }
        z
    }

    /// Full FETI solve: PCPG on the dual, then primal recovery.
    pub fn solve(&self, opts: &FetiOptions) -> FetiSolution {
        // λ0 = G (GᵀG)⁻¹ e satisfies Gᵀ λ0 = e (Eq. 4)
        let lambda0 = if self.n_kernels() == 0 {
            vec![0.0; self.problem.n_lambda]
        } else {
            let y = self.coarse_solve(&self.e);
            let mut l0 = vec![0.0; self.problem.n_lambda];
            self.g.spmv(1.0, &y, 0.0, &mut l0);
            l0
        };
        let res = crate::pcpg::pcpg_preconditioned(
            &self.d,
            lambda0,
            |p| self.apply_f(p),
            |x| self.project(x),
            |w| match opts.preconditioner {
                Preconditioner::None => w.to_vec(),
                Preconditioner::Lumped => self.apply_lumped(w),
            },
            opts.tol,
            opts.max_iter,
        );
        let u_locals = self.recover_primal(&res.lambda);
        FetiSolution {
            u_locals,
            lambda: res.lambda,
            stats: res.stats,
        }
    }

    /// Primal recovery: `α = (GᵀG)⁻¹Gᵀ(Fλ − d)`,
    /// `uᵢ = K⁺(fᵢ − B̃ᵢᵀ λ̃ᵢ) + Rᵢ αᵢ` (Eq. 5).
    pub fn recover_primal(&self, lambda: &[f64]) -> Vec<Vec<f64>> {
        let alphas: Vec<f64> = if self.n_kernels() == 0 {
            Vec::new()
        } else {
            let flam = self.apply_f(lambda);
            let resid: Vec<f64> = flam.iter().zip(&self.d).map(|(a, b)| a - b).collect();
            let mut gtr = vec![0.0; self.g.ncols()];
            self.g.spmv_t(1.0, &resid, 0.0, &mut gtr);
            self.coarse_solve(&gtr)
        };
        self.factors
            .par_iter()
            .zip(&self.problem.subdomains)
            .enumerate()
            .map(|(i, (fac, sd))| {
                // f_i - B̃ᵀ λ̃
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lambda[gl]).collect();
                let mut rhs = sd.f.clone();
                sd.bt.spmv(-1.0, &pl, 1.0, &mut rhs);
                let mut u = fac.solve_kplus(&rhs);
                if let (Some(kc), Some(ker)) = (self.kernel_col[i], sd.kernel.as_ref()) {
                    let a = alphas[kc];
                    for (ui, ri) in u.iter_mut().zip(ker) {
                        *ui += a * ri;
                    }
                }
                u
            })
            .collect()
    }

    /// The dual right-hand side.
    pub fn dual_rhs(&self) -> &[f64] {
        &self.d
    }

    /// Borrow the per-subdomain factor bundles.
    pub fn factors(&self) -> &[SubdomainFactors] {
        &self.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_fem::Gluing;
    use sc_gpu::DeviceSpec;

    fn direct_solution(problem: &HeatProblem) -> Vec<f64> {
        let (k, f) = problem.assemble_global();
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        chol.solve(&f)
    }

    fn check_against_direct(problem: &HeatProblem, opts: &FetiOptions, tol: f64) {
        let solver = FetiSolver::new(problem, opts);
        let sol = solver.solve(opts);
        assert!(
            sol.stats.converged,
            "PCPG did not converge: {:?}",
            sol.stats
        );
        let direct = direct_solution(problem);
        let u = problem.gather_global(&sol.u_locals);
        let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u.len() {
            assert!(
                (u[i] - direct[i]).abs() < tol * scale,
                "dof {i}: feti {} vs direct {}",
                u[i],
                direct[i]
            );
        }
    }

    #[test]
    fn implicit_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (3, 2), Gluing::Redundant);
        check_against_direct(&p, &FetiOptions::default(), 1e-6);
    }

    #[test]
    fn explicit_cpu_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let opts = FetiOptions {
            dual: DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
    }

    #[test]
    fn explicit_gpu_3d_matches_direct() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpu(ScConfig::optimized(true, true), Arc::clone(&dev)),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
    }

    #[test]
    fn explicit_gpu_scheduled_matches_direct_and_reports_schedule() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpuScheduled(
                ScConfig::Auto,
                Arc::clone(&dev),
                sc_core::ScheduleOptions::default(),
            ),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
        let solver = FetiSolver::new(&p, &opts);
        let report = solver.assembly_report().expect("scheduled mode reports");
        assert_eq!(report.schedule.len(), p.subdomains.len());
        assert!(report.device_seconds > 0.0);
        assert!(report.timings.iter().all(|t| t.stream.is_some()));
    }

    #[test]
    fn explicit_gpu_cluster_matches_direct_and_reports_partition() {
        use sc_gpu::DevicePool;
        let p = HeatProblem::build_3d(2, (2, 2, 2), Gluing::Redundant);
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpuCluster {
                cfg: ScConfig::optimized(true, true),
                pool: Arc::clone(&pool),
                opts: sc_core::ClusterOptions::default(),
            },
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(pool.synchronize_all() > 0.0, "the pool must have been used");

        let solver = FetiSolver::new(&p, &opts);
        let report = solver.cluster_report().expect("cluster mode reports");
        assert_eq!(report.device_of.len(), p.subdomains.len());
        let mut placed: Vec<usize> = report.partition.concat();
        placed.sort_unstable();
        assert_eq!(placed, (0..p.subdomains.len()).collect::<Vec<_>>());
        assert!(report.makespan > 0.0);
        let combined = solver.assembly_report().expect("combined roll-up");
        assert_eq!(combined.timings.len(), p.subdomains.len());
        assert_eq!(combined.device_seconds, report.makespan);

        // the cluster-assembled F̃ᵢ are bitwise identical to the CPU
        // explicit path (same fixed config ⇒ same kernel sequence)
        let cpu_opts = FetiOptions {
            dual: DualMode::ExplicitCpu(ScConfig::optimized(true, true)),
            ..Default::default()
        };
        let s_cpu = FetiSolver::new(&p, &cpu_opts);
        let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = solver.apply_f(&lam);
        let b = s_cpu.apply_f(&lam);
        assert_eq!(a, b, "cluster dual operator must match the CPU one bitwise");
    }

    #[test]
    fn chain_gluing_also_converges() {
        let p = HeatProblem::build_2d(3, (3, 1), Gluing::Chain);
        check_against_direct(&p, &FetiOptions::default(), 1e-6);
    }

    #[test]
    fn supernodal_engine_matches() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let opts = FetiOptions {
            engine: Engine::Supernodal,
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
    }

    #[test]
    fn lumped_preconditioner_converges_and_matches() {
        let p = HeatProblem::build_2d(5, (3, 2), Gluing::Redundant);
        let plain = FetiOptions::default();
        let lumped = FetiOptions {
            preconditioner: Preconditioner::Lumped,
            ..Default::default()
        };
        let s1 = FetiSolver::new(&p, &plain).solve(&plain);
        let s2 = FetiSolver::new(&p, &lumped).solve(&lumped);
        assert!(s1.stats.converged && s2.stats.converged);
        // same solution
        let u1 = p.gather_global(&s1.u_locals);
        let u2 = p.gather_global(&s2.u_locals);
        let scale = u1.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u1.len() {
            assert!((u1[i] - u2[i]).abs() < 1e-6 * scale);
        }
        // the lumped preconditioner should not need more iterations
        assert!(
            s2.stats.iterations <= s1.stats.iterations + 2,
            "lumped {} vs plain {}",
            s2.stats.iterations,
            s1.stats.iterations
        );
    }

    #[test]
    fn lambda_jump_is_closed() {
        // after convergence the interface jump B u must vanish
        let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
        let opts = FetiOptions::default();
        let solver = FetiSolver::new(&p, &opts);
        let sol = solver.solve(&opts);
        let mut jump = vec![0.0; p.n_lambda];
        for (sd, ul) in p.subdomains.iter().zip(&sol.u_locals) {
            let mut local = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ul, 0.0, &mut local);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                jump[gl] += local[ll];
            }
        }
        let max_jump = jump.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_jump < 1e-6, "interface jump {max_jump}");
    }
}
