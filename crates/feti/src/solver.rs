//! The Total-FETI solver driver: per-subdomain preprocessing, coarse problem,
//! PCPG solve, and primal solution recovery.

use crate::dualop::{DualOperator, SubdomainFactors};
use crate::pcpg::PcpgStats;
use rayon::prelude::*;
use sc_core::{
    assemble_sc_batch_cluster_map, assemble_sc_batch_gpu_map, assemble_sc_batch_map,
    assemble_sc_batch_scheduled_map, estimate_apply, estimate_cost, plan_hybrid, BatchReport,
    ClusterOptions, ClusterReport, DeviceSlot, Formulation, HybridPlan, HybridPlanOptions,
    ScConfig, ScheduleOptions,
};
use sc_dense::Mat;
use sc_factor::Engine;
use sc_fem::HeatProblem;
use sc_gpu::{Device, DevicePool, GpuKernels};
use sc_order::Ordering;
use sc_sparse::{Coo, Csc};
use std::sync::Arc;

/// How the dual operator is realized.
#[derive(Clone)]
pub enum DualMode {
    /// Implicit application (factorization only in preprocessing).
    Implicit,
    /// Explicit dense `F̃ᵢ`, assembled on the CPU.
    ExplicitCpu(ScConfig),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU; subdomains are
    /// distributed round-robin over the device's streams.
    ExplicitGpu(ScConfig, Arc<Device>),
    /// Explicit dense `F̃ᵢ`, assembled on the simulated GPU through the
    /// §4.4 scheduler (`sc_core::schedule`): cost-model-driven LPT stream
    /// assignment with temporary-arena admission instead of blind
    /// round-robin. The schedule's per-stream timeline is exposed through
    /// [`FetiSolver::assembly_report`].
    ExplicitGpuScheduled(ScConfig, Arc<Device>, ScheduleOptions),
    /// Explicit dense `F̃ᵢ`, sharded across a **pool of simulated GPUs**
    /// (the paper's 8-GPU Karolina node): a two-level plan partitions
    /// subdomains across devices (cost-aware LPT with per-device
    /// arena-capacity admissibility), then each device runs the §4.4
    /// scheduler on its share. Numerics stay bitwise identical to the
    /// sequential CPU path; [`FetiSolver::cluster_report`] exposes the
    /// per-device roll-up.
    ExplicitGpuCluster {
        /// Assembly configuration.
        cfg: ScConfig,
        /// The device pool (heterogeneous mixes allowed).
        pool: Arc<DevicePool>,
        /// Cluster scheduling options.
        opts: ClusterOptions,
    },
    /// **Per-subdomain** explicit-vs-implicit selection (the paper's Table-1
    /// auto-selection extended from "which kernel config" to "which operator
    /// formulation"): the §4.4 cost model prices, for every subdomain, the
    /// explicit-GPU (cluster path), explicit-CPU, and implicit realizations
    /// — one-time assembly plus the expected PCPG iterations times the
    /// per-application cost — and picks the cheapest **subject to the
    /// device arena capacities**. Subdomains whose temporaries fit no arena
    /// are never assembled on a device: they *spill* to the implicit (or
    /// explicit-CPU) formulation instead of erroring. The decisions,
    /// predicted-vs-realized costs, and arena high water roll up into
    /// [`FetiSolver::hybrid_report`].
    Hybrid {
        /// Assembly configuration of the explicit shares.
        cfg: ScConfig,
        /// The device pool (may be empty: everything then runs on the host).
        pool: Arc<DevicePool>,
        /// Hybrid decision + scheduling options.
        opts: HybridOptions,
    },
}

/// Options of [`DualMode::Hybrid`].
#[derive(Clone, Debug, Default)]
pub struct HybridOptions {
    /// Decision-layer inputs: expected iteration count, host pricing spec,
    /// candidate set, collapse override.
    pub plan: HybridPlanOptions,
    /// Scheduling options of the explicit-GPU share (`ready_at` is indexed
    /// by **subdomain**, like the other modes; it is sliced down to the
    /// share the planner sends to the pool).
    pub cluster: ClusterOptions,
}

/// Dual preconditioner selection for PCPG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preconditioner {
    /// No preconditioning (identity).
    None,
    /// The lumped preconditioner `M⁻¹ = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ` — three sparse
    /// products per subdomain per iteration, the cheap standard choice in
    /// FETI practice.
    Lumped,
}

/// Solver options.
#[derive(Clone)]
pub struct FetiOptions {
    /// Dual operator realization.
    pub dual: DualMode,
    /// Numeric factorization engine for `K_reg`.
    pub engine: Engine,
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Dual preconditioner.
    pub preconditioner: Preconditioner,
    /// PCPG relative tolerance.
    pub tol: f64,
    /// PCPG iteration budget.
    pub max_iter: usize,
}

impl Default for FetiOptions {
    fn default() -> Self {
        FetiOptions {
            dual: DualMode::Implicit,
            engine: Engine::Simplicial,
            ordering: Ordering::NestedDissection,
            preconditioner: Preconditioner::None,
            tol: 1e-9,
            max_iter: 1000,
        }
    }
}

/// Solution of a FETI solve.
pub struct FetiSolution {
    /// Per-subdomain primal solutions.
    pub u_locals: Vec<Vec<f64>>,
    /// The dual solution `λ`.
    pub lambda: Vec<f64>,
    /// PCPG statistics.
    pub stats: PcpgStats,
}

/// Roll-up of one hybrid preprocessing run: the decision layer's plan plus
/// the realized assembly diagnostics of both explicit shares, in the
/// existing [`BatchReport`]/[`ClusterReport`] vocabulary. All subdomain
/// indices are **problem-global** (the per-share reports are remapped).
#[derive(Clone, Debug)]
pub struct HybridReport {
    /// Per-subdomain decisions with predicted assembly/apply costs.
    pub plan: HybridPlan,
    /// Cluster roll-up of the explicit-GPU share (`None` when the planner
    /// sent nothing to the pool). `device_of` spans the whole problem with
    /// `usize::MAX` for subdomains not assembled on the pool.
    pub cluster: Option<ClusterReport>,
    /// Batch report of the explicit-CPU share (`None` when empty).
    pub cpu_batch: Option<BatchReport>,
    /// Σ predicted assembly seconds over the explicit decisions.
    pub predicted_assembly_seconds: f64,
    /// Realized simulated makespan of the explicit-GPU share.
    pub realized_gpu_assembly_seconds: f64,
    /// Realized host wall seconds of the explicit-CPU share.
    pub realized_cpu_assembly_seconds: f64,
    /// Largest per-device temporary-arena high water of the GPU share,
    /// bytes.
    pub arena_high_water: usize,
}

impl HybridReport {
    /// Number of subdomains realized with the given formulation.
    pub fn count_of(&self, f: Formulation) -> usize {
        self.plan.count_of(f)
    }

    /// Predicted cost-to-solution at `iters` operator applications (see
    /// [`HybridPlan::cost_at`]); compare against the expected-iteration
    /// input and the realized [`PcpgStats::operator_applications`].
    ///
    /// [`PcpgStats::operator_applications`]: crate::pcpg::PcpgStats::operator_applications
    pub fn predicted_cost_at(&self, iters: f64) -> f64 {
        self.plan.cost_at(iters)
    }

    /// Subdomain indices that fit no device arena and therefore could never
    /// be assembled explicitly on the pool (the recoverable spill set).
    pub fn spilled(&self) -> &[usize] {
        &self.plan.spilled
    }
}

/// Per-subdomain operator dispatch slot of the explicit/hybrid modes.
// Variant sizes differ by design, mirroring DualOperator: slots live in one
// short per-subdomain Vec, boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum OpSlot {
    /// An owned, ready-to-apply operator.
    Own(DualOperator),
    /// Apply implicitly through the solver's shared factor bundle (the
    /// hybrid mode's spill/low-iteration choice — avoids duplicating the
    /// factorization the solver keeps for `K⁺` solves anyway). Carries the
    /// subdomain's dof-space scratch vector so PCPG iterations reuse one
    /// allocation ([`apply_implicit_with`](crate::dualop::apply_implicit_with));
    /// the mutex is uncontended — `apply_f` runs one task per subdomain.
    SharedImplicit {
        /// Reused dof-space work vector.
        scratch: std::sync::Mutex<Vec<f64>>,
    },
}

impl OpSlot {
    fn shared_implicit() -> Self {
        OpSlot::SharedImplicit {
            scratch: std::sync::Mutex::new(Vec::new()),
        }
    }
}

/// A preprocessed FETI solver ready to run PCPG.
pub struct FetiSolver<'p> {
    problem: &'p HeatProblem,
    factors: Vec<SubdomainFactors>,
    /// `Some` for the explicit and hybrid modes; the implicit mode applies
    /// through `factors` directly.
    explicit_ops: Option<Vec<OpSlot>>,
    /// Sparse `G = B R` (`n_lambda × n_kernels`).
    g: Csc,
    /// Dense Cholesky factor of `GᵀG`.
    gtg: Mat,
    /// Kernel column of each subdomain (floating ones only).
    kernel_col: Vec<Option<usize>>,
    /// Dual right-hand side `d = B K⁺ f`.
    d: Vec<f64>,
    /// Coarse right-hand side `e = Rᵀ f`.
    e: Vec<f64>,
    /// Timing/cache diagnostics of the batched explicit assembly (`None` for
    /// the implicit mode).
    assembly_report: Option<BatchReport>,
    /// Per-device roll-up of the cluster-sharded assembly (`None` unless
    /// [`DualMode::ExplicitGpuCluster`] or [`DualMode::Hybrid`] was used).
    cluster_report: Option<ClusterReport>,
    /// Decision/cost roll-up of the hybrid mode (`None` otherwise).
    hybrid_report: Option<HybridReport>,
}

/// Remap a share-local [`BatchReport`]'s subdomain indices to problem-global
/// ones through `map` (timings re-sorted into global order).
fn remap_batch_report(mut rep: BatchReport, map: &[usize]) -> BatchReport {
    for t in &mut rep.timings {
        t.index = map[t.index];
    }
    for e in &mut rep.schedule {
        e.index = map[e.index];
    }
    rep.timings.sort_by_key(|t| t.index);
    rep
}

/// Remap a share-local [`ClusterReport`] to problem-global indices:
/// per-device reports and the partition go through `map`, `device_of` is
/// re-expanded to `n_total` entries with `usize::MAX` for subdomains outside
/// the share.
fn remap_cluster_report(mut rep: ClusterReport, map: &[usize], n_total: usize) -> ClusterReport {
    rep.per_device = rep
        .per_device
        .into_iter()
        .map(|r| remap_batch_report(r, map))
        .collect();
    for part in &mut rep.partition {
        for g in part.iter_mut() {
            *g = map[*g];
        }
    }
    let mut device_of = vec![usize::MAX; n_total];
    for (local, d) in rep.device_of.iter().enumerate() {
        device_of[map[local]] = *d;
    }
    rep.device_of = device_of;
    rep
}

impl<'p> FetiSolver<'p> {
    /// Run the initialization + preprocessing stages (paper §2.2): orderings,
    /// factorizations, explicit assembly (if requested), coarse problem.
    pub fn new(problem: &'p HeatProblem, opts: &FetiOptions) -> Self {
        // per-subdomain factorizations in parallel (the paper's loop over the
        // cluster's subdomains, one thread per subdomain)
        let factors: Vec<SubdomainFactors> = problem
            .subdomains
            .par_iter()
            .map(|sd| SubdomainFactors::build(sd, opts.engine, opts.ordering))
            .collect();

        // dual operators: explicit modes pre-assemble the dense F̃ᵢ through
        // the batched driver (one rayon task per subdomain, shared block-cut
        // cache); the implicit mode reuses `factors` directly at application
        // time
        let mut assembly_report: Option<BatchReport> = None;
        let mut cluster_report: Option<ClusterReport> = None;
        let mut hybrid_report: Option<HybridReport> = None;
        let explicit_ops: Option<Vec<OpSlot>> = match &opts.dual {
            DualMode::Implicit => None,
            DualMode::ExplicitCpu(cfg) => {
                // each task extracts its own factor copy, so peak memory is
                // one factor per worker, not one per subdomain
                let batch = assemble_sc_batch_map(
                    &factors,
                    cfg,
                    |_| sc_core::CpuExec,
                    |_, f| f.chol.factor_csc(),
                    |f| &f.bt_perm,
                );
                assembly_report = Some(batch.report);
                Some(
                    batch
                        .f
                        .into_iter()
                        .map(|f| OpSlot::Own(DualOperator::ExplicitCpu(f)))
                        .collect(),
                )
            }
            DualMode::ExplicitGpu(cfg, device) => {
                let n_streams = device.n_streams();
                let batch = assemble_sc_batch_gpu_map(
                    &factors,
                    cfg,
                    device,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                assembly_report = Some(batch.report);
                Some(
                    batch
                        .f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| {
                            OpSlot::Own(DualOperator::ExplicitGpu {
                                f,
                                kernels: GpuKernels::new(device.stream(i % n_streams)),
                            })
                        })
                        .collect(),
                )
            }
            DualMode::ExplicitGpuScheduled(cfg, device, sched_opts) => {
                let batch = assemble_sc_batch_scheduled_map(
                    &factors,
                    cfg,
                    device,
                    sched_opts,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                // keep each operator on the stream its schedule placed it on
                let stream_of: Vec<usize> = batch
                    .report
                    .timings
                    .iter()
                    .map(|t| t.stream.unwrap_or(0))
                    .collect();
                assembly_report = Some(batch.report);
                Some(
                    batch
                        .f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| {
                            OpSlot::Own(DualOperator::ExplicitGpu {
                                f,
                                kernels: GpuKernels::new(device.stream(stream_of[i])),
                            })
                        })
                        .collect(),
                )
            }
            DualMode::ExplicitGpuCluster { cfg, pool, opts } => {
                let res = assemble_sc_batch_cluster_map(
                    &factors,
                    cfg,
                    pool,
                    opts,
                    |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                );
                // bind each operator to the device and stream its schedule
                // placed it on
                let combined = res.report.combined();
                let placement: Vec<(usize, usize)> = combined
                    .timings
                    .iter()
                    .map(|t| (res.report.device_of[t.index], t.stream.unwrap_or(0)))
                    .collect();
                assembly_report = Some(combined);
                cluster_report = Some(res.report);
                Some(
                    res.f
                        .into_iter()
                        .enumerate()
                        .map(|(i, f)| {
                            let (dev, stream) = placement[i];
                            OpSlot::Own(DualOperator::ExplicitGpu {
                                f,
                                kernels: GpuKernels::new(pool.device(dev).stream(stream)),
                            })
                        })
                        .collect(),
                )
            }
            DualMode::Hybrid { cfg, pool, opts } => {
                // decision layer: analytic assembly + per-iteration apply
                // estimates per subdomain (the factor is extracted once per
                // task for shape/nnz inspection, then dropped)
                let ref_spec = if pool.is_empty() {
                    opts.plan.host.clone()
                } else {
                    pool.device(0).spec().clone()
                };
                let estimates: Vec<(sc_core::CostEstimate, sc_core::ApplyEstimate)> = factors
                    .par_iter()
                    .enumerate()
                    .map(|(i, f)| {
                        // borrow the factor when the engine exposes it
                        // (simplicial); only supernodal factors pay a copy
                        let owned;
                        let l: &Csc = match f.chol.factor_csc_ref() {
                            Some(l) => l,
                            None => {
                                owned = f.chol.factor_csc();
                                &owned
                            }
                        };
                        let bt = &f.bt_perm;
                        let params = cfg.resolve(!pool.is_empty(), l, bt);
                        (
                            estimate_cost(&ref_spec, l, bt, &params, i),
                            estimate_apply(l, bt, i),
                        )
                    })
                    .collect();
                let (costs, applies): (Vec<_>, Vec<_>) = estimates.into_iter().unzip();
                let slots: Vec<DeviceSlot> =
                    pool.devices().iter().map(|d| DeviceSlot::of(d)).collect();
                let plan = plan_hybrid(&costs, &applies, &slots, &opts.plan);
                let gpu_idx = plan.indices_of(Formulation::ExplicitGpu);
                let cpu_idx = plan.indices_of(Formulation::ExplicitCpu);

                // one dispatch slot per subdomain; non-explicit ones borrow
                // the shared factor bundle at application time
                let mut ops: Vec<OpSlot> = (0..factors.len())
                    .map(|_| OpSlot::shared_implicit())
                    .collect();

                // explicit-GPU share through the cluster driver (two-level
                // plan, arena admission, record/replay — bitwise CPU-equal)
                let mut gpu_cluster: Option<ClusterReport> = None;
                if !gpu_idx.is_empty() {
                    let share_opts = ClusterOptions {
                        policy: opts.cluster.policy,
                        ready_at: opts
                            .cluster
                            .ready_at
                            .as_ref()
                            .map(|r| gpu_idx.iter().map(|&g| r[g]).collect()),
                    };
                    let gpu_items: Vec<&SubdomainFactors> =
                        gpu_idx.iter().map(|&g| &factors[g]).collect();
                    let res = assemble_sc_batch_cluster_map(
                        &gpu_items,
                        cfg,
                        pool,
                        &share_opts,
                        |_, f| std::borrow::Cow::Owned(f.chol.factor_csc()),
                        |f| &f.bt_perm,
                    );
                    let combined = res.report.combined();
                    for (local, f) in res.f.into_iter().enumerate() {
                        let dev = res.report.device_of[local];
                        let stream = combined.timings[local].stream.unwrap_or(0);
                        ops[gpu_idx[local]] = OpSlot::Own(DualOperator::ExplicitGpu {
                            f,
                            kernels: GpuKernels::new(pool.device(dev).stream(stream)),
                        });
                    }
                    gpu_cluster = Some(remap_cluster_report(res.report, &gpu_idx, factors.len()));
                }

                // explicit-CPU share (the spill fail-over for high iteration
                // counts) through the batched CPU driver
                let mut cpu_batch: Option<BatchReport> = None;
                if !cpu_idx.is_empty() {
                    let cpu_items: Vec<&SubdomainFactors> =
                        cpu_idx.iter().map(|&g| &factors[g]).collect();
                    let batch = assemble_sc_batch_map(
                        &cpu_items,
                        cfg,
                        |_| sc_core::CpuExec,
                        |_, f| f.chol.factor_csc(),
                        |f| &f.bt_perm,
                    );
                    for (local, f) in batch.f.into_iter().enumerate() {
                        ops[cpu_idx[local]] = OpSlot::Own(DualOperator::ExplicitCpu(f));
                    }
                    cpu_batch = Some(remap_batch_report(batch.report, &cpu_idx));
                }

                // roll the shares up into the existing report machinery:
                // assembly_report covers every explicitly assembled
                // subdomain, cluster_report the pool share
                let gpu_combined = gpu_cluster.as_ref().map(|c| c.combined());
                assembly_report = match (&gpu_combined, &cpu_batch) {
                    (Some(g), Some(c)) => Some(BatchReport {
                        timings: {
                            let mut t = g.timings.clone();
                            t.extend(c.timings.iter().copied());
                            t.sort_by_key(|t| t.index);
                            t
                        },
                        total_seconds: g.total_seconds + c.total_seconds,
                        device_seconds: g.device_seconds,
                        schedule: g.schedule.clone(),
                        temp_high_water: g.temp_high_water,
                        cache_hits: g.cache_hits + c.cache_hits,
                        cache_misses: g.cache_misses + c.cache_misses,
                    }),
                    (Some(g), None) => Some(g.clone()),
                    (None, Some(c)) => Some(c.clone()),
                    (None, None) => None,
                };
                cluster_report = gpu_cluster.clone();
                let predicted_assembly_seconds = plan
                    .choices
                    .iter()
                    .filter(|c| c.formulation != Formulation::Implicit)
                    .map(|c| c.assembly_seconds)
                    .sum();
                hybrid_report = Some(HybridReport {
                    plan,
                    realized_gpu_assembly_seconds: gpu_cluster.as_ref().map_or(0.0, |c| c.makespan),
                    arena_high_water: gpu_cluster.as_ref().map_or(0, |c| c.temp_high_water()),
                    cluster: gpu_cluster,
                    realized_cpu_assembly_seconds: cpu_batch
                        .as_ref()
                        .map_or(0.0, |c| c.total_seconds),
                    cpu_batch,
                    predicted_assembly_seconds,
                });
                Some(ops)
            }
        };

        // kernel numbering and G = B R (kernel = constant vector: G entries
        // are just the B̃ signs, since each B̃ᵀ column has a single ±1)
        let mut kernel_col = vec![None; problem.subdomains.len()];
        let mut n_kernels = 0;
        for (i, sd) in problem.subdomains.iter().enumerate() {
            if sd.kernel.is_some() {
                kernel_col[i] = Some(n_kernels);
                n_kernels += 1;
            }
        }
        let mut g_coo = Coo::new(problem.n_lambda, n_kernels.max(1));
        let mut e = vec![0.0; n_kernels.max(1)];
        for (i, sd) in problem.subdomains.iter().enumerate() {
            let Some(kc) = kernel_col[i] else { continue };
            let ker = sd.kernel.as_ref().expect("kernel column implies kernel");
            // G[:, kc] = B_i r_i
            let mut gr = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ker, 0.0, &mut gr);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                if gr[ll] != 0.0 {
                    g_coo.push(gl, kc, gr[ll]);
                }
            }
            // e_i = R_iᵀ f_i
            e[kc] = sd.f.iter().zip(ker).map(|(fi, ri)| fi * ri).sum();
        }
        let g = g_coo.to_csc();

        // coarse factor (GᵀG); for zero kernels keep a 1x1 identity
        let gtg = if n_kernels == 0 {
            Mat::identity(1)
        } else {
            let gd = g.to_dense();
            let mut gtg = Mat::zeros(n_kernels, n_kernels);
            sc_dense::syrk_t(1.0, gd.as_ref(), 0.0, gtg.as_mut());
            gtg.symmetrize_from_lower();
            let mut l = gtg;
            sc_dense::cholesky_in_place(l.as_mut())
                .expect("GᵀG must be SPD (decomposition has a fixed subdomain)");
            l
        };

        // d = B K⁺ f
        let d_locals: Vec<Vec<f64>> = factors
            .par_iter()
            .zip(&problem.subdomains)
            .map(|(f, sd)| {
                let kf = f.solve_kplus(&sd.f);
                let mut dl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kf, 0.0, &mut dl);
                dl
            })
            .collect();
        let mut d = vec![0.0; problem.n_lambda];
        for (sd, dl) in problem.subdomains.iter().zip(&d_locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                d[gl] += dl[ll];
            }
        }

        FetiSolver {
            problem,
            factors,
            explicit_ops,
            g,
            gtg,
            kernel_col,
            d,
            e,
            assembly_report,
            cluster_report,
            hybrid_report,
        }
    }

    /// Diagnostics of the batched explicit assembly: per-subdomain wall
    /// times, achieved parallel speedup, and block-cut cache hit counts.
    /// `None` when the dual operator is applied implicitly. For
    /// [`DualMode::ExplicitGpuCluster`] this is the flattened cluster
    /// roll-up ([`ClusterReport::combined`]).
    pub fn assembly_report(&self) -> Option<&BatchReport> {
        self.assembly_report.as_ref()
    }

    /// Per-device diagnostics of the cluster-sharded assembly: the device
    /// partition, per-device makespans/utilization, and the cluster
    /// makespan. `None` unless [`DualMode::ExplicitGpuCluster`] or
    /// [`DualMode::Hybrid`] (with a non-empty explicit-GPU share) was used.
    /// For the hybrid mode, indices are problem-global and `device_of`
    /// holds `usize::MAX` for subdomains not assembled on the pool.
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.cluster_report.as_ref()
    }

    /// Decision/cost roll-up of the hybrid mode: the per-subdomain
    /// explicit-vs-implicit plan, predicted vs realized assembly cost, and
    /// the arena high water. `None` unless [`DualMode::Hybrid`] was used.
    pub fn hybrid_report(&self) -> Option<&HybridReport> {
        self.hybrid_report.as_ref()
    }

    /// Number of kernel columns (size of the coarse problem).
    pub fn n_kernels(&self) -> usize {
        self.kernel_col.iter().flatten().count()
    }

    /// Apply the assembled dual operator `F` to a global dual vector.
    pub fn apply_f(&self, p: &[f64]) -> Vec<f64> {
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .enumerate()
            .map(|(i, sd)| {
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| p[gl]).collect();
                let mut ql = vec![0.0; sd.n_lambda()];
                match &self.explicit_ops {
                    Some(ops) => match &ops[i] {
                        OpSlot::Own(op) => op.apply(&pl, &mut ql),
                        OpSlot::SharedImplicit { scratch } => {
                            // reuse this subdomain's dof-space work vector
                            // across PCPG iterations (uncontended lock: one
                            // task per subdomain)
                            let mut t = scratch.lock().expect("scratch mutex poisoned");
                            crate::dualop::apply_implicit_with(
                                &self.factors[i],
                                &pl,
                                &mut ql,
                                &mut t,
                            )
                        }
                    },
                    None => crate::dualop::apply_implicit(&self.factors[i], &pl, &mut ql),
                }
                ql
            })
            .collect();
        let mut q = vec![0.0; self.problem.n_lambda];
        for (sd, ql) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                q[gl] += ql[ll];
            }
        }
        q
    }

    /// Solve the small coarse system `(GᵀG) x = b`.
    fn coarse_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        sc_dense::cholesky_solve(self.gtg.as_ref(), &mut x);
        x
    }

    /// Projector `P x = x − G (GᵀG)⁻¹ Gᵀ x`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        if self.n_kernels() == 0 {
            return x.to_vec();
        }
        let mut gtx = vec![0.0; self.g.ncols()];
        self.g.spmv_t(1.0, x, 0.0, &mut gtx);
        let y = self.coarse_solve(&gtx);
        let mut out = x.to_vec();
        self.g.spmv(-1.0, &y, 1.0, &mut out);
        out
    }

    /// Apply the lumped preconditioner `M⁻¹ w = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ w̃ᵢ`.
    pub fn apply_lumped(&self, w: &[f64]) -> Vec<f64> {
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .map(|sd| {
                let wl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| w[gl]).collect();
                let mut t = vec![0.0; sd.n_dofs()];
                sd.bt.spmv(1.0, &wl, 0.0, &mut t); // B̃ᵀ w̃
                let mut kt = vec![0.0; sd.n_dofs()];
                sd.k.spmv(1.0, &t, 0.0, &mut kt); // K B̃ᵀ w̃
                let mut zl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kt, 0.0, &mut zl); // B̃ K B̃ᵀ w̃
                zl
            })
            .collect();
        let mut z = vec![0.0; self.problem.n_lambda];
        for (sd, zl) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                z[gl] += zl[ll];
            }
        }
        z
    }

    /// Full FETI solve: PCPG on the dual, then primal recovery.
    pub fn solve(&self, opts: &FetiOptions) -> FetiSolution {
        // λ0 = G (GᵀG)⁻¹ e satisfies Gᵀ λ0 = e (Eq. 4)
        let lambda0 = if self.n_kernels() == 0 {
            vec![0.0; self.problem.n_lambda]
        } else {
            let y = self.coarse_solve(&self.e);
            let mut l0 = vec![0.0; self.problem.n_lambda];
            self.g.spmv(1.0, &y, 0.0, &mut l0);
            l0
        };
        let res = crate::pcpg::pcpg_preconditioned(
            &self.d,
            lambda0,
            |p| self.apply_f(p),
            |x| self.project(x),
            |w| match opts.preconditioner {
                Preconditioner::None => w.to_vec(),
                Preconditioner::Lumped => self.apply_lumped(w),
            },
            opts.tol,
            opts.max_iter,
        );
        let u_locals = self.recover_primal(&res.lambda);
        FetiSolution {
            u_locals,
            lambda: res.lambda,
            stats: res.stats,
        }
    }

    /// Primal recovery: `α = (GᵀG)⁻¹Gᵀ(Fλ − d)`,
    /// `uᵢ = K⁺(fᵢ − B̃ᵢᵀ λ̃ᵢ) + Rᵢ αᵢ` (Eq. 5).
    pub fn recover_primal(&self, lambda: &[f64]) -> Vec<Vec<f64>> {
        let alphas: Vec<f64> = if self.n_kernels() == 0 {
            Vec::new()
        } else {
            let flam = self.apply_f(lambda);
            let resid: Vec<f64> = flam.iter().zip(&self.d).map(|(a, b)| a - b).collect();
            let mut gtr = vec![0.0; self.g.ncols()];
            self.g.spmv_t(1.0, &resid, 0.0, &mut gtr);
            self.coarse_solve(&gtr)
        };
        self.factors
            .par_iter()
            .zip(&self.problem.subdomains)
            .enumerate()
            .map(|(i, (fac, sd))| {
                // f_i - B̃ᵀ λ̃
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lambda[gl]).collect();
                let mut rhs = sd.f.clone();
                sd.bt.spmv(-1.0, &pl, 1.0, &mut rhs);
                let mut u = fac.solve_kplus(&rhs);
                if let (Some(kc), Some(ker)) = (self.kernel_col[i], sd.kernel.as_ref()) {
                    let a = alphas[kc];
                    for (ui, ri) in u.iter_mut().zip(ker) {
                        *ui += a * ri;
                    }
                }
                u
            })
            .collect()
    }

    /// The dual right-hand side.
    pub fn dual_rhs(&self) -> &[f64] {
        &self.d
    }

    /// Borrow the per-subdomain factor bundles.
    pub fn factors(&self) -> &[SubdomainFactors] {
        &self.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_fem::Gluing;
    use sc_gpu::DeviceSpec;

    fn direct_solution(problem: &HeatProblem) -> Vec<f64> {
        let (k, f) = problem.assemble_global();
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        chol.solve(&f)
    }

    fn check_against_direct(problem: &HeatProblem, opts: &FetiOptions, tol: f64) {
        let solver = FetiSolver::new(problem, opts);
        let sol = solver.solve(opts);
        assert!(
            sol.stats.converged,
            "PCPG did not converge: {:?}",
            sol.stats
        );
        let direct = direct_solution(problem);
        let u = problem.gather_global(&sol.u_locals);
        let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u.len() {
            assert!(
                (u[i] - direct[i]).abs() < tol * scale,
                "dof {i}: feti {} vs direct {}",
                u[i],
                direct[i]
            );
        }
    }

    #[test]
    fn implicit_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (3, 2), Gluing::Redundant);
        check_against_direct(&p, &FetiOptions::default(), 1e-6);
    }

    #[test]
    fn explicit_cpu_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let opts = FetiOptions {
            dual: DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
    }

    #[test]
    fn explicit_gpu_3d_matches_direct() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpu(ScConfig::optimized(true, true), Arc::clone(&dev)),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
    }

    #[test]
    fn explicit_gpu_scheduled_matches_direct_and_reports_schedule() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpuScheduled(
                ScConfig::Auto,
                Arc::clone(&dev),
                sc_core::ScheduleOptions::default(),
            ),
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
        let solver = FetiSolver::new(&p, &opts);
        let report = solver.assembly_report().expect("scheduled mode reports");
        assert_eq!(report.schedule.len(), p.subdomains.len());
        assert!(report.device_seconds > 0.0);
        assert!(report.timings.iter().all(|t| t.stream.is_some()));
    }

    #[test]
    fn explicit_gpu_cluster_matches_direct_and_reports_partition() {
        use sc_gpu::DevicePool;
        let p = HeatProblem::build_3d(2, (2, 2, 2), Gluing::Redundant);
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let opts = FetiOptions {
            dual: DualMode::ExplicitGpuCluster {
                cfg: ScConfig::optimized(true, true),
                pool: Arc::clone(&pool),
                opts: sc_core::ClusterOptions::default(),
            },
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        assert!(pool.synchronize_all() > 0.0, "the pool must have been used");

        let solver = FetiSolver::new(&p, &opts);
        let report = solver.cluster_report().expect("cluster mode reports");
        assert_eq!(report.device_of.len(), p.subdomains.len());
        let mut placed: Vec<usize> = report.partition.concat();
        placed.sort_unstable();
        assert_eq!(placed, (0..p.subdomains.len()).collect::<Vec<_>>());
        assert!(report.makespan > 0.0);
        let combined = solver.assembly_report().expect("combined roll-up");
        assert_eq!(combined.timings.len(), p.subdomains.len());
        assert_eq!(combined.device_seconds, report.makespan);

        // the cluster-assembled F̃ᵢ are bitwise identical to the CPU
        // explicit path (same fixed config ⇒ same kernel sequence)
        let cpu_opts = FetiOptions {
            dual: DualMode::ExplicitCpu(ScConfig::optimized(true, true)),
            ..Default::default()
        };
        let s_cpu = FetiSolver::new(&p, &cpu_opts);
        let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = solver.apply_f(&lam);
        let b = s_cpu.apply_f(&lam);
        assert_eq!(a, b, "cluster dual operator must match the CPU one bitwise");
    }

    /// Peak temporary footprints of every subdomain under `cfg`, priced the
    /// same way the hybrid decision layer prices them.
    fn temp_footprints(p: &HeatProblem, cfg: &ScConfig) -> Vec<usize> {
        p.subdomains
            .iter()
            .map(|sd| {
                let f = SubdomainFactors::build(
                    sd,
                    Engine::Simplicial,
                    sc_order::Ordering::NestedDissection,
                );
                let l = f.chol.factor_csc();
                let params = cfg.resolve(true, &l, &f.bt_perm);
                estimate_cost(&DeviceSpec::a100(), &l, &f.bt_perm, &params, 0).temp_bytes
            })
            .collect()
    }

    fn hybrid_opts(iters: f64, allow_cpu: bool, force: sc_core::HybridForce) -> HybridOptions {
        HybridOptions {
            plan: HybridPlanOptions {
                iters,
                allow_explicit_cpu: allow_cpu,
                force,
                ..Default::default()
            },
            cluster: ClusterOptions::default(),
        }
    }

    #[test]
    fn hybrid_mixes_formulations_and_matches_direct() {
        use sc_gpu::DevicePool;
        // a 3×3 decomposition carries corner, edge, and interior subdomains
        // with different interface sizes: an arena between the extremes
        // splits them into explicitly-admissible and spilled
        let p = HeatProblem::build_2d(6, (3, 3), Gluing::Redundant);
        let cfg = ScConfig::optimized(true, true);
        let temps = temp_footprints(&p, &cfg);
        let (lo, hi) = (*temps.iter().min().unwrap(), *temps.iter().max().unwrap());
        assert!(lo < hi, "workload must have a footprint spread");
        let arena = (lo + hi) / 2;
        let spec = sc_gpu::DeviceSpec {
            memory_bytes: 2 * arena, // the arena is half of device memory
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 2, 2);
        // forced explicit + no CPU fail-over: admissible subdomains go to
        // the pool, oversized ones must spill to implicit (never error)
        let opts = FetiOptions {
            dual: DualMode::Hybrid {
                cfg,
                pool: Arc::clone(&pool),
                opts: hybrid_opts(1e6, false, sc_core::HybridForce::AllExplicit),
            },
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);

        let solver = FetiSolver::new(&p, &opts);
        let report = solver.hybrid_report().expect("hybrid mode reports");
        let n_gpu = report.count_of(sc_core::Formulation::ExplicitGpu);
        let n_impl = report.count_of(sc_core::Formulation::Implicit);
        assert!(n_gpu > 0, "some subdomains must fit the arena");
        assert!(n_impl > 0, "some subdomains must spill: temps {temps:?}");
        assert_eq!(n_gpu + n_impl, p.subdomains.len());
        assert_eq!(report.spilled().len(), n_impl);
        // spilled = exactly the subdomains whose temporaries exceed the arena
        for (i, &t) in temps.iter().enumerate() {
            assert_eq!(
                report.spilled().contains(&i),
                t > arena,
                "subdomain {i}: {t} B vs arena {arena} B"
            );
        }
        // arena never oversubscribed, and the pool really ran
        assert!(report.arena_high_water <= arena);
        assert!(report.realized_gpu_assembly_seconds > 0.0);
        assert!(report.predicted_assembly_seconds > 0.0);
        let cluster = solver.cluster_report().expect("gpu share reports");
        for (i, &d) in cluster.device_of.iter().enumerate() {
            let on_pool = d != usize::MAX;
            assert_eq!(
                on_pool,
                !report.spilled().contains(&i),
                "placement/decision mismatch at {i}"
            );
        }

        // the hybrid operator application must be bitwise identical to the
        // per-subdomain reference: CPU-assembled explicit F̃ᵢ where the plan
        // went explicit (record/replay is bitwise CPU-equal), the shared
        // implicit pipeline where it spilled
        let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.37).sin()).collect();
        let got = solver.apply_f(&lam);
        let mut want = vec![0.0; p.n_lambda];
        for (i, sd) in p.subdomains.iter().enumerate() {
            let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lam[gl]).collect();
            let mut ql = vec![0.0; sd.n_lambda()];
            if report.spilled().contains(&i) {
                crate::dualop::apply_implicit(&solver.factors()[i], &pl, &mut ql);
            } else {
                let expl = DualOperator::explicit_cpu(&solver.factors()[i], &cfg);
                expl.apply(&pl, &mut ql);
            }
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                want[gl] += ql[ll];
            }
        }
        assert_eq!(
            got, want,
            "hybrid apply must match the mixed reference bitwise"
        );
    }

    #[test]
    fn hybrid_spill_everything_falls_back_to_implicit() {
        use sc_gpu::DevicePool;
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        // an arena nothing fits into: every subdomain spills, the solver
        // must degrade to the implicit mode instead of erroring
        let spec = sc_gpu::DeviceSpec {
            memory_bytes: 16,
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 1, 2);
        let opts = FetiOptions {
            dual: DualMode::Hybrid {
                cfg: ScConfig::optimized(true, false),
                pool,
                opts: hybrid_opts(1e9, false, sc_core::HybridForce::Auto),
            },
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
        let solver = FetiSolver::new(&p, &opts);
        let report = solver.hybrid_report().unwrap();
        assert_eq!(
            report.count_of(sc_core::Formulation::Implicit),
            p.subdomains.len()
        );
        assert_eq!(report.spilled().len(), p.subdomains.len());
        assert!(solver.cluster_report().is_none());
        assert!(solver.assembly_report().is_none(), "nothing was assembled");
        assert_eq!(report.predicted_assembly_seconds, 0.0);
    }

    #[test]
    fn hybrid_iteration_extremes_collapse_at_the_solver_level() {
        use sc_gpu::DevicePool;
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let cfg = ScConfig::optimized(true, false);
        let collapse = |iters: f64| {
            let pool = DevicePool::uniform(DeviceSpec::a100(), 1, 2);
            let opts = FetiOptions {
                dual: DualMode::Hybrid {
                    cfg,
                    pool,
                    opts: hybrid_opts(iters, true, sc_core::HybridForce::Auto),
                },
                ..Default::default()
            };
            let solver = FetiSolver::new(&p, &opts);
            let r = solver.hybrid_report().unwrap().plan.clone();
            (
                r.count_of(sc_core::Formulation::Implicit),
                r.count_of(sc_core::Formulation::ExplicitGpu)
                    + r.count_of(sc_core::Formulation::ExplicitCpu),
            )
        };
        let (impl0, expl0) = collapse(0.0);
        assert_eq!(impl0, p.subdomains.len(), "iters→0 must go all-implicit");
        assert_eq!(expl0, 0);
        let (impl_inf, expl_inf) = collapse(f64::INFINITY);
        assert_eq!(impl_inf, 0, "iters→∞ must go all-explicit");
        assert_eq!(expl_inf, p.subdomains.len());
    }

    #[test]
    fn chain_gluing_also_converges() {
        let p = HeatProblem::build_2d(3, (3, 1), Gluing::Chain);
        check_against_direct(&p, &FetiOptions::default(), 1e-6);
    }

    #[test]
    fn supernodal_engine_matches() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let opts = FetiOptions {
            engine: Engine::Supernodal,
            ..Default::default()
        };
        check_against_direct(&p, &opts, 1e-6);
    }

    #[test]
    fn lumped_preconditioner_converges_and_matches() {
        let p = HeatProblem::build_2d(5, (3, 2), Gluing::Redundant);
        let plain = FetiOptions::default();
        let lumped = FetiOptions {
            preconditioner: Preconditioner::Lumped,
            ..Default::default()
        };
        let s1 = FetiSolver::new(&p, &plain).solve(&plain);
        let s2 = FetiSolver::new(&p, &lumped).solve(&lumped);
        assert!(s1.stats.converged && s2.stats.converged);
        // same solution
        let u1 = p.gather_global(&s1.u_locals);
        let u2 = p.gather_global(&s2.u_locals);
        let scale = u1.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u1.len() {
            assert!((u1[i] - u2[i]).abs() < 1e-6 * scale);
        }
        // the lumped preconditioner should not need more iterations
        assert!(
            s2.stats.iterations <= s1.stats.iterations + 2,
            "lumped {} vs plain {}",
            s2.stats.iterations,
            s1.stats.iterations
        );
    }

    #[test]
    fn lambda_jump_is_closed() {
        // after convergence the interface jump B u must vanish
        let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
        let opts = FetiOptions::default();
        let solver = FetiSolver::new(&p, &opts);
        let sol = solver.solve(&opts);
        let mut jump = vec![0.0; p.n_lambda];
        for (sd, ul) in p.subdomains.iter().zip(&sol.u_locals) {
            let mut local = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ul, 0.0, &mut local);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                jump[gl] += local[ll];
            }
        }
        let max_jump = jump.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_jump < 1e-6, "interface jump {max_jump}");
    }
}
