//! The Total-FETI solver driver: per-subdomain preprocessing, coarse problem,
//! PCPG solve, and primal solution recovery.
//!
//! The entry point is [`FetiSolverBuilder`]: pick a
//! [`Backend`] (where explicit assembly runs), a
//! [`FormulationChoice`] (implicit / explicit / per-subdomain auto), and
//! build a preprocessed [`FetiSolver`] handle. Preprocessing (orderings,
//! factorizations, explicit assembly, coarse problem) happens **once**;
//! [`FetiSolver::solve`] and [`FetiSolver::solve_rhs`] then amortize it
//! across any number of right-hand sides.

use crate::dualop::{DualOperator, SubdomainFactors};
use crate::pcpg::PcpgStats;
use crate::refine::{F32Op, RefinementStats, INNER_TOL};
use rayon::prelude::*;
use sc_core::{
    estimate_apply, estimate_cost, plan_hybrid, AssemblyReport, AssemblySession, Backend,
    BatchReport, ClusterOptions, ClusterReport, DeviceSlot, Formulation, HybridPlan,
    HybridPlanOptions, HybridSummary, LazyBatch, Precision, ScConfig, Target,
};
use sc_dense::{Mat, Scalar};
use sc_factor::Engine;
use sc_fem::HeatProblem;
use sc_gpu::{DevicePool, GpuKernels, NodePool, Stream};
use sc_order::Ordering;
use sc_sparse::{Coo, Csc};
use std::borrow::Cow;
use std::sync::Arc;

pub use crate::compat::DualMode;

/// Which dual-operator formulation the solver realizes (orthogonal to the
/// [`Backend`] that executes any explicit assembly).
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub enum FormulationChoice {
    /// No assembly: every application runs the Eq. 11 solve pipeline
    /// through the factor bundles kept for `K⁺` anyway.
    #[default]
    Implicit,
    /// Dense `F̃ᵢ` pre-assembled for every subdomain on the backend.
    Explicit,
    /// Per-subdomain explicit-vs-implicit selection: the §4.4 cost model
    /// prices assembly plus expected-iterations × apply for every
    /// formulation and picks the cheapest subject to the backend's device
    /// arena capacities (oversized subdomains spill instead of erroring).
    Auto(HybridPlanOptions),
}

/// Options of the hybrid (auto) formulation when driven through the legacy
/// [`DualMode::Hybrid`] selector. New code passes the plan options to
/// [`FormulationChoice::Auto`] and the cluster options to the
/// [`Backend`].
///
/// ```
/// use sc_feti::HybridOptions;
/// use sc_core::{ClusterOptions, HybridPlanOptions};
/// let opts = HybridOptions::default()
///     .with_plan(HybridPlanOptions::default().with_iters(80.0))
///     .with_cluster(ClusterOptions::default());
/// assert_eq!(opts.plan.iters, 80.0);
/// ```
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct HybridOptions {
    /// Decision-layer inputs: expected iteration count, host pricing spec,
    /// candidate set, collapse override.
    pub plan: HybridPlanOptions,
    /// Scheduling options of the explicit-GPU share (`ready_at` is indexed
    /// by **subdomain**, like the other modes; it is sliced down to the
    /// share the planner sends to the pool).
    pub cluster: ClusterOptions,
}

impl HybridOptions {
    /// Set the decision-layer inputs.
    pub fn with_plan(mut self, plan: HybridPlanOptions) -> Self {
        self.plan = plan;
        self
    }

    /// Set the explicit-GPU share's scheduling options.
    pub fn with_cluster(mut self, cluster: ClusterOptions) -> Self {
        self.cluster = cluster;
        self
    }
}

/// Dual preconditioner selection for PCPG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preconditioner {
    /// No preconditioning (identity).
    None,
    /// The lumped preconditioner `M⁻¹ = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ` — three sparse
    /// products per subdomain per iteration, the cheap standard choice in
    /// FETI practice.
    Lumped,
}

/// Solver options, captured **once** at construction
/// ([`FetiSolver::new`] / [`FetiSolverBuilder::options`]);
/// [`FetiSolver::solve`] takes no arguments.
///
/// ```
/// use sc_feti::{FetiOptions, Preconditioner};
/// let opts = FetiOptions::default()
///     .with_preconditioner(Preconditioner::Lumped)
///     .with_tol(1e-10)
///     .with_max_iter(500);
/// assert_eq!(opts.max_iter, 500);
/// ```
#[derive(Clone)]
pub struct FetiOptions {
    /// Legacy dual-operator selector, honoured by [`FetiSolver::new`] only.
    /// [`FetiSolverBuilder`] ignores it — target and formulation are set
    /// through [`FetiSolverBuilder::backend`] /
    /// [`FetiSolverBuilder::formulation`] instead.
    pub dual: DualMode,
    /// Numeric factorization engine for `K_reg`.
    pub engine: Engine,
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Dual preconditioner.
    pub preconditioner: Preconditioner,
    /// PCPG relative tolerance.
    pub tol: f64,
    /// PCPG iteration budget.
    pub max_iter: usize,
}

impl Default for FetiOptions {
    fn default() -> Self {
        FetiOptions {
            dual: DualMode::Implicit,
            engine: Engine::Simplicial,
            ordering: Ordering::NestedDissection,
            preconditioner: Preconditioner::None,
            tol: 1e-9,
            max_iter: 1000,
        }
    }
}

impl FetiOptions {
    /// Set the numeric factorization engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the fill-reducing ordering.
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Set the dual preconditioner.
    pub fn with_preconditioner(mut self, preconditioner: Preconditioner) -> Self {
        self.preconditioner = preconditioner;
        self
    }

    /// Set the PCPG relative tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Set the PCPG iteration budget.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }
}

/// Solution of a FETI solve.
pub struct FetiSolution {
    /// Per-subdomain primal solutions.
    pub u_locals: Vec<Vec<f64>>,
    /// The dual solution `λ`.
    pub lambda: Vec<f64>,
    /// PCPG statistics. For the mixed-precision path, `iterations` counts
    /// the inner (`f32`) iterations and `rel_residual` is the final `f64`
    /// true residual.
    pub stats: PcpgStats,
    /// Mixed-precision refinement statistics; `None` under the default
    /// full-`f64` precision.
    pub refinement: Option<RefinementStats>,
}

/// Roll-up of one hybrid preprocessing run in the legacy three-report
/// vocabulary; superseded by the `hybrid` section of the unified
/// [`AssemblyReport`] ([`FetiSolver::report`]). All subdomain indices are
/// **problem-global** (the per-share reports are remapped).
#[derive(Clone, Debug)]
pub struct HybridReport {
    /// Per-subdomain decisions with predicted assembly/apply costs.
    pub plan: HybridPlan,
    /// Cluster roll-up of the explicit-GPU share (`None` when the planner
    /// sent nothing to the pool). `device_of` spans the whole problem with
    /// `usize::MAX` for subdomains not assembled on the pool.
    pub cluster: Option<ClusterReport>,
    /// Batch report of the explicit-CPU share (`None` when empty).
    pub cpu_batch: Option<BatchReport>,
    /// Σ predicted assembly seconds over the explicit decisions.
    pub predicted_assembly_seconds: f64,
    /// Realized simulated makespan of the explicit-GPU share.
    pub realized_gpu_assembly_seconds: f64,
    /// Realized host wall seconds of the explicit-CPU share.
    pub realized_cpu_assembly_seconds: f64,
    /// Largest per-device temporary-arena high water of the GPU share,
    /// bytes.
    pub arena_high_water: usize,
}

impl HybridReport {
    /// Number of subdomains realized with the given formulation.
    pub fn count_of(&self, f: Formulation) -> usize {
        self.plan.count_of(f)
    }

    /// Predicted cost-to-solution at `iters` operator applications (see
    /// [`HybridPlan::cost_at`]); compare against the expected-iteration
    /// input and the realized [`PcpgStats::operator_applications`].
    ///
    /// [`PcpgStats::operator_applications`]: crate::pcpg::PcpgStats::operator_applications
    pub fn predicted_cost_at(&self, iters: f64) -> f64 {
        self.plan.cost_at(iters)
    }

    /// Subdomain indices that fit no device arena and therefore could never
    /// be assembled explicitly on the pool (the recoverable spill set).
    pub fn spilled(&self) -> &[usize] {
        &self.plan.spilled
    }
}

/// Per-subdomain operator dispatch slot of the explicit/hybrid modes.
// Variant sizes differ by design, mirroring DualOperator: slots live in one
// short per-subdomain Vec, boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum OpSlot {
    /// An owned, ready-to-apply operator.
    Own(DualOperator),
    /// Apply implicitly through the solver's shared factor bundle (the
    /// hybrid mode's spill/low-iteration choice — avoids duplicating the
    /// factorization the solver keeps for `K⁺` solves anyway). Carries the
    /// subdomain's dof-space scratch vector so PCPG iterations reuse one
    /// allocation ([`apply_implicit_with`](crate::dualop::apply_implicit_with));
    /// the mutex is uncontended — `apply_f` runs one task per subdomain.
    SharedImplicit {
        /// Reused dof-space work vector.
        scratch: std::sync::Mutex<Vec<f64>>,
    },
}

impl OpSlot {
    fn shared_implicit() -> Self {
        OpSlot::SharedImplicit {
            scratch: std::sync::Mutex::new(Vec::new()),
        }
    }
}

/// The resolved execution plan of one solver build: assembly configuration,
/// execution target, formulation. Built by [`FetiSolverBuilder`] or
/// translated from the legacy [`DualMode`] selector.
pub(crate) struct ExecPlan {
    pub(crate) cfg: ScConfig,
    pub(crate) backend: Backend,
    pub(crate) formulation: FormulationChoice,
}

/// Composable construction of a preprocessed [`FetiSolver`]:
/// [`FetiOptions`] are taken **exactly once**, the execution target is a
/// [`Backend`] value, and the formulation a [`FormulationChoice`].
///
/// ```
/// use sc_feti::{FetiOptions, FetiSolverBuilder, FormulationChoice};
/// use sc_core::{Backend, ScConfig};
/// use sc_fem::{Gluing, HeatProblem};
///
/// let problem = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
/// let solver = FetiSolverBuilder::new()
///     .options(FetiOptions::default().with_tol(1e-9))
///     .backend(Backend::cpu())
///     .formulation(FormulationChoice::Explicit)
///     .assembly(ScConfig::optimized(false, false))
///     .build(&problem);
/// let solution = solver.solve();
/// assert!(solution.stats.converged);
/// // the same preprocessed handle serves more right-hand sides
/// let loads: Vec<Vec<f64>> = problem
///     .subdomains
///     .iter()
///     .map(|sd| sd.f.iter().map(|v| 2.0 * v).collect())
///     .collect();
/// let scaled = solver.solve_rhs(&loads);
/// assert!(scaled.stats.converged);
/// ```
#[derive(Clone, Default)]
pub struct FetiSolverBuilder {
    opts: FetiOptions,
    cfg: ScConfig,
    backend: Option<Backend>,
    formulation: FormulationChoice,
    precision: Option<Precision>,
    factors: Option<Arc<Vec<SubdomainFactors>>>,
}

impl FetiSolverBuilder {
    /// Start from default options: implicit formulation, CPU backend,
    /// [`ScConfig::Auto`] assembly configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the scalar solver options (engine, ordering, preconditioner,
    /// tolerance, iteration budget) — taken exactly once; the legacy
    /// `dual` field is ignored here.
    pub fn options(mut self, opts: FetiOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the execution target of any explicit assembly.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Set the dual-operator formulation.
    pub fn formulation(mut self, formulation: FormulationChoice) -> Self {
        self.formulation = formulation;
        self
    }

    /// Set the assembly configuration of the explicit shares.
    pub fn assembly(mut self, cfg: ScConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the working precision, overriding the backend's. Under
    /// [`Precision::F32Refined`] the explicit operators are assembled and
    /// applied at `f32` and every solve wraps the inner PCPG in an `f64`
    /// iterative-refinement loop ([`FetiSolution::refinement`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Reuse previously built per-subdomain factorizations instead of
    /// re-running the ordering + symbolic + numeric pipeline (the dominant
    /// preprocessing cost). The bundle must come from a
    /// [`FetiSolver::shared_factors`] call (or `SubdomainFactors::build`
    /// loop) over a problem with **identical** subdomain matrices, gluing
    /// and solver engine/ordering — the session-cache layer guarantees this
    /// by content-addressing its entries; a length mismatch panics at
    /// build time. `SubdomainFactors::build` is deterministic, so a build
    /// from reused factors is bitwise identical to a cold build.
    pub fn factors(mut self, factors: Arc<Vec<SubdomainFactors>>) -> Self {
        self.factors = Some(factors);
        self
    }

    /// Run preprocessing and return the reusable solver handle.
    pub fn build<'p>(self, problem: &'p HeatProblem) -> FetiSolver<'p> {
        let mut backend = self.backend.unwrap_or_else(Backend::cpu);
        if let Some(p) = self.precision {
            backend.precision = p;
        }
        let plan = ExecPlan {
            cfg: self.cfg,
            backend,
            formulation: self.formulation,
        };
        FetiSolver::build_with_plan_prepared(problem, self.opts, plan, self.factors)
    }
}

/// Remap a share-local [`BatchReport`]'s subdomain indices to problem-global
/// ones through `map` (timings re-sorted into global order).
fn remap_batch_report(mut rep: BatchReport, map: &[usize]) -> BatchReport {
    for t in &mut rep.timings {
        t.index = map[t.index];
    }
    for e in &mut rep.schedule {
        e.index = map[e.index];
    }
    rep.timings.sort_by_key(|t| t.index);
    rep
}

/// Remap a share-local [`ClusterReport`] to problem-global indices:
/// per-device reports and the partition go through `map`, `device_of` is
/// re-expanded to `n_total` entries with `usize::MAX` for subdomains outside
/// the share.
fn remap_cluster_report(mut rep: ClusterReport, map: &[usize], n_total: usize) -> ClusterReport {
    rep.per_device = rep
        .per_device
        .into_iter()
        .map(|r| remap_batch_report(r, map))
        .collect();
    for part in &mut rep.partition {
        for g in part.iter_mut() {
            *g = map[*g];
        }
    }
    let mut device_of = vec![usize::MAX; n_total];
    for (local, d) in rep.device_of.iter().enumerate() {
        if *d != usize::MAX {
            device_of[map[local]] = *d;
        }
    }
    rep.device_of = device_of;
    rep
}

/// Simulated inter-node boundary exchange of the multi-node backend's
/// PCPG. Per dual-operator application each node receives its subdomains'
/// boundary multiplier values from its peers over its interconnect; the
/// exchange is posted **before** the local GEMVs are submitted, so queued
/// local work overlaps the transfer, and only the remainder a stream could
/// not hide is accumulated as stall time
/// ([`PcpgStats::exchange_stall_seconds`]). On a single-node pool the
/// simulation is inert and the solve is bitwise the cluster path.
struct ExchangeSim {
    pool: Arc<NodePool>,
    /// Per node, the streams carrying device-resident operators — the lanes
    /// whose GEMV results feed the global dual vector.
    streams: Vec<Vec<Stream>>,
    /// Boundary bytes entering each node per application.
    bytes_in: Vec<f64>,
    /// Stall seconds accumulated across applications; drained into the
    /// solve's statistics (uncontended: PCPG applies sequentially).
    stall: std::sync::Mutex<f64>,
}

impl ExchangeSim {
    /// Collect each node's dependent streams and incoming boundary bytes
    /// from the multi-node assembly report.
    fn build(pool: &Arc<NodePool>, report: &AssemblyReport, problem: &HeatProblem) -> Self {
        let n = pool.n_nodes();
        let mut streams: Vec<Vec<Stream>> = vec![Vec::new(); n];
        let mut seen: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut bytes_in = vec![0.0; n];
        for t in &report.subdomains {
            let (Some(node), Some(flat), Some(s)) = (t.node, t.device, t.stream) else {
                continue;
            };
            // every application refreshes this subdomain's boundary
            // multipliers from the peers: 8 bytes per lambda row
            bytes_in[node] += 8.0 * problem.subdomains[t.index].n_lambda() as f64; // sc-analyze: allow(precision-discipline)
            if !seen[node].contains(&(flat, s)) {
                seen[node].push((flat, s));
                streams[node].push(node_local_device(pool, flat).stream(s));
            }
        }
        ExchangeSim {
            pool: Arc::clone(pool),
            streams,
            bytes_in,
            stall: std::sync::Mutex::new(0.0),
        }
    }

    /// Post this application's exchanges: each node's incoming boundary
    /// data arrives `link.seconds(bytes_in)` after its streams' current
    /// frontier. Returns `None` on a single-node pool (nothing exchanged).
    fn begin(&self) -> Option<Vec<f64>> {
        if self.pool.n_nodes() < 2 {
            return None;
        }
        Some(
            self.pool
                .nodes()
                .iter()
                .enumerate()
                .map(|(d, ns)| {
                    let t_send = self.streams[d].iter().map(|s| s.time()).fold(0.0, f64::max);
                    t_send + ns.link.seconds(self.bytes_in[d])
                })
                .collect(),
        )
    }

    /// Close this application's exchanges after the local GEMVs were
    /// submitted: a stream whose queued work ends before its node's data
    /// arrival stalls for the remainder; work past the arrival hid the
    /// transfer entirely.
    fn finish(&self, arrivals: &[f64]) {
        let mut stalled = 0.0;
        for (d, lanes) in self.streams.iter().enumerate() {
            for s in lanes {
                let wait = arrivals[d] - s.time();
                if wait > 0.0 {
                    stalled += wait;
                    s.advance_to(arrivals[d]);
                }
            }
        }
        *self.stall.lock().expect("stall mutex poisoned") += stalled;
    }

    /// Take the accumulated stall seconds, resetting the counter.
    fn drain(&self) -> f64 {
        std::mem::take(&mut *self.stall.lock().expect("stall mutex poisoned"))
    }
}

/// A preprocessed FETI solver: factorizations, explicit operators (if
/// requested), and the coarse problem, ready to serve many right-hand
/// sides through [`FetiSolver::solve`] / [`FetiSolver::solve_rhs`].
pub struct FetiSolver<'p> {
    problem: &'p HeatProblem,
    /// Options captured at construction; `solve()` takes no arguments.
    opts: FetiOptions,
    factors: Arc<Vec<SubdomainFactors>>,
    /// `Some` for the explicit and hybrid modes; the implicit mode applies
    /// through `factors` directly.
    explicit_ops: Option<Vec<OpSlot>>,
    /// Working precision captured from the backend at construction.
    precision: Precision,
    /// Demoted (`f32`) operator slots for the mixed-precision inner solves;
    /// `Some` exactly when `precision` is [`Precision::F32Refined`].
    f32_ops: Option<Vec<F32Op>>,
    /// Sparse `G = B R` (`n_lambda × n_kernels`).
    g: Csc,
    /// Dense Cholesky factor of `GᵀG`.
    gtg: Mat,
    /// Kernel column of each subdomain (floating ones only).
    kernel_col: Vec<Option<usize>>,
    /// Dual right-hand side `d = B K⁺ f` of the problem's own loads.
    d: Vec<f64>,
    /// Coarse right-hand side `e = Rᵀ f` of the problem's own loads.
    e: Vec<f64>,
    /// The unified preprocessing report (`None` for the implicit mode).
    report: Option<AssemblyReport>,
    /// Simulated PCPG boundary-exchange overlap; `Some` exactly when the
    /// backend is a multi-node pool with device-resident operators.
    exchange_sim: Option<ExchangeSim>,
    /// Legacy report shapes, derived once for the deprecated accessors.
    legacy_assembly: Option<BatchReport>,
    legacy_cluster: Option<ClusterReport>,
    legacy_hybrid: Option<HybridReport>,
}

impl<'p> FetiSolver<'p> {
    /// Run the initialization + preprocessing stages (paper §2.2) honouring
    /// the legacy [`FetiOptions::dual`] selector. Options are captured
    /// here, once — [`FetiSolver::solve`] takes no arguments. New code
    /// should prefer [`FetiSolverBuilder`].
    pub fn new(problem: &'p HeatProblem, opts: &FetiOptions) -> Self {
        let plan = crate::compat::plan_of(opts);
        Self::build_with_plan(problem, opts.clone(), plan)
    }

    pub(crate) fn build_with_plan(
        problem: &'p HeatProblem,
        opts: FetiOptions,
        plan: ExecPlan,
    ) -> Self {
        Self::build_with_plan_prepared(problem, opts, plan, None)
    }

    pub(crate) fn build_with_plan_prepared(
        problem: &'p HeatProblem,
        opts: FetiOptions,
        plan: ExecPlan,
        prepared: Option<Arc<Vec<SubdomainFactors>>>,
    ) -> Self {
        let precision = plan.backend.precision;
        // per-subdomain factorizations in parallel (the paper's loop over the
        // cluster's subdomains, one thread per subdomain) — unless a
        // session cache already holds the bundle for this exact problem
        let factors: Arc<Vec<SubdomainFactors>> = prepared.unwrap_or_else(|| {
            Arc::new(
                problem
                    .subdomains
                    .par_iter()
                    .map(|sd| SubdomainFactors::build(sd, opts.engine, opts.ordering))
                    .collect(),
            )
        });
        assert_eq!(
            factors.len(),
            problem.subdomains.len(),
            "prepared factor bundle must cover every subdomain of the problem"
        );

        // dual operators: the explicit formulations pre-assemble the dense
        // F̃ᵢ through one AssemblySession on the plan's backend; the
        // implicit formulation reuses `factors` directly at application time
        let mut report: Option<AssemblyReport> = None;
        let mut legacy_hybrid: Option<HybridReport> = None;
        let explicit_ops: Option<Vec<OpSlot>> = match &plan.formulation {
            FormulationChoice::Implicit => None,
            FormulationChoice::Explicit => {
                let session = AssemblySession::new(plan.backend.clone(), plan.cfg);
                let res = session.assemble(LazyBatch::new(
                    &factors,
                    // each task extracts its own factor copy, so peak memory
                    // is one factor per worker, not one per subdomain
                    |_, f: &SubdomainFactors| Cow::Owned(f.chol.factor_csc()),
                    |f| &f.bt_perm,
                ));
                let ops = bind_ops(res.f, &res.report, &plan.backend);
                report = Some(res.report);
                Some(ops)
            }
            FormulationChoice::Auto(plan_opts) => {
                let (ops, unified, hybrid) =
                    assemble_auto(&factors, &plan.cfg, &plan.backend, plan_opts);
                report = Some(unified);
                legacy_hybrid = Some(hybrid);
                Some(ops)
            }
        };

        // derive the legacy report shapes once, for the deprecated accessors
        let (legacy_assembly, legacy_cluster) = match (&plan.formulation, &report) {
            (FormulationChoice::Explicit, Some(rep)) => {
                let cluster = match &plan.backend.target {
                    Target::Cluster { .. } | Target::Hybrid { .. } => rep.to_cluster_report(),
                    _ => None,
                };
                (Some(rep.to_batch_report()), cluster)
            }
            (FormulationChoice::Auto(_), Some(rep)) => {
                let any_explicit = !rep.subdomains.is_empty();
                (
                    any_explicit.then(|| rep.to_batch_report()),
                    legacy_hybrid.as_ref().and_then(|h| h.cluster.clone()),
                )
            }
            _ => (None, None),
        };

        // kernel numbering and G = B R (kernel = constant vector: G entries
        // are just the B̃ signs, since each B̃ᵀ column has a single ±1)
        let mut kernel_col = vec![None; problem.subdomains.len()];
        let mut n_kernels = 0;
        for (i, sd) in problem.subdomains.iter().enumerate() {
            if sd.kernel.is_some() {
                kernel_col[i] = Some(n_kernels);
                n_kernels += 1;
            }
        }
        let mut g_coo = Coo::new(problem.n_lambda, n_kernels.max(1));
        for (i, sd) in problem.subdomains.iter().enumerate() {
            let Some(_kc) = kernel_col[i] else { continue };
            let ker = sd.kernel.as_ref().expect("kernel column implies kernel");
            // G[:, kc] = B_i r_i
            let mut gr = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ker, 0.0, &mut gr);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                // sc-analyze: allow(float-eq)
                if gr[ll] != 0.0 {
                    g_coo.push(
                        gl,
                        kernel_col[i].expect("kernel column assigned for every singular subdomain"),
                        gr[ll],
                    );
                }
            }
        }
        let g = g_coo.to_csc();

        // coarse factor (GᵀG); for zero kernels keep a 1x1 identity
        let gtg = if n_kernels == 0 {
            Mat::identity(1)
        } else {
            let gd = g.to_dense();
            let mut gtg = Mat::zeros(n_kernels, n_kernels);
            sc_dense::syrk_t(1.0, gd.as_ref(), 0.0, gtg.as_mut());
            gtg.symmetrize_from_lower();
            let mut l = gtg;
            sc_dense::cholesky_in_place(l.as_mut())
                .expect("GᵀG must be SPD (decomposition has a fixed subdomain)");
            l
        };

        // demote the operators once for the mixed-precision inner solves:
        // explicit slots reuse the (f32-assembled, exactly promoted) dense
        // F̃ᵢ, everything else demotes its factor bundle
        let f32_ops: Option<Vec<F32Op>> = precision.is_f32().then(|| {
            (0..factors.len())
                .into_par_iter()
                .map(|i| {
                    let explicit = explicit_ops.as_ref().and_then(|ops| match &ops[i] {
                        OpSlot::Own(op) => op.explicit_matrix(),
                        OpSlot::SharedImplicit { .. } => None,
                    });
                    match explicit {
                        Some(f) => F32Op::Explicit(f.cast::<f32>()),
                        None => F32Op::implicit(&factors[i]),
                    }
                })
                .collect()
        });

        // the multi-node backend overlaps PCPG boundary exchanges with the
        // local applies; every other target leaves the solve untouched
        let exchange_sim = match &plan.backend.target {
            Target::MultiNode { pool, .. } if pool.n_nodes() > 1 => report
                .as_ref()
                .filter(|rep| !rep.nodes.is_empty())
                .map(|rep| ExchangeSim::build(pool, rep, problem)),
            _ => None,
        };

        let mut solver = FetiSolver {
            problem,
            opts,
            factors,
            explicit_ops,
            precision,
            f32_ops,
            g,
            gtg,
            kernel_col,
            d: Vec::new(),
            e: Vec::new(),
            report,
            exchange_sim,
            legacy_assembly,
            legacy_cluster,
            legacy_hybrid,
        };
        // dual + coarse right-hand sides of the problem's own loads (any
        // other loads go through solve_rhs, which recomputes both)
        let (d, e) = solver.rhs_setup(None);
        solver.d = d;
        solver.e = e;
        solver
    }

    /// The unified preprocessing report: per-subdomain timings, per-device
    /// execution timelines, and (for the auto formulation) the hybrid
    /// decisions — one schema for every backend. `None` when the dual
    /// operator is applied implicitly (nothing was assembled).
    pub fn report(&self) -> Option<&AssemblyReport> {
        self.report.as_ref()
    }

    /// Diagnostics of the batched explicit assembly, in the legacy
    /// single-target shape.
    #[deprecated(since = "0.2.0", note = "use FetiSolver::report")]
    pub fn assembly_report(&self) -> Option<&BatchReport> {
        self.legacy_assembly.as_ref()
    }

    /// Per-device diagnostics of the cluster-sharded assembly, in the
    /// legacy shape.
    #[deprecated(since = "0.2.0", note = "use FetiSolver::report")]
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.legacy_cluster.as_ref()
    }

    /// Decision/cost roll-up of the hybrid mode, in the legacy shape.
    #[deprecated(since = "0.2.0", note = "use FetiSolver::report")]
    pub fn hybrid_report(&self) -> Option<&HybridReport> {
        self.legacy_hybrid.as_ref()
    }

    /// The options captured at construction.
    pub fn options(&self) -> &FetiOptions {
        &self.opts
    }

    /// Number of kernel columns (size of the coarse problem).
    pub fn n_kernels(&self) -> usize {
        self.kernel_col.iter().flatten().count()
    }

    /// Compute the dual and coarse right-hand sides `d = B K⁺ f`,
    /// `e = Rᵀ f` for the given per-subdomain loads (`None` = the
    /// problem's own).
    fn rhs_setup(&self, f_locals: Option<&[Vec<f64>]>) -> (Vec<f64>, Vec<f64>) {
        let f_of = |i: usize| -> &[f64] {
            match f_locals {
                Some(fs) => &fs[i],
                None => &self.problem.subdomains[i].f,
            }
        };
        let d_locals: Vec<Vec<f64>> = self
            .factors
            .par_iter()
            .zip(&self.problem.subdomains)
            .enumerate()
            .map(|(i, (f, sd))| {
                let kf = f.solve_kplus(f_of(i));
                let mut dl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kf, 0.0, &mut dl);
                dl
            })
            .collect();
        let mut d = vec![0.0; self.problem.n_lambda];
        for (sd, dl) in self.problem.subdomains.iter().zip(&d_locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                d[gl] += dl[ll];
            }
        }
        let mut e = vec![0.0; self.n_kernels().max(1)];
        for (i, sd) in self.problem.subdomains.iter().enumerate() {
            let (Some(kc), Some(ker)) = (self.kernel_col[i], sd.kernel.as_ref()) else {
                continue;
            };
            e[kc] = f_of(i).iter().zip(ker).map(|(fi, ri)| fi * ri).sum();
        }
        (d, e)
    }

    /// Apply the assembled dual operator `F` to a global dual vector.
    ///
    /// Under the multi-node backend the application also advances the
    /// simulated boundary exchange: each node's incoming data is posted
    /// before the local GEMVs submit, so queued device work overlaps the
    /// transfer; unhidden wait accumulates as
    /// [`PcpgStats::exchange_stall_seconds`]. The numerics are identical
    /// either way — the simulation only moves stream clocks.
    pub fn apply_f(&self, p: &[f64]) -> Vec<f64> {
        let arrivals = self.exchange_sim.as_ref().and_then(|sim| sim.begin());
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .enumerate()
            .map(|(i, sd)| {
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| p[gl]).collect();
                let mut ql = vec![0.0; sd.n_lambda()];
                match &self.explicit_ops {
                    Some(ops) => match &ops[i] {
                        OpSlot::Own(op) => op.apply(&pl, &mut ql),
                        OpSlot::SharedImplicit { scratch } => {
                            // reuse this subdomain's dof-space work vector
                            // across PCPG iterations (uncontended lock: one
                            // task per subdomain)
                            let mut t = scratch.lock().expect("scratch mutex poisoned");
                            crate::dualop::apply_implicit_with(
                                &self.factors[i],
                                &pl,
                                &mut ql,
                                &mut t,
                            )
                        }
                    },
                    None => crate::dualop::apply_implicit(&self.factors[i], &pl, &mut ql),
                }
                ql
            })
            .collect();
        if let (Some(sim), Some(arrivals)) = (self.exchange_sim.as_ref(), arrivals) {
            sim.finish(&arrivals);
        }
        let mut q = vec![0.0; self.problem.n_lambda];
        for (sd, ql) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                q[gl] += ql[ll];
            }
        }
        q
    }

    /// Solve the small coarse system `(GᵀG) x = b`.
    fn coarse_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        sc_dense::cholesky_solve(self.gtg.as_ref(), &mut x);
        x
    }

    /// Projector `P x = x − G (GᵀG)⁻¹ Gᵀ x`.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        if self.n_kernels() == 0 {
            return x.to_vec();
        }
        let mut gtx = vec![0.0; self.g.ncols()];
        self.g.spmv_t(1.0, x, 0.0, &mut gtx);
        let y = self.coarse_solve(&gtx);
        let mut out = x.to_vec();
        self.g.spmv(-1.0, &y, 1.0, &mut out);
        out
    }

    /// Apply the lumped preconditioner `M⁻¹ w = Σᵢ B̃ᵢ Kᵢ B̃ᵢᵀ w̃ᵢ`.
    pub fn apply_lumped(&self, w: &[f64]) -> Vec<f64> {
        let locals: Vec<Vec<f64>> = self
            .problem
            .subdomains
            .par_iter()
            .map(|sd| {
                let wl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| w[gl]).collect();
                let mut t = vec![0.0; sd.n_dofs()];
                sd.bt.spmv(1.0, &wl, 0.0, &mut t); // B̃ᵀ w̃
                let mut kt = vec![0.0; sd.n_dofs()];
                sd.k.spmv(1.0, &t, 0.0, &mut kt); // K B̃ᵀ w̃
                let mut zl = vec![0.0; sd.n_lambda()];
                sd.bt.spmv_t(1.0, &kt, 0.0, &mut zl); // B̃ K B̃ᵀ w̃
                zl
            })
            .collect();
        let mut z = vec![0.0; self.problem.n_lambda];
        for (sd, zl) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                z[gl] += zl[ll];
            }
        }
        z
    }

    /// Full FETI solve of the problem's own loads: PCPG on the dual, then
    /// primal recovery. Uses the options captured at construction.
    pub fn solve(&self) -> FetiSolution {
        let (d, e) = (self.d.clone(), self.e.clone());
        self.solve_inner(&self.opts, &d, &e, None)
    }

    /// Solve for **new per-subdomain loads** without repeating any
    /// preprocessing: the factorizations, explicit operators, and coarse
    /// factor built at construction are reused; only the right-hand sides
    /// (`d = B K⁺ f`, `e = Rᵀ f`), the PCPG iteration, and the primal
    /// recovery run per call. This is what amortizes the expensive explicit
    /// assembly across many solves.
    ///
    /// # Panics
    ///
    /// When `f_locals` does not carry one load vector per subdomain with
    /// the subdomain's dof count.
    pub fn solve_rhs(&self, f_locals: &[Vec<f64>]) -> FetiSolution {
        assert_eq!(
            f_locals.len(),
            self.problem.subdomains.len(),
            "solve_rhs needs one load vector per subdomain ({} given, {} subdomains)",
            f_locals.len(),
            self.problem.subdomains.len()
        );
        for (i, (fl, sd)) in f_locals.iter().zip(&self.problem.subdomains).enumerate() {
            assert_eq!(
                fl.len(),
                sd.n_dofs(),
                "subdomain {i}: load vector has {} entries, expected {}",
                fl.len(),
                sd.n_dofs()
            );
        }
        let (d, e) = self.rhs_setup(Some(f_locals));
        self.solve_inner(&self.opts, &d, &e, Some(f_locals))
    }

    /// Legacy entry point honouring per-call options; `solve()` (no
    /// arguments, options captured at construction) replaces it.
    #[deprecated(
        since = "0.2.0",
        note = "options are captured at construction; call FetiSolver::solve()"
    )]
    pub fn solve_with(&self, opts: &FetiOptions) -> FetiSolution {
        let (d, e) = (self.d.clone(), self.e.clone());
        self.solve_inner(opts, &d, &e, None)
    }

    fn solve_inner(
        &self,
        opts: &FetiOptions,
        d: &[f64],
        e: &[f64],
        f_locals: Option<&[Vec<f64>]>,
    ) -> FetiSolution {
        // λ0 = G (GᵀG)⁻¹ e satisfies Gᵀ λ0 = e (Eq. 4)
        let lambda0 = if self.n_kernels() == 0 {
            vec![0.0; self.problem.n_lambda]
        } else {
            let y = self.coarse_solve(e);
            let mut l0 = vec![0.0; self.problem.n_lambda];
            self.g.spmv(1.0, &y, 0.0, &mut l0);
            l0
        };
        // reset the exchange-stall counter so the stamped figure below
        // covers exactly this solve's dual-operator applications
        if let Some(sim) = &self.exchange_sim {
            let _ = sim.drain();
        }
        let (lambda, mut stats, refinement) = match self.precision {
            Precision::F64 => {
                let res = self.pcpg_f64(opts, d, lambda0);
                (res.lambda, res.stats, None)
            }
            Precision::F32Refined {
                refine_tol,
                max_refine,
            } => self.solve_refined(opts, d, lambda0, refine_tol, max_refine),
        };
        if let Some(sim) = &self.exchange_sim {
            stats.exchange_stall_seconds = sim.drain();
        }
        let u_locals = self.recover_primal_with(&lambda, d, f_locals);
        FetiSolution {
            u_locals,
            lambda,
            stats,
            refinement,
        }
    }

    /// The full-`f64` PCPG solve (the historical path; also the
    /// mixed-precision fallback).
    fn pcpg_f64(
        &self,
        opts: &FetiOptions,
        d: &[f64],
        lambda0: Vec<f64>,
    ) -> crate::pcpg::PcpgResult {
        crate::pcpg::pcpg_preconditioned(
            d,
            lambda0,
            |p| self.apply_f(p),
            |x| self.project(x),
            |w| match opts.preconditioner {
                Preconditioner::None => w.to_vec(),
                Preconditioner::Lumped => self.apply_lumped(w),
            },
            opts.tol,
            opts.max_iter,
        )
    }

    /// Apply the demoted dual operator at `f32` (the mixed-precision inner
    /// solve's hot path): same gather/apply/scatter structure as
    /// [`FetiSolver::apply_f`], accumulating in single precision.
    fn apply_f32(&self, p: &[f32]) -> Vec<f32> {
        let ops = self
            .f32_ops
            .as_ref()
            .expect("f32 operators exist under the refined precision");
        let locals: Vec<Vec<f32>> = self
            .problem
            .subdomains
            .par_iter()
            .enumerate()
            .map(|(i, sd)| {
                let pl: Vec<f32> = sd.lambda_ids.iter().map(|&gl| p[gl]).collect();
                let mut ql = vec![0.0f32; sd.n_lambda()];
                ops[i].apply(&pl, &mut ql);
                ql
            })
            .collect();
        let mut q = vec![0.0f32; self.problem.n_lambda];
        for (sd, ql) in self.problem.subdomains.iter().zip(&locals) {
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                q[gl] += ql[ll];
            }
        }
        q
    }

    /// Mixed-precision iterative refinement (the `F32Refined` solve path):
    /// the outer loop measures the true projected residual `r = P(d − Fλ)`
    /// and accumulates corrections in `f64`; each correction solves
    /// `F δ = r` with the **`f32`** PCPG against the demoted operators. The
    /// correction is re-projected in `f64` before the update so the coarse
    /// constraint `Gᵀλ = e` never degrades to single precision. When the
    /// residual stalls or the refinement budget runs out, the solve falls
    /// back to the full-`f64` PCPG from the best iterate.
    fn solve_refined(
        &self,
        opts: &FetiOptions,
        d: &[f64],
        lambda0: Vec<f64>,
        refine_tol: f64,
        max_refine: usize,
    ) -> (Vec<f64>, PcpgStats, Option<RefinementStats>) {
        let m = d.len();
        let norm0 = {
            let pd = self.project(d);
            sc_dense::dot(&pd, &pd).sqrt()
        };
        // sc-analyze: allow(float-eq)
        if norm0 == 0.0 {
            let stats = PcpgStats {
                iterations: 0,
                operator_applications: 0,
                rel_residual: 0.0,
                converged: true,
                breakdown: None,
                exchange_stall_seconds: 0.0,
            };
            let refinement = RefinementStats {
                outer_iterations: 0,
                inner_iterations: 0,
                rel_residual: 0.0,
                converged: true,
                fell_back: false,
            };
            return (lambda0, stats, Some(refinement));
        }

        let mut lambda = lambda0;
        let mut outer = 0usize;
        let mut inner_total = 0usize;
        let mut applications = 0usize;
        let mut rel;
        let mut prev_rel = f64::INFINITY;
        loop {
            // f64 truth: r = P(d − Fλ) through the full-precision operator
            let flam = self.apply_f(&lambda);
            applications += 1;
            let resid: Vec<f64> = d.iter().zip(&flam).map(|(di, fi)| di - fi).collect();
            let r = self.project(&resid);
            rel = sc_dense::dot(&r, &r).sqrt() / norm0;
            if rel <= refine_tol {
                break;
            }
            // stalled (single precision can push no further) or out of
            // budget: hand over to the f64 fallback below
            if outer >= max_refine || rel >= 0.5 * prev_rel {
                break;
            }
            prev_rel = rel;

            // inner f32 correction solve F δ = r over the Gᵀδ = 0 subspace;
            // projector and preconditioner round-trip through their f64
            // implementations (the operator applications are the hot path
            // and run natively at f32)
            let r32 = demote(&r);
            let res = crate::pcpg::pcpg_preconditioned_of::<f32>(
                &r32,
                vec![0.0f32; m],
                |p| self.apply_f32(p),
                |x| demote(&self.project(&promote(x))),
                |w| match opts.preconditioner {
                    Preconditioner::None => w.to_vec(),
                    Preconditioner::Lumped => demote(&self.apply_lumped(&promote(w))),
                },
                INNER_TOL,
                opts.max_iter,
            );
            inner_total += res.stats.iterations;
            applications += res.stats.operator_applications;
            // promote the correction and re-project in f64: the f32 iterate
            // satisfies Gᵀδ = 0 only to single precision, and the coarse
            // constraint must hold at the accumulation precision
            let delta = self.project(&promote(&res.lambda));
            for (li, di) in lambda.iter_mut().zip(&delta) {
                *li += di;
            }
            outer += 1;
        }

        if rel <= refine_tol {
            let stats = PcpgStats {
                iterations: inner_total,
                operator_applications: applications,
                rel_residual: rel,
                converged: true,
                breakdown: None,
                exchange_stall_seconds: 0.0,
            };
            let refinement = RefinementStats {
                outer_iterations: outer,
                inner_iterations: inner_total,
                rel_residual: rel,
                converged: true,
                fell_back: false,
            };
            (lambda, stats, Some(refinement))
        } else {
            // refinement failed to reach the target: fall back to the
            // historical full-f64 PCPG from the best iterate (Gᵀλ = e still
            // holds, so it is a legal warm start)
            let res = self.pcpg_f64(opts, d, lambda);
            let refinement = RefinementStats {
                outer_iterations: outer,
                inner_iterations: inner_total,
                rel_residual: res.stats.rel_residual,
                converged: res.stats.converged,
                fell_back: true,
            };
            (res.lambda, res.stats, Some(refinement))
        }
    }

    /// The working precision captured from the backend at construction.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Primal recovery for the problem's own loads: `α = (GᵀG)⁻¹Gᵀ(Fλ − d)`,
    /// `uᵢ = K⁺(fᵢ − B̃ᵢᵀ λ̃ᵢ) + Rᵢ αᵢ` (Eq. 5).
    pub fn recover_primal(&self, lambda: &[f64]) -> Vec<Vec<f64>> {
        self.recover_primal_with(lambda, &self.d, None)
    }

    fn recover_primal_with(
        &self,
        lambda: &[f64],
        d: &[f64],
        f_locals: Option<&[Vec<f64>]>,
    ) -> Vec<Vec<f64>> {
        let alphas: Vec<f64> = if self.n_kernels() == 0 {
            Vec::new()
        } else {
            let flam = self.apply_f(lambda);
            let resid: Vec<f64> = flam.iter().zip(d).map(|(a, b)| a - b).collect();
            let mut gtr = vec![0.0; self.g.ncols()];
            self.g.spmv_t(1.0, &resid, 0.0, &mut gtr);
            self.coarse_solve(&gtr)
        };
        self.factors
            .par_iter()
            .zip(&self.problem.subdomains)
            .enumerate()
            .map(|(i, (fac, sd))| {
                // f_i - B̃ᵀ λ̃
                let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lambda[gl]).collect();
                let mut rhs = match f_locals {
                    Some(fs) => fs[i].clone(),
                    None => sd.f.clone(),
                };
                sd.bt.spmv(-1.0, &pl, 1.0, &mut rhs);
                let mut u = fac.solve_kplus(&rhs);
                if let (Some(kc), Some(ker)) = (self.kernel_col[i], sd.kernel.as_ref()) {
                    let a = alphas[kc];
                    for (ui, ri) in u.iter_mut().zip(ker) {
                        *ui += a * ri;
                    }
                }
                u
            })
            .collect()
    }

    /// The dual right-hand side of the problem's own loads.
    pub fn dual_rhs(&self) -> &[f64] {
        &self.d
    }

    /// Borrow the per-subdomain factor bundles.
    pub fn factors(&self) -> &[SubdomainFactors] {
        &self.factors
    }

    /// Clone the shared handle of the per-subdomain factor bundles, so a
    /// session cache can retain them past this solver's lifetime and feed
    /// them back through [`FetiSolverBuilder::factors`].
    pub fn shared_factors(&self) -> Arc<Vec<SubdomainFactors>> {
        Arc::clone(&self.factors)
    }
}

/// Exact widening of a dual vector to `f64` (mixed-precision boundary).
fn promote(x: &[f32]) -> Vec<f64> {
    x.iter().map(|&v| f64::from(v)).collect()
}

/// Rounding demotion of a dual vector to `f32` (mixed-precision boundary).
fn demote(x: &[f64]) -> Vec<f32> {
    x.iter().map(|&v| f32::from_f64(v)).collect()
}

/// Resolve a report's **flattened** (cluster-global) device index to the
/// owning node's device handle.
fn node_local_device(pool: &NodePool, flat: usize) -> &Arc<sc_gpu::Device> {
    let mut d = flat;
    for ns in pool.nodes() {
        let n = ns.pool.n_devices();
        if d < n {
            return ns.pool.device(d);
        }
        d -= n;
    }
    panic!("device index {flat} lies outside the node pool") // sc-analyze: allow(panic-surface)
}

/// Bind each assembled `F̃ᵢ` to its operator slot: subdomains the report
/// placed on a device get a device-resident GEMV operator on the stream
/// their schedule used; host subdomains (CPU backend, hybrid spills) get
/// the host GEMV.
fn bind_ops(f: Vec<Mat>, report: &AssemblyReport, backend: &Backend) -> Vec<OpSlot> {
    f.into_iter()
        .enumerate()
        .map(|(i, mat)| {
            let t = &report.subdomains[i];
            debug_assert_eq!(t.index, i, "report timings must be in batch order");
            let op = match (&backend.target, t.device, t.stream) {
                (Target::Gpu { device, .. }, Some(_), Some(s)) => DualOperator::ExplicitGpu {
                    f: mat,
                    kernels: GpuKernels::new(device.stream(s)),
                },
                (Target::Cluster { pool, .. } | Target::Hybrid { pool, .. }, Some(d), Some(s)) => {
                    DualOperator::ExplicitGpu {
                        f: mat,
                        kernels: GpuKernels::new(pool.device(d).stream(s)),
                    }
                }
                (Target::MultiNode { pool, .. }, Some(d), Some(s)) => DualOperator::ExplicitGpu {
                    f: mat,
                    kernels: GpuKernels::new(node_local_device(pool, d).stream(s)),
                },
                _ => DualOperator::ExplicitCpu(mat),
            };
            OpSlot::Own(op)
        })
        .collect()
}

/// The auto (hybrid) formulation: per-subdomain explicit-vs-implicit
/// decision under the §4.4 cost model, explicit shares assembled through
/// sessions on the backend, reports merged into one [`AssemblyReport`]
/// (problem-global indices) plus the legacy [`HybridReport`].
fn assemble_auto(
    factors: &[SubdomainFactors],
    cfg: &ScConfig,
    backend: &Backend,
    plan_opts: &HybridPlanOptions,
) -> (Vec<OpSlot>, AssemblyReport, HybridReport) {
    // the pool the explicit-GPU share may run on: the backend's own pool, a
    // single-device pool for the GPU backend, or an empty pool on the host
    let (pool, cluster_opts): (Arc<DevicePool>, ClusterOptions) = match &backend.target {
        Target::Cluster { pool, opts } | Target::Hybrid { pool, opts } => {
            (Arc::clone(pool), opts.clone())
        }
        Target::Gpu { device, schedule } => {
            let mut opts = ClusterOptions::default().with_policy(schedule.policy);
            if let Some(r) = &schedule.ready_at {
                opts = opts.with_ready_at(r.clone());
            }
            (DevicePool::from_devices(vec![Arc::clone(device)]), opts)
        }
        // the per-subdomain decision layer works over a flat device list:
        // the node pool's devices, interconnects not priced (the explicit
        // share's placement is intra-node here)
        Target::MultiNode { pool, opts } => {
            let devices: Vec<_> = pool
                .nodes()
                .iter()
                .flat_map(|ns| ns.pool.devices().iter().cloned())
                .collect();
            (DevicePool::from_devices(devices), opts.clone())
        }
        _ => (
            DevicePool::from_devices(Vec::new()),
            ClusterOptions::default(),
        ),
    };

    // decision layer: analytic assembly + per-iteration apply estimates per
    // subdomain (the factor is borrowed where the engine exposes it)
    let ref_spec = if pool.is_empty() {
        plan_opts.host.clone()
    } else {
        pool.device(0).spec().clone()
    };
    let estimates: Vec<(sc_core::CostEstimate, sc_core::ApplyEstimate)> = factors
        .par_iter()
        .enumerate()
        .map(|(i, f)| {
            let owned;
            let l: &Csc = match f.chol.factor_csc_ref() {
                Some(l) => l,
                None => {
                    owned = f.chol.factor_csc();
                    &owned
                }
            };
            let bt = &f.bt_perm;
            let params = cfg.resolve(!pool.is_empty(), l, bt);
            (
                estimate_cost(&ref_spec, l, bt, &params, i),
                estimate_apply(l, bt, i),
            )
        })
        .collect();
    let (costs, applies): (Vec<_>, Vec<_>) = estimates.into_iter().unzip();
    let slots: Vec<DeviceSlot> = pool.devices().iter().map(|d| DeviceSlot::of(d)).collect();
    let plan = plan_hybrid(&costs, &applies, &slots, plan_opts);
    let gpu_idx = plan.indices_of(Formulation::ExplicitGpu);
    let cpu_idx = plan.indices_of(Formulation::ExplicitCpu);

    // one dispatch slot per subdomain; non-explicit ones borrow the shared
    // factor bundle at application time
    let mut ops: Vec<OpSlot> = (0..factors.len())
        .map(|_| OpSlot::shared_implicit())
        .collect();

    // explicit-GPU share through a cluster session (two-level plan, arena
    // admission, record/replay — bitwise CPU-equal)
    let mut gpu_report: Option<AssemblyReport> = None;
    let mut gpu_cluster_legacy: Option<ClusterReport> = None;
    if !gpu_idx.is_empty() {
        let mut share_opts = cluster_opts.clone();
        share_opts.ready_at = cluster_opts
            .ready_at
            .as_ref()
            .map(|r| gpu_idx.iter().map(|&g| r[g]).collect());
        let gpu_items: Vec<&SubdomainFactors> = gpu_idx.iter().map(|&g| &factors[g]).collect();
        let session = AssemblySession::new(
            Backend::cluster_with(Arc::clone(&pool), share_opts).precision(backend.precision),
            *cfg,
        );
        let res = session.assemble(LazyBatch::new(
            &gpu_items,
            |_, f: &&SubdomainFactors| Cow::Owned(f.chol.factor_csc()),
            |f| &f.bt_perm,
        ));
        for (local, mat) in res.f.into_iter().enumerate() {
            let t = &res.report.subdomains[local];
            let dev = t.device.expect("gpu share runs on the pool");
            let stream = t.stream.unwrap_or(0);
            ops[gpu_idx[local]] = OpSlot::Own(DualOperator::ExplicitGpu {
                f: mat,
                kernels: GpuKernels::new(pool.device(dev).stream(stream)),
            });
        }
        gpu_cluster_legacy = res
            .report
            .to_cluster_report()
            .map(|c| remap_cluster_report(c, &gpu_idx, factors.len()));
        let mut rep = res.report;
        rep.remap_indices(&gpu_idx);
        gpu_report = Some(rep);
    }

    // explicit-CPU share (the spill fail-over for high iteration counts)
    // through a CPU session
    let mut cpu_report: Option<AssemblyReport> = None;
    let mut cpu_batch_legacy: Option<BatchReport> = None;
    if !cpu_idx.is_empty() {
        let cpu_items: Vec<&SubdomainFactors> = cpu_idx.iter().map(|&g| &factors[g]).collect();
        let session = AssemblySession::new(Backend::cpu().precision(backend.precision), *cfg);
        let res = session.assemble(LazyBatch::new(
            &cpu_items,
            |_, f: &&SubdomainFactors| Cow::Owned(f.chol.factor_csc()),
            |f| &f.bt_perm,
        ));
        for (local, mat) in res.f.into_iter().enumerate() {
            ops[cpu_idx[local]] = OpSlot::Own(DualOperator::ExplicitCpu(mat));
        }
        cpu_batch_legacy = Some(remap_batch_report(res.report.to_batch_report(), &cpu_idx));
        let mut rep = res.report;
        rep.remap_indices(&cpu_idx);
        cpu_report = Some(rep);
    }

    // roll both shares up into the unified report: timings in problem-global
    // order, device sections from the pool share, decisions in the hybrid
    // block
    let predicted_assembly_seconds: f64 = plan
        .choices
        .iter()
        .filter(|c| c.formulation != Formulation::Implicit)
        .map(|c| c.assembly_seconds)
        .sum();
    let mut unified = AssemblyReport::default();
    if let Some(g) = &gpu_report {
        unified.subdomains.extend(g.subdomains.iter().copied());
        unified.devices = g.devices.clone();
        unified.makespan = g.makespan;
        unified.total_seconds += g.total_seconds;
        unified.cache_hits += g.cache_hits;
        unified.cache_misses += g.cache_misses;
    }
    if let Some(c) = &cpu_report {
        unified.subdomains.extend(c.subdomains.iter().copied());
        unified.total_seconds += c.total_seconds;
        unified.cache_hits += c.cache_hits;
        unified.cache_misses += c.cache_misses;
    }
    unified.subdomains.sort_by_key(|t| t.index);
    let realized_gpu = gpu_report.as_ref().map_or(0.0, |g| g.makespan);
    let realized_cpu = cpu_report.as_ref().map_or(0.0, |c| c.total_seconds);
    let arena_high_water = gpu_report.as_ref().map_or(0, |g| g.temp_high_water());
    unified.precision = backend.precision;
    unified.hybrid = Some(HybridSummary {
        plan: Some(plan.clone()),
        formulation: plan.choices.iter().map(|c| c.formulation).collect(),
        spilled: plan.spilled.clone(),
        predicted_assembly_seconds,
        realized_gpu_seconds: realized_gpu,
        realized_cpu_seconds: realized_cpu,
        arena_high_water,
        precision: backend.precision,
    });

    let legacy = HybridReport {
        cluster: gpu_cluster_legacy,
        cpu_batch: cpu_batch_legacy,
        predicted_assembly_seconds,
        realized_gpu_assembly_seconds: realized_gpu,
        realized_cpu_assembly_seconds: realized_cpu,
        arena_high_water,
        plan,
    };
    (ops, unified, legacy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::{HybridForce, ScheduleOptions, StreamPolicy};
    use sc_factor::{CholOptions, SparseCholesky};
    use sc_fem::Gluing;
    use sc_gpu::{Device, DeviceSpec};

    fn direct_solution(problem: &HeatProblem) -> Vec<f64> {
        let (k, f) = problem.assemble_global();
        let chol = SparseCholesky::factorize(&k, CholOptions::default()).unwrap();
        chol.solve(&f)
    }

    fn check_solver(problem: &HeatProblem, solver: &FetiSolver<'_>, tol: f64) {
        let sol = solver.solve();
        assert!(
            sol.stats.converged,
            "PCPG did not converge: {:?}",
            sol.stats
        );
        let direct = direct_solution(problem);
        let u = problem.gather_global(&sol.u_locals);
        let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u.len() {
            assert!(
                (u[i] - direct[i]).abs() < tol * scale,
                "dof {i}: feti {} vs direct {}",
                u[i],
                direct[i]
            );
        }
    }

    fn explicit_solver<'p>(
        problem: &'p HeatProblem,
        backend: Backend,
        cfg: ScConfig,
    ) -> FetiSolver<'p> {
        FetiSolverBuilder::new()
            .backend(backend)
            .formulation(FormulationChoice::Explicit)
            .assembly(cfg)
            .build(problem)
    }

    #[test]
    fn implicit_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (3, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new().build(&p);
        check_solver(&p, &solver, 1e-6);
    }

    #[test]
    fn reused_factors_solve_is_bitwise_identical() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        for formulation in [FormulationChoice::Implicit, FormulationChoice::Explicit] {
            let cold = FetiSolverBuilder::new()
                .formulation(formulation.clone())
                .assembly(ScConfig::optimized(false, false))
                .build(&p);
            let warm = FetiSolverBuilder::new()
                .formulation(formulation)
                .assembly(ScConfig::optimized(false, false))
                .factors(cold.shared_factors())
                .build(&p);
            let sc = cold.solve();
            let sw = warm.solve();
            assert_eq!(sc.lambda, sw.lambda, "dual solutions must match bitwise");
            assert_eq!(
                sc.u_locals, sw.u_locals,
                "primal solutions must match bitwise"
            );
            assert_eq!(sc.stats.iterations, sw.stats.iterations);
        }
    }

    #[test]
    #[should_panic(expected = "must cover every subdomain")]
    fn mismatched_factor_bundle_panics() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new().build(&p);
        let bigger = HeatProblem::build_2d(4, (3, 2), Gluing::Redundant);
        FetiSolverBuilder::new()
            .factors(solver.shared_factors())
            .build(&bigger);
    }

    #[test]
    fn explicit_cpu_2d_matches_direct() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = explicit_solver(&p, Backend::cpu(), ScConfig::optimized(false, false));
        check_solver(&p, &solver, 1e-6);
        let report = solver.report().expect("explicit mode reports");
        assert_eq!(report.subdomains.len(), p.subdomains.len());
        assert!(report.devices.is_empty());
    }

    #[test]
    fn explicit_gpu_3d_matches_direct() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let solver = explicit_solver(
            &p,
            Backend::gpu(Arc::clone(&dev)),
            ScConfig::optimized(true, true),
        );
        check_solver(&p, &solver, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
    }

    #[test]
    fn explicit_gpu_scheduled_matches_direct_and_reports_schedule() {
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let solver = explicit_solver(&p, Backend::gpu(Arc::clone(&dev)), ScConfig::Auto);
        check_solver(&p, &solver, 1e-6);
        assert!(dev.synchronize() > 0.0, "GPU must have been used");
        let report = solver.report().expect("explicit mode reports");
        assert_eq!(report.devices.len(), 1);
        assert_eq!(report.devices[0].schedule.len(), p.subdomains.len());
        assert!(report.makespan > 0.0);
        assert!(report.subdomains.iter().all(|t| t.stream.is_some()));
    }

    #[test]
    fn explicit_gpu_cluster_matches_direct_and_reports_partition() {
        let p = HeatProblem::build_3d(2, (2, 2, 2), Gluing::Redundant);
        let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
        let solver = explicit_solver(
            &p,
            Backend::cluster(Arc::clone(&pool)),
            ScConfig::optimized(true, true),
        );
        check_solver(&p, &solver, 1e-6);
        assert!(pool.synchronize_all() > 0.0, "the pool must have been used");

        let report = solver.report().expect("cluster mode reports");
        assert_eq!(report.devices.len(), 2);
        let mut placed: Vec<usize> = report
            .devices
            .iter()
            .flat_map(|d| d.subdomains.iter().copied())
            .collect();
        placed.sort_unstable();
        assert_eq!(placed, (0..p.subdomains.len()).collect::<Vec<_>>());
        assert!(report.makespan > 0.0);
        assert_eq!(report.subdomains.len(), p.subdomains.len());

        // the cluster-assembled F̃ᵢ are bitwise identical to the CPU
        // explicit path (same fixed config ⇒ same kernel sequence)
        let s_cpu = explicit_solver(&p, Backend::cpu(), ScConfig::optimized(true, true));
        let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = solver.apply_f(&lam);
        let b = s_cpu.apply_f(&lam);
        assert_eq!(a, b, "cluster dual operator must match the CPU one bitwise");
    }

    #[test]
    fn solve_rhs_reuses_preprocessing_bitwise() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = explicit_solver(&p, Backend::cpu(), ScConfig::optimized(false, false));
        // the problem's own loads through both entry points: bitwise equal
        let own: Vec<Vec<f64>> = p.subdomains.iter().map(|sd| sd.f.clone()).collect();
        let a = solver.solve();
        let b = solver.solve_rhs(&own);
        assert_eq!(a.lambda, b.lambda, "same loads must solve identically");
        assert_eq!(a.u_locals, b.u_locals);
        // scaled loads scale the solution linearly
        let scaled: Vec<Vec<f64>> = own
            .iter()
            .map(|f| f.iter().map(|v| 3.0 * v).collect())
            .collect();
        let c = solver.solve_rhs(&scaled);
        assert!(c.stats.converged);
        let ua = p.gather_global(&a.u_locals);
        let uc = p.gather_global(&c.u_locals);
        let scale = ua.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for i in 0..ua.len() {
            assert!(
                (uc[i] - 3.0 * ua[i]).abs() < 1e-6 * scale,
                "dof {i}: {} vs 3×{}",
                uc[i],
                ua[i]
            );
        }
    }

    #[test]
    fn solve_rhs_validates_shapes() {
        let p = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let solver = FetiSolverBuilder::new().build(&p);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solver.solve_rhs(&[Vec::new()]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("one load vector per subdomain"), "{msg}");
    }

    /// Peak temporary footprints of every subdomain under `cfg`, priced the
    /// same way the hybrid decision layer prices them.
    fn temp_footprints(p: &HeatProblem, cfg: &ScConfig) -> Vec<usize> {
        p.subdomains
            .iter()
            .map(|sd| {
                let f = SubdomainFactors::build(
                    sd,
                    Engine::Simplicial,
                    sc_order::Ordering::NestedDissection,
                );
                let l = f.chol.factor_csc();
                let params = cfg.resolve(true, &l, &f.bt_perm);
                estimate_cost(&DeviceSpec::a100(), &l, &f.bt_perm, &params, 0).temp_bytes
            })
            .collect()
    }

    fn auto_solver<'p>(
        p: &'p HeatProblem,
        pool: Arc<DevicePool>,
        cfg: ScConfig,
        iters: f64,
        allow_cpu: bool,
        force: HybridForce,
    ) -> FetiSolver<'p> {
        FetiSolverBuilder::new()
            .backend(Backend::cluster(pool))
            .formulation(FormulationChoice::Auto(
                HybridPlanOptions::default()
                    .with_iters(iters)
                    .with_allow_explicit_cpu(allow_cpu)
                    .with_force(force),
            ))
            .assembly(cfg)
            .build(p)
    }

    #[test]
    fn hybrid_mixes_formulations_and_matches_direct() {
        // a 3×3 decomposition carries corner, edge, and interior subdomains
        // with different interface sizes: an arena between the extremes
        // splits them into explicitly-admissible and spilled
        let p = HeatProblem::build_2d(6, (3, 3), Gluing::Redundant);
        let cfg = ScConfig::optimized(true, true);
        let temps = temp_footprints(&p, &cfg);
        let (lo, hi) = (*temps.iter().min().unwrap(), *temps.iter().max().unwrap());
        assert!(lo < hi, "workload must have a footprint spread");
        let arena = (lo + hi) / 2;
        let spec = DeviceSpec {
            memory_bytes: 2 * arena, // the arena is half of device memory
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 2, 2);
        // forced explicit + no CPU fail-over: admissible subdomains go to
        // the pool, oversized ones must spill to implicit (never error)
        let solver = auto_solver(
            &p,
            Arc::clone(&pool),
            cfg,
            1e6,
            false,
            HybridForce::AllExplicit,
        );
        check_solver(&p, &solver, 1e-6);

        let report = solver.report().expect("auto mode reports");
        let hybrid = report.hybrid.as_ref().expect("hybrid section present");
        let n_gpu = hybrid.count_of(Formulation::ExplicitGpu);
        let n_impl = hybrid.count_of(Formulation::Implicit);
        assert!(n_gpu > 0, "some subdomains must fit the arena");
        assert!(n_impl > 0, "some subdomains must spill: temps {temps:?}");
        assert_eq!(n_gpu + n_impl, p.subdomains.len());
        assert_eq!(hybrid.spilled.len(), n_impl);
        // spilled = exactly the subdomains whose temporaries exceed the arena
        for (i, &t) in temps.iter().enumerate() {
            assert_eq!(
                hybrid.spilled.contains(&i),
                t > arena,
                "subdomain {i}: {t} B vs arena {arena} B"
            );
        }
        // arena never oversubscribed, and the pool really ran
        assert!(hybrid.arena_high_water <= arena);
        assert!(hybrid.realized_gpu_seconds > 0.0);
        assert!(hybrid.predicted_assembly_seconds > 0.0);
        // every explicitly assembled subdomain carries a device placement
        for t in &report.subdomains {
            assert!(t.device.is_some(), "gpu share timing at {}", t.index);
            assert!(!hybrid.spilled.contains(&t.index));
        }

        // the hybrid operator application must be bitwise identical to the
        // per-subdomain reference: CPU-assembled explicit F̃ᵢ where the plan
        // went explicit (record/replay is bitwise CPU-equal), the shared
        // implicit pipeline where it spilled
        let lam: Vec<f64> = (0..p.n_lambda).map(|i| (i as f64 * 0.37).sin()).collect();
        let got = solver.apply_f(&lam);
        let mut want = vec![0.0; p.n_lambda];
        for (i, sd) in p.subdomains.iter().enumerate() {
            let pl: Vec<f64> = sd.lambda_ids.iter().map(|&gl| lam[gl]).collect();
            let mut ql = vec![0.0; sd.n_lambda()];
            if hybrid.spilled.contains(&i) {
                crate::dualop::apply_implicit(&solver.factors()[i], &pl, &mut ql);
            } else {
                let expl = DualOperator::explicit_cpu(&solver.factors()[i], &cfg);
                expl.apply(&pl, &mut ql);
            }
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                want[gl] += ql[ll];
            }
        }
        assert_eq!(
            got, want,
            "hybrid apply must match the mixed reference bitwise"
        );
    }

    #[test]
    fn hybrid_spill_everything_falls_back_to_implicit() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        // an arena nothing fits into: every subdomain spills, the solver
        // must degrade to the implicit mode instead of erroring
        let spec = DeviceSpec {
            memory_bytes: 16,
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 1, 2);
        let solver = auto_solver(
            &p,
            pool,
            ScConfig::optimized(true, false),
            1e9,
            false,
            HybridForce::Auto,
        );
        check_solver(&p, &solver, 1e-6);
        let report = solver.report().unwrap();
        let hybrid = report.hybrid.as_ref().unwrap();
        assert_eq!(hybrid.count_of(Formulation::Implicit), p.subdomains.len());
        assert_eq!(hybrid.spilled.len(), p.subdomains.len());
        assert!(report.subdomains.is_empty(), "nothing was assembled");
        assert!(report.devices.is_empty());
        assert_eq!(hybrid.predicted_assembly_seconds, 0.0);
    }

    #[test]
    fn hybrid_iteration_extremes_collapse_at_the_solver_level() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let cfg = ScConfig::optimized(true, false);
        let collapse = |iters: f64| {
            let pool = DevicePool::uniform(DeviceSpec::a100(), 1, 2);
            let solver = auto_solver(&p, pool, cfg, iters, true, HybridForce::Auto);
            let report = solver.report().unwrap();
            let h = report.hybrid.as_ref().unwrap();
            (
                h.count_of(Formulation::Implicit),
                h.count_of(Formulation::ExplicitGpu) + h.count_of(Formulation::ExplicitCpu),
            )
        };
        let (impl0, expl0) = collapse(0.0);
        assert_eq!(impl0, p.subdomains.len(), "iters→0 must go all-implicit");
        assert_eq!(expl0, 0);
        let (impl_inf, expl_inf) = collapse(f64::INFINITY);
        assert_eq!(impl_inf, 0, "iters→∞ must go all-explicit");
        assert_eq!(expl_inf, p.subdomains.len());
    }

    #[test]
    fn hybrid_backend_spills_explicitly_to_the_host() {
        // Explicit formulation on the spill-tolerant Hybrid backend: the
        // oversized share is assembled on the host instead of erroring
        let p = HeatProblem::build_2d(6, (3, 3), Gluing::Redundant);
        let cfg = ScConfig::optimized(true, true);
        let temps = temp_footprints(&p, &cfg);
        let (lo, hi) = (*temps.iter().min().unwrap(), *temps.iter().max().unwrap());
        assert!(lo < hi);
        let arena = (lo + hi) / 2;
        let spec = DeviceSpec {
            memory_bytes: 2 * arena,
            ..DeviceSpec::a100()
        };
        let pool = DevicePool::uniform(spec, 2, 2);
        let solver = explicit_solver(&p, Backend::hybrid(pool), cfg);
        check_solver(&p, &solver, 1e-6);
        let report = solver.report().unwrap();
        let hybrid = report.hybrid.as_ref().unwrap();
        assert!(!hybrid.spilled.is_empty(), "some subdomains must spill");
        assert_eq!(
            hybrid.count_of(Formulation::ExplicitCpu),
            hybrid.spilled.len()
        );
        // every subdomain still got an explicit operator
        assert_eq!(report.subdomains.len(), p.subdomains.len());
    }

    #[test]
    fn chain_gluing_also_converges() {
        let p = HeatProblem::build_2d(3, (3, 1), Gluing::Chain);
        let solver = FetiSolverBuilder::new().build(&p);
        check_solver(&p, &solver, 1e-6);
    }

    #[test]
    fn supernodal_engine_matches() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new()
            .options(FetiOptions::default().with_engine(Engine::Supernodal))
            .build(&p);
        check_solver(&p, &solver, 1e-6);
    }

    #[test]
    fn lumped_preconditioner_converges_and_matches() {
        let p = HeatProblem::build_2d(5, (3, 2), Gluing::Redundant);
        let s1 = FetiSolverBuilder::new().build(&p).solve();
        let s2 = FetiSolverBuilder::new()
            .options(FetiOptions::default().with_preconditioner(Preconditioner::Lumped))
            .build(&p)
            .solve();
        assert!(s1.stats.converged && s2.stats.converged);
        // same solution
        let u1 = p.gather_global(&s1.u_locals);
        let u2 = p.gather_global(&s2.u_locals);
        let scale = u1.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for i in 0..u1.len() {
            assert!((u1[i] - u2[i]).abs() < 1e-6 * scale);
        }
        // the lumped preconditioner should not need more iterations
        assert!(
            s2.stats.iterations <= s1.stats.iterations + 2,
            "lumped {} vs plain {}",
            s2.stats.iterations,
            s1.stats.iterations
        );
    }

    #[test]
    fn lambda_jump_is_closed() {
        // after convergence the interface jump B u must vanish
        let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new().build(&p);
        let sol = solver.solve();
        let mut jump = vec![0.0; p.n_lambda];
        for (sd, ul) in p.subdomains.iter().zip(&sol.u_locals) {
            let mut local = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, ul, 0.0, &mut local);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                jump[gl] += local[ll];
            }
        }
        let max_jump = jump.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_jump < 1e-6, "interface jump {max_jump}");
    }

    #[test]
    fn f32_refined_explicit_matches_direct_at_f64_accuracy() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new()
            .backend(Backend::cpu())
            .precision(Precision::f32_refined())
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, false))
            .build(&p);
        assert!(solver.precision().is_f32());
        check_solver(&p, &solver, 1e-6);
        let sol = solver.solve();
        let refinement = sol.refinement.expect("refined path reports stats");
        assert!(refinement.converged && !refinement.fell_back);
        assert!(
            refinement.rel_residual <= 1e-10,
            "refined residual {} must reach the f64-level target",
            refinement.rel_residual
        );
        assert!(refinement.outer_iterations >= 1);
        assert!(refinement.inner_iterations >= refinement.outer_iterations);
        // the assembly itself ran at f32 and says so in the report
        let report = solver.report().expect("explicit mode reports");
        assert!(report.precision.is_f32());
    }

    #[test]
    fn f32_refined_implicit_3d_matches_direct() {
        // no explicit assembly: the inner solves run through the demoted
        // factor bundles (f32 triangular solves)
        let p = HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant);
        let solver = FetiSolverBuilder::new()
            .precision(Precision::f32_refined())
            .build(&p);
        check_solver(&p, &solver, 1e-6);
        let sol = solver.solve();
        let refinement = sol.refinement.expect("refined path reports stats");
        assert!(refinement.converged && !refinement.fell_back);
        assert!(refinement.rel_residual <= 1e-10);
    }

    #[test]
    fn f32_refined_lambda_tracks_the_f64_solution() {
        let p = HeatProblem::build_2d(5, (3, 2), Gluing::Redundant);
        let s64 = FetiSolverBuilder::new().build(&p).solve();
        let s32 = FetiSolverBuilder::new()
            .precision(Precision::f32_refined())
            .build(&p)
            .solve();
        assert!(
            s64.refinement.is_none(),
            "f64 path must not report refinement"
        );
        assert!(s32.refinement.is_some());
        let scale = s64.lambda.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
        for i in 0..s64.lambda.len() {
            assert!(
                (s32.lambda[i] - s64.lambda[i]).abs() < 1e-7 * scale,
                "λ[{i}]: refined {} vs f64 {}",
                s32.lambda[i],
                s64.lambda[i]
            );
        }
    }

    #[test]
    fn refinement_budget_exhaustion_falls_back_to_f64() {
        // one outer iteration cannot reach 1e-14 from an O(1) residual at
        // inner tolerance 1e-4: the budget runs out and the solver must
        // fall back to the full-f64 PCPG instead of returning a bad λ
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let solver = FetiSolverBuilder::new()
            .precision(Precision::F32Refined {
                refine_tol: 1e-14,
                max_refine: 1,
            })
            .build(&p);
        let sol = solver.solve();
        let refinement = sol.refinement.expect("refined path reports stats");
        assert!(refinement.fell_back, "budget exhaustion must fall back");
        assert_eq!(refinement.outer_iterations, 1);
        assert!(
            sol.stats.converged,
            "the f64 fallback must still converge: {:?}",
            sol.stats
        );
        check_solver(&p, &solver, 1e-6);
    }

    #[test]
    fn auto_on_gpu_backend_uses_a_single_device_pool() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        let dev = Device::new(DeviceSpec::a100(), 2);
        let solver = FetiSolverBuilder::new()
            .backend(Backend::gpu_with(
                Arc::clone(&dev),
                ScheduleOptions::default().with_policy(StreamPolicy::LptLeastLoaded),
            ))
            .formulation(FormulationChoice::Auto(
                HybridPlanOptions::default()
                    .with_force(HybridForce::AllExplicit)
                    .with_allow_explicit_cpu(false),
            ))
            .assembly(ScConfig::optimized(true, false))
            .build(&p);
        check_solver(&p, &solver, 1e-6);
        assert!(dev.synchronize() > 0.0, "the device must have been used");
        let hybrid = solver.report().unwrap().hybrid.as_ref().unwrap().clone();
        assert_eq!(
            hybrid.count_of(Formulation::ExplicitGpu),
            p.subdomains.len(),
            "forced explicit with no CPU fail-over goes all-explicit-GPU"
        );
    }
}
