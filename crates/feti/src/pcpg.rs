//! Preconditioned (here: projected) conjugate gradient for the FETI dual
//! problem (paper Eq. 7, ref. \[10\]).
//!
//! Solves `P F P λ̄ = P (d − F λ₀)` over the subspace `Gᵀλ = const`, where
//! `P = I − G(GᵀG)⁻¹Gᵀ` is the natural coarse projector. Written against
//! closures so it is testable with toy operators and reusable for every dual
//! operator implementation.

use sc_dense::dot;

/// Convergence statistics.
#[derive(Clone, Copy, Debug)]
pub struct PcpgStats {
    /// Iterations performed (dual operator applications, excluding the
    /// initial residual).
    pub iterations: usize,
    /// Final relative projected residual.
    pub rel_residual: f64,
    /// True when the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Result of a PCPG run.
#[derive(Clone, Debug)]
pub struct PcpgResult {
    /// The dual solution `λ`.
    pub lambda: Vec<f64>,
    /// Convergence statistics.
    pub stats: PcpgStats,
}

/// Run PCPG (unpreconditioned: the preconditioner is the identity).
///
/// - `d` — dual right-hand side;
/// - `lambda0` — initial iterate satisfying the equality constraint
///   (`Gᵀλ₀ = e`);
/// - `apply_f` — the dual operator;
/// - `project` — application of `P` (must be idempotent and symmetric);
/// - `tol` — relative tolerance on `‖P r‖ / ‖P d‖`.
pub fn pcpg(
    d: &[f64],
    lambda0: Vec<f64>,
    apply_f: impl FnMut(&[f64]) -> Vec<f64>,
    project: impl FnMut(&[f64]) -> Vec<f64>,
    tol: f64,
    max_iter: usize,
) -> PcpgResult {
    pcpg_preconditioned(d, lambda0, apply_f, project, |w| w.to_vec(), tol, max_iter)
}

/// Run PCPG with a preconditioner `M⁻¹` (e.g. the lumped preconditioner
/// `Σ B̃ᵢ K_i B̃ᵢᵀ`). The search directions use `z = P M⁻¹ w`; with the
/// identity preconditioner this reduces exactly to [`pcpg`].
pub fn pcpg_preconditioned(
    d: &[f64],
    lambda0: Vec<f64>,
    mut apply_f: impl FnMut(&[f64]) -> Vec<f64>,
    mut project: impl FnMut(&[f64]) -> Vec<f64>,
    mut precond: impl FnMut(&[f64]) -> Vec<f64>,
    tol: f64,
    max_iter: usize,
) -> PcpgResult {
    let m = d.len();
    let mut lambda = lambda0;
    assert_eq!(lambda.len(), m);

    let norm0 = {
        let pd = project(d);
        dot(&pd, &pd).sqrt()
    };
    if norm0 == 0.0 {
        return PcpgResult {
            lambda,
            stats: PcpgStats {
                iterations: 0,
                rel_residual: 0.0,
                converged: true,
            },
        };
    }

    // w = P (d - F λ0), z = P M⁻¹ w, p = z
    let flam = apply_f(&lambda);
    let r: Vec<f64> = d.iter().zip(&flam).map(|(di, fi)| di - fi).collect();
    let mut w = project(&r);
    let mut z = project(&precond(&w));
    let mut p = z.clone();
    let mut wz = dot(&w, &z);
    let mut iterations = 0;
    let mut converged = dot(&w, &w).sqrt() / norm0 <= tol;

    while !converged && iterations < max_iter {
        let fp = apply_f(&p);
        let pfp = dot(&p, &fp);
        if pfp <= 0.0 || wz <= 0.0 {
            // operator or preconditioner not SPD on this subspace: stop
            break;
        }
        let gamma = wz / pfp;
        for i in 0..m {
            lambda[i] += gamma * p[i];
        }
        let pfp_vec = project(&fp);
        for i in 0..m {
            w[i] -= gamma * pfp_vec[i];
        }
        z = project(&precond(&w));
        let wz_new = dot(&w, &z);
        let beta = wz_new / wz;
        for i in 0..m {
            p[i] = z[i] + beta * p[i];
        }
        wz = wz_new;
        iterations += 1;
        converged = dot(&w, &w).sqrt() / norm0 <= tol;
    }

    PcpgResult {
        lambda,
        stats: PcpgStats {
            iterations,
            rel_residual: dot(&w, &w).sqrt() / norm0,
            converged,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dense::Mat;

    /// SPD toy operator with no constraint (projector = identity): PCPG must
    /// reduce to plain CG and solve the system.
    #[test]
    fn solves_spd_system_without_projector() {
        let n = 12;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let d: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            1e-12,
            200,
        );
        assert!(res.stats.converged);
        let mut check = vec![0.0; n];
        sc_dense::gemv(1.0, a.as_ref(), &res.lambda, 0.0, &mut check);
        for i in 0..n {
            assert!((check[i] - d[i]).abs() < 1e-9);
        }
    }

    /// With a rank-1 projector the iterate stays in the constraint subspace.
    #[test]
    fn respects_projection_subspace() {
        let n = 8;
        // P projects out the all-ones direction
        let ones = vec![1.0; n];
        let project = |x: &[f64]| {
            let c = dot(x, &ones) / n as f64;
            x.iter().map(|xi| xi - c).collect::<Vec<_>>()
        };
        let a = Mat::from_fn(n, n, |i, j| if i == j { 2.0 } else { 0.1 });
        let d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            project,
            1e-10,
            100,
        );
        // λ - λ0 must be orthogonal to ones
        let c = dot(&res.lambda, &ones);
        assert!(c.abs() < 1e-8, "left the constraint subspace: {c}");
        assert!(res.stats.converged);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let res = pcpg(
            &[0.0; 5],
            vec![0.0; 5],
            |_| panic!("operator must not be called"),
            |x| x.to_vec(),
            1e-10,
            10,
        );
        assert_eq!(res.stats.iterations, 0);
        assert!(res.stats.converged);
    }

    #[test]
    fn iteration_budget_respected() {
        let n = 30;
        let a = Mat::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    1.0 + i as f64 * 100.0
                } else {
                    0.5
                }
            },
        );
        let d = vec![1.0; n];
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            1e-16,
            3,
        );
        assert_eq!(res.stats.iterations, 3);
        assert!(!res.stats.converged);
    }
}
