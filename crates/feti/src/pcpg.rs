//! Preconditioned (here: projected) conjugate gradient for the FETI dual
//! problem (paper Eq. 7, ref. \[10\]).
//!
//! Solves `P F P λ̄ = P (d − F λ₀)` over the subspace `Gᵀλ = const`, where
//! `P = I − G(GᵀG)⁻¹Gᵀ` is the natural coarse projector. Written against
//! closures so it is testable with toy operators and reusable for every dual
//! operator implementation.
//!
//! The iteration is generic over the working precision
//! ([`pcpg_preconditioned_of`]): the mixed-precision refinement outer loop
//! runs the inner solve at `f32` while tolerances, statistics, and breakdown
//! diagnostics stay `f64`. The [`pcpg`] / [`pcpg_preconditioned`] wrappers
//! pin `f64` and are bitwise identical to the historical implementation.

use sc_dense::{dot, Scalar};

/// Why PCPG stopped before reaching the tolerance or exhausting the
/// iteration budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PcpgBreakdown {
    /// `pᵀFp ≤ 0`: the dual operator is not positive definite on the
    /// current search direction (carries the offending curvature).
    IndefiniteOperator {
        /// The non-positive curvature `pᵀFp`.
        pfp: f64,
    },
    /// `wᵀz ≤ 0`: the preconditioned residual inner product lost
    /// positivity — the preconditioner is not SPD on this subspace.
    IndefinitePreconditioner {
        /// The non-positive inner product `wᵀz`.
        wz: f64,
    },
}

/// Convergence statistics.
#[derive(Clone, Copy, Debug)]
pub struct PcpgStats {
    /// CG iterations performed (λ updates; residual-confirmation operator
    /// applications are not counted).
    pub iterations: usize,
    /// Total dual-operator applications, **including** the initial residual,
    /// convergence confirmations, and the final honest-exit recomputation —
    /// the realized per-subdomain apply count the hybrid cost model's
    /// expected-iteration input is compared against.
    pub operator_applications: usize,
    /// Final relative projected residual `‖P(d − Fλ)‖ / ‖Pd‖`, **freshly
    /// recomputed** from λ — never the recursively updated residual, which
    /// can drift from the truth in finite precision.
    pub rel_residual: f64,
    /// True when [`PcpgStats::rel_residual`] — the recomputed true
    /// residual, not the recursive estimate — reached the tolerance.
    pub converged: bool,
    /// `Some` when the iteration stopped on a loss of positivity instead of
    /// converging or running out of budget.
    pub breakdown: Option<PcpgBreakdown>,
    /// Simulated seconds the dual-operator applications spent **waiting** on
    /// inter-node boundary exchanges that local work could not hide
    /// (0 everywhere except the multi-node backend, which stamps it after
    /// the solve). The iteration itself never touches this field.
    pub exchange_stall_seconds: f64,
}

/// Result of a PCPG run at working precision `S`. The [`PcpgResult`] alias
/// pins the historical `f64`.
#[derive(Clone, Debug)]
pub struct PcpgResultOf<S = f64> {
    /// The dual solution `λ`, at the iteration's working precision.
    pub lambda: Vec<S>,
    /// Convergence statistics (always reported in `f64`).
    pub stats: PcpgStats,
}

/// Result of an `f64` PCPG run.
pub type PcpgResult = PcpgResultOf<f64>;

/// Run PCPG (unpreconditioned: the preconditioner is the identity).
///
/// - `d` — dual right-hand side;
/// - `lambda0` — initial iterate satisfying the equality constraint
///   (`Gᵀλ₀ = e`);
/// - `apply_f` — the dual operator;
/// - `project` — application of `P` (must be idempotent and symmetric);
/// - `tol` — relative tolerance on `‖P r‖ / ‖P d‖`.
pub fn pcpg(
    d: &[f64],
    lambda0: Vec<f64>,
    apply_f: impl FnMut(&[f64]) -> Vec<f64>,
    project: impl FnMut(&[f64]) -> Vec<f64>,
    tol: f64,
    max_iter: usize,
) -> PcpgResult {
    pcpg_preconditioned(d, lambda0, apply_f, project, |w| w.to_vec(), tol, max_iter)
}

/// Run PCPG with a preconditioner `M⁻¹` (e.g. the lumped preconditioner
/// `Σ B̃ᵢ K_i B̃ᵢᵀ`). The search directions use `z = P M⁻¹ w`; with the
/// identity preconditioner this reduces exactly to [`pcpg`].
pub fn pcpg_preconditioned(
    d: &[f64],
    lambda0: Vec<f64>,
    apply_f: impl FnMut(&[f64]) -> Vec<f64>,
    project: impl FnMut(&[f64]) -> Vec<f64>,
    precond: impl FnMut(&[f64]) -> Vec<f64>,
    tol: f64,
    max_iter: usize,
) -> PcpgResult {
    pcpg_preconditioned_of::<f64>(d, lambda0, apply_f, project, precond, tol, max_iter)
}

/// Run PCPG at working precision `S` (the generic engine behind
/// [`pcpg_preconditioned`]). All vector arithmetic — dots, axpys, the
/// recursive residual — happens in `S`; the tolerance test and the reported
/// statistics are `f64` (widening from `f32` is exact, and monomorphized at
/// `f64` this is bitwise the historical iteration). The mixed-precision
/// refinement loop drives this at `S = f32` for its inner correction
/// solves.
pub fn pcpg_preconditioned_of<S: Scalar>(
    d: &[S],
    lambda0: Vec<S>,
    mut apply_f: impl FnMut(&[S]) -> Vec<S>,
    mut project: impl FnMut(&[S]) -> Vec<S>,
    mut precond: impl FnMut(&[S]) -> Vec<S>,
    tol: f64,
    max_iter: usize,
) -> PcpgResultOf<S> {
    let m = d.len();
    let mut lambda = lambda0;
    assert_eq!(lambda.len(), m);

    // instrument the operator: every application counted, wherever it
    // happens (search directions, confirmations, honest-exit residual)
    let mut applications = 0usize;
    let mut apply_f = |p: &[S]| {
        applications += 1;
        apply_f(p)
    };

    let norm0 = {
        let pd = project(d);
        dot(&pd, &pd).sqrt()
    };
    // sc-analyze: allow(float-eq)
    if norm0.to_f64() == 0.0 {
        return PcpgResultOf {
            lambda,
            stats: PcpgStats {
                iterations: 0,
                operator_applications: 0,
                rel_residual: 0.0,
                converged: true,
                breakdown: None,
                exchange_stall_seconds: 0.0,
            },
        };
    }

    // the true projected residual P(d − Fλ) — the single definition behind
    // the initial residual, the convergence confirmation, and the final
    // reported statistic
    fn true_residual<S: Scalar>(
        d: &[S],
        lambda: &[S],
        apply_f: &mut impl FnMut(&[S]) -> Vec<S>,
        project: &mut impl FnMut(&[S]) -> Vec<S>,
    ) -> Vec<S> {
        let flam = apply_f(lambda);
        let r: Vec<S> = d.iter().zip(&flam).map(|(&di, &fi)| di - fi).collect();
        project(&r)
    }

    // w = P (d - F λ0), z = P M⁻¹ w, p = z
    let mut w = true_residual(d, &lambda, &mut apply_f, &mut project);
    // whether `w` currently equals the freshly computed P(d − Fλ) (the
    // recursive update below makes it an estimate that can drift)
    let mut w_is_true = true;
    let mut z = project(&precond(&w));
    let mut p = z.clone();
    let mut wz = dot(&w, &z);
    let mut iterations = 0;
    let mut breakdown = None;

    loop {
        if (dot(&w, &w).sqrt() / norm0).to_f64() <= tol {
            if w_is_true {
                break; // confirmed on the true residual
            }
            // the recursive residual claims convergence: confirm against
            // the freshly recomputed true projected residual
            w = true_residual(d, &lambda, &mut apply_f, &mut project);
            w_is_true = true;
            if (dot(&w, &w).sqrt() / norm0).to_f64() <= tol {
                break;
            }
            // false convergence — restart the recursion from the truth
            z = project(&precond(&w));
            p = z.clone();
            wz = dot(&w, &z);
            continue;
        }
        if iterations >= max_iter {
            break;
        }
        let fp = apply_f(&p);
        let pfp = dot(&p, &fp);
        if pfp.to_f64() <= 0.0 {
            breakdown = Some(PcpgBreakdown::IndefiniteOperator { pfp: pfp.to_f64() });
            break;
        }
        if wz.to_f64() <= 0.0 {
            breakdown = Some(PcpgBreakdown::IndefinitePreconditioner { wz: wz.to_f64() });
            break;
        }
        let gamma = wz / pfp;
        for i in 0..m {
            lambda[i] += gamma * p[i];
        }
        let pfp_vec = project(&fp);
        for i in 0..m {
            w[i] -= gamma * pfp_vec[i];
        }
        w_is_true = false;
        z = project(&precond(&w));
        let wz_new = dot(&w, &z);
        let beta = wz_new / wz;
        for i in 0..m {
            p[i] = z[i] + beta * p[i];
        }
        wz = wz_new;
        iterations += 1;
    }

    // honest exit report: whatever stopped the loop, the returned residual
    // is the true P(d − Fλ) of the final iterate
    if !w_is_true {
        w = true_residual(d, &lambda, &mut apply_f, &mut project);
    }
    let rel_residual = (dot(&w, &w).sqrt() / norm0).to_f64();
    PcpgResultOf {
        lambda,
        stats: PcpgStats {
            iterations,
            operator_applications: applications,
            rel_residual,
            converged: rel_residual <= tol,
            breakdown,
            exchange_stall_seconds: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dense::Mat;

    /// SPD toy operator with no constraint (projector = identity): PCPG must
    /// reduce to plain CG and solve the system.
    #[test]
    fn solves_spd_system_without_projector() {
        let n = 12;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let d: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            1e-12,
            200,
        );
        assert!(res.stats.converged);
        // one application per iteration, plus the initial residual and any
        // confirmation/honest-exit recomputations
        assert!(
            res.stats.operator_applications > res.stats.iterations,
            "applications {} must exceed iterations {}",
            res.stats.operator_applications,
            res.stats.iterations
        );
        let mut check = vec![0.0; n];
        sc_dense::gemv(1.0, a.as_ref(), &res.lambda, 0.0, &mut check);
        for i in 0..n {
            assert!((check[i] - d[i]).abs() < 1e-9);
        }
    }

    /// With a rank-1 projector the iterate stays in the constraint subspace.
    #[test]
    fn respects_projection_subspace() {
        let n = 8;
        // P projects out the all-ones direction
        let ones = vec![1.0; n];
        let project = |x: &[f64]| {
            let c = dot(x, &ones) / n as f64;
            x.iter().map(|xi| xi - c).collect::<Vec<_>>()
        };
        let a = Mat::from_fn(n, n, |i, j| if i == j { 2.0 } else { 0.1 });
        let d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            project,
            1e-10,
            100,
        );
        // λ - λ0 must be orthogonal to ones
        let c = dot(&res.lambda, &ones);
        assert!(c.abs() < 1e-8, "left the constraint subspace: {c}");
        assert!(res.stats.converged);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let res = pcpg(
            &[0.0; 5],
            vec![0.0; 5],
            |_| panic!("operator must not be called"),
            |x| x.to_vec(),
            1e-10,
            10,
        );
        assert_eq!(res.stats.iterations, 0);
        assert!(res.stats.converged);
    }

    #[test]
    fn indefinite_operator_reports_breakdown_not_convergence() {
        // F = -I is negative definite: pᵀFp < 0 on the first direction. The
        // old code silently broke out and left the stats ambiguous; now the
        // breakdown is named and convergence is judged on the true residual.
        let n = 6;
        let d = vec![1.0; n];
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| p.iter().map(|x| -x).collect(),
            |x| x.to_vec(),
            1e-10,
            50,
        );
        assert_eq!(res.stats.iterations, 0);
        assert!(!res.stats.converged);
        match res.stats.breakdown {
            Some(PcpgBreakdown::IndefiniteOperator { pfp }) => assert!(pfp < 0.0),
            other => panic!("expected operator breakdown, got {other:?}"),
        }
        // true residual of the untouched iterate: ‖d‖/‖d‖ = 1
        assert!((res.stats.rel_residual - 1.0).abs() < 1e-15);
    }

    #[test]
    fn indefinite_preconditioner_reports_breakdown() {
        let n = 6;
        let a = Mat::from_fn(n, n, |i, j| if i == j { 2.0 } else { 0.0 });
        let d = vec![1.0; n];
        let res = pcpg_preconditioned(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            |w| w.iter().map(|x| -x).collect(), // M⁻¹ = -I: wᵀz < 0
            1e-10,
            50,
        );
        assert!(!res.stats.converged);
        match res.stats.breakdown {
            Some(PcpgBreakdown::IndefinitePreconditioner { wz }) => assert!(wz < 0.0),
            other => panic!("expected preconditioner breakdown, got {other:?}"),
        }
    }

    #[test]
    fn reported_residual_is_the_true_projected_residual() {
        let n = 10;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            1e-11,
            100,
        );
        assert!(res.stats.converged);
        assert!(res.stats.breakdown.is_none());
        // recompute ‖d − Aλ‖ / ‖d‖ externally: must equal the reported stat
        let mut alam = vec![0.0; n];
        sc_dense::gemv(1.0, a.as_ref(), &res.lambda, 0.0, &mut alam);
        let num = d
            .iter()
            .zip(&alam)
            .map(|(di, fi)| (di - fi) * (di - fi))
            .sum::<f64>()
            .sqrt();
        let rel = num / d.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            (rel - res.stats.rel_residual).abs() <= 1e-14,
            "reported {} vs recomputed {rel}",
            res.stats.rel_residual
        );
    }

    #[test]
    fn false_convergence_of_the_recursive_residual_is_caught() {
        use std::cell::Cell;
        // An operator that injects one large deterministic error into its
        // 3rd application: the recursive residual update absorbs the bad
        // vector and can claim convergence while the true residual is far
        // off. The confirmation step must catch it and keep iterating until
        // λ genuinely solves the system.
        let n = 8;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let d: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).sin()).collect();
        let calls = Cell::new(0usize);
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                calls.set(calls.get() + 1);
                if calls.get() == 3 {
                    out[0] += 10.0; // corrupt exactly one application
                }
                out
            },
            |x| x.to_vec(),
            1e-10,
            200,
        );
        assert!(res.stats.converged, "must recover from the corrupted apply");
        let mut alam = vec![0.0; n];
        sc_dense::gemv(1.0, a.as_ref(), &res.lambda, 0.0, &mut alam);
        for i in 0..n {
            assert!(
                (alam[i] - d[i]).abs() < 1e-8,
                "dof {i}: residual {} — convergence was claimed falsely",
                alam[i] - d[i]
            );
        }
    }

    #[test]
    fn iteration_budget_respected() {
        let n = 30;
        let a = Mat::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    1.0 + i as f64 * 100.0
                } else {
                    0.5
                }
            },
        );
        let d = vec![1.0; n];
        let res = pcpg(
            &d,
            vec![0.0; n],
            |p| {
                let mut out = vec![0.0; n];
                sc_dense::gemv(1.0, a.as_ref(), p, 0.0, &mut out);
                out
            },
            |x| x.to_vec(),
            1e-16,
            3,
        );
        assert_eq!(res.stats.iterations, 3);
        assert!(!res.stats.converged);
    }
}
