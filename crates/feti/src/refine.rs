//! Mixed-precision iterative refinement of the FETI dual solve.
//!
//! Under [`Precision::F32Refined`](sc_core::Precision) the solver runs the
//! inner PCPG correction solves at `f32` — against demoted copies of the
//! explicit operators and factor bundles, halving the per-iteration memory
//! traffic — while the outer loop accumulates the iterate and measures the
//! true projected residual `P(d − Fλ)` in `f64`. Each outer iteration
//! solves `F δ = r` at `f32` to a modest tolerance and applies the
//! correction `λ ← λ + δ` in `f64`; the loop stops when the `f64` residual
//! reaches the configured target or the refinement budget is exhausted (in
//! which case the solver falls back to the full-`f64` PCPG so a hard
//! workload degrades to the historical path instead of returning a bad λ).

use crate::dualop::{BoundaryMapOf, SubdomainFactors};
use sc_dense::MatOf;
use sc_sparse::{csc_lower_solve, csc_lower_t_solve, CscOf};
use std::sync::Mutex;

/// Inner (`f32`) PCPG relative tolerance: roughly `√ε_f32`, the point past
/// which a single-precision recursion stops making progress; each outer
/// iteration therefore knocks ~4 orders of magnitude off the `f64`
/// residual.
pub const INNER_TOL: f64 = 1e-4;

/// Demoted (`f32`) copy of one subdomain's factor bundle: the Cholesky
/// factor `L` cast into single precision plus the boundary map of the
/// demoted `B̃ᵀ`. Applies the implicit dual operator (Eq. 11) entirely at
/// `f32` — scatter, two triangular solves, gather.
pub struct DemotedFactors {
    /// `L` in permuted index space, cast from the `f64` factor.
    l: CscOf<f32>,
    /// Gather/scatter map of the demoted `B̃ᵀ` (rows already in factor
    /// space, like the `f64` bundle's).
    map: BoundaryMapOf<f32>,
}

impl DemotedFactors {
    /// Demote one `f64` factor bundle.
    pub fn of(factors: &SubdomainFactors) -> Self {
        DemotedFactors {
            l: factors.chol.factor_csc().cast::<f32>(),
            map: BoundaryMapOf::of(&factors.bt_perm.cast::<f32>()),
        }
    }

    /// `out = B̃ (L⁻ᵀ(L⁻¹(B̃ᵀ p)))` at `f32`, with a caller-owned scratch
    /// vector (mirrors `apply_implicit_with`).
    pub fn apply_with(&self, p: &[f32], out: &mut [f32], scratch: &mut Vec<f32>) {
        let n = self.map.n_rows();
        scratch.clear();
        scratch.resize(n, 0.0);
        self.map.scatter(p, scratch);
        csc_lower_solve(&self.l, scratch);
        csc_lower_t_solve(&self.l, scratch);
        self.map.gather(scratch, out);
    }
}

/// One subdomain's `f32` dual-operator slot, demoted once at build time and
/// reused across every inner PCPG iteration.
// Variant sizes differ by design, like DualOperator/OpSlot: one slot per
// subdomain in a short Vec.
#[allow(clippy::large_enum_variant)]
pub(crate) enum F32Op {
    /// Dense `F̃ᵢ` demoted from the assembled explicit operator; applied
    /// with an `f32` GEMV.
    Explicit(MatOf<f32>),
    /// Implicit application through the demoted factor bundle. Carries the
    /// subdomain's dof-space scratch vector (uncontended mutex: `apply_f32`
    /// runs one task per subdomain).
    Implicit {
        factors: DemotedFactors,
        scratch: Mutex<Vec<f32>>,
    },
}

impl F32Op {
    pub(crate) fn implicit(factors: &SubdomainFactors) -> Self {
        F32Op::Implicit {
            factors: DemotedFactors::of(factors),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Apply: `out = F̃ᵢ p` at `f32`.
    pub(crate) fn apply(&self, p: &[f32], out: &mut [f32]) {
        match self {
            F32Op::Explicit(f) => sc_dense::gemv(1.0f32, f.as_ref(), p, 0.0f32, out),
            F32Op::Implicit { factors, scratch } => {
                let mut t = scratch.lock().expect("f32 scratch mutex poisoned");
                factors.apply_with(p, out, &mut t);
            }
        }
    }
}

/// Statistics of one mixed-precision refinement run, attached to
/// [`FetiSolution`](crate::FetiSolution) when the solver was built with
/// [`Precision::F32Refined`](sc_core::Precision).
#[derive(Clone, Copy, Debug)]
pub struct RefinementStats {
    /// Outer refinement iterations performed (`f64` residual + correction
    /// updates; the initial residual check counts as iteration zero).
    pub outer_iterations: usize,
    /// Total inner (`f32`) PCPG iterations across all correction solves.
    pub inner_iterations: usize,
    /// Final true relative projected residual `‖P(d − Fλ)‖ / ‖Pd‖`,
    /// measured in `f64`.
    pub rel_residual: f64,
    /// Whether the `f64` residual reached the configured refinement target.
    pub converged: bool,
    /// True when refinement stalled or exhausted its budget and the solver
    /// re-solved with the full-`f64` PCPG path.
    pub fell_back: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualop::{apply_implicit, DualOperator};
    use sc_core::ScConfig;
    use sc_factor::Engine;
    use sc_fem::{Gluing, HeatProblem};
    use sc_order::Ordering;

    #[test]
    fn demoted_apply_tracks_the_f64_implicit_operator() {
        let prob = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        for sd in &prob.subdomains {
            let factors =
                SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
            let demoted = DemotedFactors::of(&factors);
            let m = sd.n_lambda();
            let p: Vec<f64> = (0..m).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
            let p32: Vec<f32> = p.iter().map(|&v| v as f32).collect(); // sc-analyze: allow(precision-discipline)
            let mut q64 = vec![0.0f64; m];
            apply_implicit(&factors, &p, &mut q64);
            let mut q32 = vec![0.0f32; m];
            let mut scratch = Vec::new();
            demoted.apply_with(&p32, &mut q32, &mut scratch);
            let scale = q64.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
            for i in 0..m {
                assert!(
                    (f64::from(q32[i]) - q64[i]).abs() < 1e-3 * scale,
                    "subdomain apply drift at {i}: {} vs {}",
                    q32[i],
                    q64[i]
                );
            }
        }
    }

    #[test]
    fn explicit_f32_op_matches_demoted_dense_operator() {
        let prob = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let sd = &prob.subdomains[0];
        let factors = SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
        let expl = DualOperator::explicit_cpu(&factors, &ScConfig::optimized(false, false));
        let f32_mat = expl.explicit_matrix().unwrap().cast::<f32>();
        let op = F32Op::Explicit(f32_mat.clone());
        let m = sd.n_lambda();
        let p: Vec<f32> = (0..m).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let mut got = vec![0.0f32; m];
        op.apply(&p, &mut got);
        let mut want = vec![0.0f32; m];
        sc_dense::gemv(1.0f32, f32_mat.as_ref(), &p, 0.0f32, &mut want);
        assert_eq!(got, want, "explicit f32 slot must be a plain f32 GEMV");
    }
}
