//! Analytic regularization by fixing nodes (paper §2.2, ref. \[11\]).
//!
//! For a floating heat-transfer subdomain, `ker K = span{1}` and
//! `K_reg = K + ρ e_f e_fᵀ` (one fixing node `f`) is SPD with the property
//! `K K_reg⁻¹ K = K`, i.e. `K_reg⁻¹` is a valid generalized inverse `K⁺` on
//! `range(K)` — exactly what the dual operator needs.

use sc_sparse::{Coo, Csc};

/// Regularize a singular SPSD matrix by adding `rho` to the diagonal entry of
/// the fixing dof. `rho` defaults to the largest diagonal entry when `None`.
/// SPD matrices (no kernel) are returned unchanged.
pub fn regularize_fixing_node(
    k: &Csc,
    kernel: Option<&[f64]>,
    fixing_dof: usize,
    rho: Option<f64>,
) -> Csc {
    if kernel.is_none() {
        return k.clone();
    }
    let n = k.ncols();
    let rho = rho.unwrap_or_else(|| (0..n).map(|j| k.get(j, j)).fold(0.0f64, f64::max));
    // rebuild with the bumped diagonal (pattern may or may not contain the
    // entry already; COO summation handles both)
    let mut coo = Coo::with_capacity(n, n, k.nnz() + 1);
    for j in 0..n {
        let (rows, vals) = k.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            coo.push(i, j, v);
        }
    }
    coo.push(fixing_dof, fixing_dof, rho);
    coo.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_fem::{Gluing, HeatProblem};

    #[test]
    fn spd_matrix_unchanged() {
        let p = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let sd = &p.subdomains[0]; // touches Dirichlet => SPD
        let r = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
        assert_eq!(r, sd.k);
    }

    #[test]
    fn regularized_matrix_is_spd() {
        let p = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let sd = &p.subdomains[1]; // floating
        let r = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
        let mut d = r.to_dense();
        assert!(sc_dense::cholesky_in_place(d.as_mut()).is_ok());
    }

    #[test]
    fn generalized_inverse_property() {
        // K * K_reg^{-1} * K == K  (the fixing-node guarantee)
        let p = HeatProblem::build_2d(2, (2, 1), Gluing::Redundant);
        let sd = &p.subdomains[1];
        let n = sd.n_dofs();
        let kreg = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
        let mut l = kreg.to_dense();
        sc_dense::cholesky_in_place(l.as_mut()).unwrap();
        let kd = sd.k.to_dense();
        // columns of K, solved and re-multiplied
        for j in 0..n {
            let mut x: Vec<f64> = (0..n).map(|i| kd[(i, j)]).collect();
            sc_dense::cholesky_solve(l.as_ref(), &mut x);
            let mut kx = vec![0.0; n];
            sd.k.spmv(1.0, &x, 0.0, &mut kx);
            for i in 0..n {
                assert!(
                    (kx[i] - kd[(i, j)]).abs() < 1e-8,
                    "K K_reg^-1 K != K at ({i},{j}): {} vs {}",
                    kx[i],
                    kd[(i, j)]
                );
            }
        }
    }

    #[test]
    fn custom_rho_is_used() {
        let p = HeatProblem::build_2d(2, (2, 1), Gluing::Redundant);
        let sd = &p.subdomains[1];
        let r = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, Some(42.0));
        let diff = r.get(sd.fixing_dof, sd.fixing_dof) - sd.k.get(sd.fixing_dof, sd.fixing_dof);
        assert!((diff - 42.0).abs() < 1e-14);
    }
}
