//! Total-FETI solver built on the workspace substrates.
//!
//! Implements the method of the paper's §2: subdomain stiffness matrices are
//! regularized by fixing nodes ([`regularize`]), factorized per subdomain,
//! and the dual problem (Eq. 7) is solved by the projected conjugate gradient
//! method ([`pcpg`]) with the dual operator `F = B K⁺ Bᵀ` applied either
//! implicitly (sparse solves per iteration) or explicitly (dense `F̃ᵢ`
//! assembled up front by `sc-core`, on the CPU or the simulated GPU).
//!
//! [`approaches`] reproduces the paper's Table 2: the eight dual-operator
//! strategies compared in Figures 9 and 10, with their preprocessing
//! pipelines and per-iteration apply costs instrumented for the benches.

pub mod approaches;
pub mod compat;
pub mod dualop;
pub mod pcpg;
pub mod refine;
pub mod regularize;
pub mod solver;

pub use approaches::{
    measure_apply_cost, preprocess_approach, ApplyCost, DualOpApproach, PreparedDualOp,
    PreprocessReport,
};
pub use dualop::{
    apply_implicit, apply_implicit_with, BoundaryMap, BoundaryMapOf, DualOperator, SubdomainFactors,
};
pub use pcpg::{
    pcpg_preconditioned, pcpg_preconditioned_of, PcpgBreakdown, PcpgResult, PcpgResultOf, PcpgStats,
};
pub use refine::{DemotedFactors, RefinementStats};
pub use regularize::regularize_fixing_node;
pub use solver::{
    DualMode, FetiOptions, FetiSolution, FetiSolver, FetiSolverBuilder, FormulationChoice,
    HybridOptions, HybridReport, Preconditioner,
};
