//! The local dual operator `F̃ᵢ = B̃ᵢ K⁺ᵢ B̃ᵢᵀ` (paper Eq. 9) in its implicit
//! and explicit forms.

use crate::regularize::regularize_fixing_node;
use sc_core::{assemble_sc, CpuExec, GpuExec, ScConfig};
use sc_dense::{Mat, Scalar};
use sc_factor::{Engine, SparseCholesky};
use sc_fem::Subdomain;
use sc_gpu::GpuKernels;
use sc_sparse::{binned_gather, BinnedPlan, Csc, CscOf};

/// Hoisted gather/scatter index map of `B̃ᵢᵀ`, flattened column-major:
/// column `j` of the gluing block owns `rows[offsets[j]..offsets[j+1]]` with
/// matching `coeffs` (the ±1 boundary signs, one entry per column on
/// redundant gluing). Precomputed **once** per subdomain so the implicit
/// dual-operator application resolves its boundary permutation by direct
/// indexed loops instead of re-walking the sparse matrix machinery every
/// PCPG iteration. Generic over the working precision: the mixed-precision
/// refinement keeps a demoted `f32` copy next to the `f64` one
/// ([`BoundaryMap`]).
pub struct BoundaryMapOf<S = f64> {
    /// Per-column offsets into `rows`/`coeffs` (`n_lambda + 1` entries).
    offsets: Vec<usize>,
    /// Factor-space row of each stored coefficient.
    rows: Vec<usize>,
    /// Coefficient values (the B̃ signs).
    coeffs: Vec<S>,
    /// Factor dimension (length of the dof-space work vector).
    n_rows: usize,
    /// Column-length binning of the gather side (see
    /// [`sc_sparse::binned`]): the per-multiplier dot products run in
    /// fixed-trip-count length classes instead of one irregular loop. The
    /// scatter side accumulates into shared dof slots and must stay
    /// column-ordered, so it does not use the plan.
    plan: BinnedPlan,
}

/// The `f64` boundary map (the historical default working precision).
pub type BoundaryMap = BoundaryMapOf<f64>;

impl<S: Scalar> BoundaryMapOf<S> {
    /// Extract the map from the row-permuted gluing block.
    pub fn of(bt_perm: &CscOf<S>) -> Self {
        let offsets = bt_perm.col_ptr().to_vec();
        let plan = BinnedPlan::from_offsets(&offsets);
        BoundaryMapOf {
            offsets,
            rows: bt_perm.row_idx().to_vec(),
            coeffs: bt_perm.values().to_vec(),
            n_rows: bt_perm.nrows(),
            plan,
        }
    }

    /// Local multiplier count.
    pub fn n_lambda(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Factor dimension.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Scatter `t = B̃ᵀ p̃` into the (pre-zeroed) dof-space vector `t` —
    /// bitwise identical to `bt_perm.spmv(1.0, p, 0.0, t)`.
    pub fn scatter(&self, p: &[S], t: &mut [S]) {
        debug_assert_eq!(p.len(), self.n_lambda());
        debug_assert_eq!(t.len(), self.n_rows);
        for (j, &pj) in p.iter().enumerate() {
            // sc-analyze: allow(float-eq)
            if pj != S::ZERO {
                for k in self.offsets[j]..self.offsets[j + 1] {
                    t[self.rows[k]] += pj * self.coeffs[k];
                }
            }
        }
    }

    /// Gather `out = B̃ t` from the dof-space vector — bitwise identical to
    /// `bt_perm.spmv_t(1.0, t, 0.0, out)`. Runs through the hoisted
    /// length-binned schedule ([`sc_sparse::binned_gather`]); per-multiplier
    /// accumulation order is unchanged, only the multiplier visit order.
    pub fn gather(&self, t: &[S], out: &mut [S]) {
        debug_assert_eq!(out.len(), self.n_lambda());
        debug_assert_eq!(t.len(), self.n_rows);
        binned_gather(&self.plan, &self.offsets, &self.rows, &self.coeffs, t, out);
    }
}

/// Per-subdomain factorization bundle: the regularized factor, `B̃ᵢᵀ`
/// pre-permuted into factor row space, and the hoisted boundary index map
/// the implicit application reuses across PCPG iterations.
pub struct SubdomainFactors {
    /// Factorized `K_reg`.
    pub chol: SparseCholesky,
    /// `B̃ᵢᵀ` with rows in the factor's permuted space.
    pub bt_perm: Csc,
    /// Gather/scatter map of `bt_perm`, hoisted out of the per-iteration
    /// apply path.
    pub map: BoundaryMap,
}

impl SubdomainFactors {
    /// Regularize and factorize one subdomain.
    pub fn build(sd: &Subdomain, engine: Engine, ordering: sc_order::Ordering) -> Self {
        let kreg = regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
        let perm = ordering.compute(&kreg);
        let chol = SparseCholesky::factorize_with_perm(&kreg, perm, engine)
            .expect("regularized subdomain matrix must be SPD");
        let bt_perm = sd.bt.permute_rows(chol.perm());
        let map = BoundaryMap::of(&bt_perm);
        SubdomainFactors { chol, bt_perm, map }
    }

    /// `K⁺ v` in original dof space.
    pub fn solve_kplus(&self, v: &[f64]) -> Vec<f64> {
        self.chol.solve(v)
    }
}

/// Implicit application `q̃ = B̃ (L⁻ᵀ(L⁻¹(B̃ᵀ p̃)))` from a factor bundle
/// (paper Eq. 11) — shared by [`DualOperator::Implicit`] and the solver's
/// borrowing implicit path. Allocates its own work vector; inside an
/// iteration loop use [`apply_implicit_with`] to reuse one.
pub fn apply_implicit(factors: &SubdomainFactors, p: &[f64], out: &mut [f64]) {
    let mut scratch = Vec::new();
    apply_implicit_with(factors, p, out, &mut scratch);
}

/// [`apply_implicit`] with a caller-owned scratch vector (resized to the
/// factor dimension, contents overwritten): the boundary permutation lives
/// in the hoisted [`BoundaryMap`] and the dof-space work vector is reused,
/// so the per-iteration cost is the two triangular solves plus the indexed
/// gather/scatter — no allocation, no sparse-matrix traversal machinery.
pub fn apply_implicit_with(
    factors: &SubdomainFactors,
    p: &[f64],
    out: &mut [f64],
    scratch: &mut Vec<f64>,
) {
    let n = factors.map.n_rows();
    scratch.clear();
    scratch.resize(n, 0.0);
    factors.map.scatter(p, scratch);
    factors.chol.solve_fwd_permuted(scratch);
    factors.chol.solve_bwd_permuted(scratch);
    factors.map.gather(scratch, out);
}

/// A ready-to-apply local dual operator.
// Variant sizes differ by design: Implicit carries the whole factor bundle,
// the explicit variants just a dense matrix. Operators live in a short Vec
// (one per subdomain), so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum DualOperator {
    /// Implicit: `q̃ = B̃ (L⁻ᵀ(L⁻¹(B̃ᵀ p̃)))` — SpMV + two sparse solves per
    /// application (paper Eq. 11).
    Implicit(SubdomainFactors),
    /// Explicit: dense `F̃ᵢ`, applied with GEMV on the CPU (Eq. 12).
    ExplicitCpu(Mat),
    /// Explicit: dense `F̃ᵢ` resident on the simulated GPU; applications
    /// advance the stream timeline.
    ExplicitGpu {
        /// The assembled dense local dual operator.
        f: Mat,
        /// Kernel set of the stream the matrix lives on.
        kernels: GpuKernels,
    },
}

impl DualOperator {
    /// Build the implicit operator.
    pub fn implicit(factors: SubdomainFactors) -> Self {
        DualOperator::Implicit(factors)
    }

    /// Assemble the explicit operator on the CPU with the given config.
    pub fn explicit_cpu(factors: &SubdomainFactors, cfg: &ScConfig) -> Self {
        let l = factors.chol.factor_csc();
        let f = assemble_sc(&mut CpuExec, &l, &factors.bt_perm, cfg);
        DualOperator::ExplicitCpu(f)
    }

    /// Assemble the explicit operator on the simulated GPU (the factor is
    /// uploaded first, mirroring the original algorithm's H2D copy).
    pub fn explicit_gpu(factors: &SubdomainFactors, cfg: &ScConfig, kernels: GpuKernels) -> Self {
        let l = factors.chol.factor_csc();
        kernels.upload_csc(&l);
        kernels.upload_csc(&factors.bt_perm);
        let mut exec = GpuExec::new(&kernels);
        let f = assemble_sc(&mut exec, &l, &factors.bt_perm, cfg);
        kernels.download_bytes(0); // result stays on device; placeholder sync
        DualOperator::ExplicitGpu { f, kernels }
    }

    /// Apply: `out = F̃ᵢ p̃` (local dual vector sizes).
    pub fn apply(&self, p: &[f64], out: &mut [f64]) {
        match self {
            DualOperator::Implicit(factors) => apply_implicit(factors, p, out),
            DualOperator::ExplicitCpu(f) => {
                sc_dense::gemv(1.0, f.as_ref(), p, 0.0, out);
            }
            DualOperator::ExplicitGpu { f, kernels } => {
                kernels.gemv(1.0, f.as_ref(), p, 0.0, out);
            }
        }
    }

    /// The dense matrix, when explicit.
    pub fn explicit_matrix(&self) -> Option<&Mat> {
        match self {
            DualOperator::Implicit(_) => None,
            DualOperator::ExplicitCpu(f) => Some(f),
            DualOperator::ExplicitGpu { f, .. } => Some(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::FactorStorage;
    use sc_fem::{Gluing, HeatProblem};
    use sc_gpu::{Device, DeviceSpec};
    use sc_order::Ordering;

    fn factors_for(sd: &sc_fem::Subdomain) -> SubdomainFactors {
        SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection)
    }

    #[test]
    fn implicit_and_explicit_agree() {
        let prob = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        for sd in &prob.subdomains {
            let factors = factors_for(sd);
            let m = sd.n_lambda();
            let expl = DualOperator::explicit_cpu(&factors, &ScConfig::optimized(false, false));
            let impl_op = DualOperator::implicit(factors_for(sd));
            let p: Vec<f64> = (0..m).map(|i| ((i * 31 % 7) as f64) - 3.0).collect();
            let mut q1 = vec![0.0; m];
            let mut q2 = vec![0.0; m];
            impl_op.apply(&p, &mut q1);
            expl.apply(&p, &mut q2);
            for i in 0..m {
                assert!(
                    (q1[i] - q2[i]).abs() < 1e-8,
                    "implicit vs explicit mismatch at {i}: {} vs {}",
                    q1[i],
                    q2[i]
                );
            }
        }
    }

    #[test]
    fn gpu_explicit_matches_cpu_explicit() {
        let prob = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let sd = &prob.subdomains[1];
        let factors = factors_for(sd);
        let cfg = ScConfig::optimized(true, false);
        let cpu = DualOperator::explicit_cpu(&factors, &cfg);
        let dev = Device::new(DeviceSpec::a100(), 1);
        let gpu = DualOperator::explicit_gpu(&factors, &cfg, GpuKernels::new(dev.stream(0)));
        assert_eq!(
            cpu.explicit_matrix().unwrap(),
            gpu.explicit_matrix().unwrap()
        );
        assert!(dev.synchronize() > 0.0);
    }

    #[test]
    fn hoisted_map_is_bitwise_the_sparse_formulation() {
        // the BoundaryMap fast path must reproduce the original
        // spmv → solve → spmv_t pipeline bit for bit, in 2D and 3D, for
        // every subdomain shape (corner, edge, interior)
        let problems = [
            HeatProblem::build_2d(4, (3, 2), Gluing::Redundant),
            HeatProblem::build_3d(2, (2, 2, 1), Gluing::Redundant),
        ];
        for prob in &problems {
            for sd in &prob.subdomains {
                let factors = factors_for(sd);
                let m = sd.n_lambda();
                let n = sd.n_dofs();
                let p: Vec<f64> = (0..m).map(|i| ((i * 17 % 13) as f64) - 6.0).collect();
                // reference: the pre-hoist formulation through the Csc
                let mut t = vec![0.0; n];
                factors.bt_perm.spmv(1.0, &p, 0.0, &mut t);
                factors.chol.solve_fwd_permuted(&mut t);
                factors.chol.solve_bwd_permuted(&mut t);
                let mut reference = vec![0.0; m];
                factors.bt_perm.spmv_t(1.0, &t, 0.0, &mut reference);

                let mut fast = vec![0.0; m];
                apply_implicit(&factors, &p, &mut fast);
                assert_eq!(fast, reference, "hoisted map diverged");

                // scratch reuse across applications must not leak state
                let mut scratch = vec![7.0; 3];
                let mut again = vec![42.0; m];
                apply_implicit_with(&factors, &p, &mut again, &mut scratch);
                assert_eq!(again, reference, "scratch reuse diverged");
                assert_eq!(scratch.len(), n);
            }
        }
    }

    #[test]
    fn explicit_matrix_is_symmetric_psd() {
        let prob = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let sd = &prob.subdomains[0];
        let factors = factors_for(sd);
        let op = DualOperator::explicit_cpu(&factors, &ScConfig::original(FactorStorage::Sparse));
        let f = op.explicit_matrix().unwrap();
        let m = f.nrows();
        for i in 0..m {
            assert!(f[(i, i)] > 0.0, "diagonal must be positive");
            for j in 0..m {
                assert!((f[(i, j)] - f[(j, i)]).abs() < 1e-10);
            }
        }
    }
}
