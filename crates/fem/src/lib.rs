//! Finite element substrate: the synthetic heat-transfer problems the paper
//! evaluates on (§4: "a heat transfer problem ... a square or cube domain
//! uniformly discretized into triangles or tetrahedra"), decomposed into a
//! regular grid of subdomains with Lagrange-multiplier gluing.
//!
//! The output of [`HeatProblem::build_2d`] / [`HeatProblem::build_3d`] is the
//! exact input the FETI machinery needs per subdomain `i`:
//!
//! - `K_i` — local stiffness (SPD when the subdomain touches the Dirichlet
//!   boundary, singular SPSD with a constant-vector kernel otherwise);
//! - `f_i` — local load;
//! - `B̃ᵢᵀ` — the local gluing block (`n_i × m_i`, entries ±1), columns being
//!   the Lagrange multipliers connected to the subdomain;
//! - `R_i` — kernel basis (the constant vector for floating heat-transfer
//!   subdomains);
//! - a fixing node for the analytic regularization of §2.2.
//!
//! A small-problem global assembly ([`HeatProblem::assemble_global`]) backs
//! the correctness tests: the FETI solution must match the direct solve.

pub mod element;
pub mod problem;

pub use element::{tet_stiffness, tri_stiffness};
pub use problem::{Gluing, HeatProblem, Subdomain};
