//! P1 (linear) element stiffness matrices for the heat (Laplace) operator.

/// Stiffness of a linear triangle with vertices `p0, p1, p2` (unit
/// conductivity): `K[i][j] = area * ∇φᵢ · ∇φⱼ`.
pub fn tri_stiffness(p: [[f64; 2]; 3]) -> [[f64; 3]; 3] {
    // Edge vectors opposite each vertex; ∇φᵢ = rot90(e_i) / (2A)
    let e = [
        [p[2][0] - p[1][0], p[2][1] - p[1][1]],
        [p[0][0] - p[2][0], p[0][1] - p[2][1]],
        [p[1][0] - p[0][0], p[1][1] - p[0][1]],
    ];
    let double_area = e[1][0] * e[2][1] - e[1][1] * e[2][0];
    let area = 0.5 * double_area.abs();
    assert!(area > 0.0, "degenerate triangle");
    let mut k = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            // rot90(a)·rot90(b) = a·b
            let dot = e[i][0] * e[j][0] + e[i][1] * e[j][1];
            k[i][j] = dot / (4.0 * area);
        }
    }
    k
}

/// Stiffness of a linear tetrahedron with vertices `p0..p3` (unit
/// conductivity): `K[i][j] = vol * ∇φᵢ · ∇φⱼ`.
pub fn tet_stiffness(p: [[f64; 3]; 4]) -> [[f64; 4]; 4] {
    // Gradients of barycentric coordinates from the inverse Jacobian.
    let d = [
        [p[1][0] - p[0][0], p[1][1] - p[0][1], p[1][2] - p[0][2]],
        [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]],
        [p[3][0] - p[0][0], p[3][1] - p[0][1], p[3][2] - p[0][2]],
    ];
    let det = d[0][0] * (d[1][1] * d[2][2] - d[1][2] * d[2][1])
        - d[0][1] * (d[1][0] * d[2][2] - d[1][2] * d[2][0])
        + d[0][2] * (d[1][0] * d[2][1] - d[1][1] * d[2][0]);
    let vol = det.abs() / 6.0;
    assert!(vol > 0.0, "degenerate tetrahedron");
    // inverse transpose of J (rows = gradients of φ1..φ3 w.r.t. x)
    let inv_det = 1.0 / det;
    let cof =
        |r1: usize, c1: usize, r2: usize, c2: usize| d[r1][c1] * d[r2][c2] - d[r1][c2] * d[r2][c1];
    // grad φ_{i+1} = row i of J^{-T}
    let g1 = [
        cof(1, 1, 2, 2) * inv_det,
        -cof(1, 0, 2, 2) * inv_det,
        cof(1, 0, 2, 1) * inv_det,
    ];
    let g2 = [
        -cof(0, 1, 2, 2) * inv_det,
        cof(0, 0, 2, 2) * inv_det,
        -cof(0, 0, 2, 1) * inv_det,
    ];
    let g3 = [
        cof(0, 1, 1, 2) * inv_det,
        -cof(0, 0, 1, 2) * inv_det,
        cof(0, 0, 1, 1) * inv_det,
    ];
    let g0 = [
        -(g1[0] + g2[0] + g3[0]),
        -(g1[1] + g2[1] + g3[1]),
        -(g1[2] + g2[2] + g3[2]),
    ];
    let g = [g0, g1, g2, g3];
    let mut k = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            k[i][j] = vol * (g[i][0] * g[j][0] + g[i][1] * g[j][1] + g[i][2] * g[j][2]);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_rows_sum_to_zero() {
        // constant functions are in the kernel of the Laplace stiffness
        let k = tri_stiffness([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]);
        for row in &k {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn unit_right_triangle_known_values() {
        // classical result for the unit right triangle:
        // K = 1/2 * [[2,-1,-1],[-1,1,0],[-1,0,1]]
        let k = tri_stiffness([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]);
        let expect = [[1.0, -0.5, -0.5], [-0.5, 0.5, 0.0], [-0.5, 0.0, 0.5]];
        for i in 0..3 {
            for j in 0..3 {
                assert!((k[i][j] - expect[i][j]).abs() < 1e-14, "({i},{j})");
            }
        }
    }

    #[test]
    fn tri_is_symmetric_and_scale_invariant() {
        let k1 = tri_stiffness([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]]);
        let k2 = tri_stiffness([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((k1[i][j] - k1[j][i]).abs() < 1e-14);
                // Laplace stiffness in 2D is scale invariant
                assert!((k1[i][j] - k2[i][j]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn tet_rows_sum_to_zero_and_symmetric() {
        let k = tet_stiffness([
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]);
        for (i, row) in k.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-13);
            for (j, &kij) in row.iter().enumerate() {
                assert!((kij - k[j][i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn tet_diag_positive() {
        let k = tet_stiffness([
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [1.0, 1.0, 1.0],
        ]);
        for (i, row) in k.iter().enumerate() {
            assert!(row[i] > 0.0);
        }
    }

    #[test]
    fn tet_permutation_consistency() {
        // swapping two vertices permutes rows/cols identically
        let p = [
            [0.1, 0.0, 0.0],
            [1.0, 0.2, 0.0],
            [0.0, 1.0, 0.3],
            [0.0, 0.1, 1.0],
        ];
        let k = tet_stiffness(p);
        let q = [p[1], p[0], p[2], p[3]];
        let kq = tet_stiffness(q);
        let map = [1usize, 0, 2, 3];
        for i in 0..4 {
            for j in 0..4 {
                assert!((kq[i][j] - k[map[i]][map[j]]).abs() < 1e-12);
            }
        }
    }
}
