//! Decomposed heat-transfer problems on uniform square/cube meshes.
//!
//! The domain `[0,1]^d` is discretized into `c·s` cells per axis (`c` cells
//! per subdomain, `s` subdomains per axis), each square cell split into two
//! triangles, each cube cell into six Kuhn tetrahedra. Temperature is fixed
//! (`u = 0`) on the `x = 0` face and a unit heat source drives the interior,
//! so subdomains touching `x = 0` are SPD and all others float with the
//! constant-vector kernel — the exact setting of the paper's evaluation.

use crate::element::{tet_stiffness, tri_stiffness};
use rayon::prelude::*;
use sc_sparse::{Coo, Csc};

/// How shared interface nodes are glued with Lagrange multipliers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gluing {
    /// Every pair of subdomains sharing a node gets a multiplier (the
    /// ESPRESO default; more multipliers, better-conditioned dual).
    Redundant,
    /// Consecutive chain over the subdomains sharing a node (minimal set).
    Chain,
}

/// Everything the FETI machinery needs about one subdomain.
#[derive(Clone, Debug)]
pub struct Subdomain {
    /// Local stiffness (full symmetric CSC over local free dofs).
    pub k: Csc,
    /// Local load vector.
    pub f: Vec<f64>,
    /// Local gluing block `B̃ᵢᵀ` (`n_i × m_i`, entries ±1; every column has
    /// exactly one entry — a multiplier touches one local dof).
    pub bt: Csc,
    /// Global multiplier index of each local multiplier (column of `bt`).
    pub lambda_ids: Vec<usize>,
    /// Kernel basis of `k` (`None` for SPD subdomains; the constant vector
    /// for floating heat-transfer subdomains).
    pub kernel: Option<Vec<f64>>,
    /// Local dof -> global free dof.
    pub l2g: Vec<usize>,
    /// Local dof used by the fixing-node regularization (meaningful only
    /// when `kernel` is `Some`).
    pub fixing_dof: usize,
}

impl Subdomain {
    /// Number of local dofs.
    pub fn n_dofs(&self) -> usize {
        self.f.len()
    }

    /// Number of local Lagrange multipliers.
    pub fn n_lambda(&self) -> usize {
        self.lambda_ids.len()
    }
}

/// A decomposed heat-transfer benchmark problem.
#[derive(Clone, Debug)]
pub struct HeatProblem {
    /// Spatial dimension (2 or 3).
    pub dim: usize,
    /// Cells per subdomain per axis.
    pub cells_per_sub: usize,
    /// Subdomain counts per axis (`z = 1` in 2D).
    pub subs: (usize, usize, usize),
    /// All subdomains, ordered `x`-fastest.
    pub subdomains: Vec<Subdomain>,
    /// Total number of Lagrange multipliers.
    pub n_lambda: usize,
    /// Total number of global free dofs.
    pub n_free: usize,
}

impl HeatProblem {
    /// Build a 2D problem: `(c·sx) × (c·sy)` cells, `sx·sy` subdomains.
    pub fn build_2d(c: usize, (sx, sy): (usize, usize), gluing: Gluing) -> Self {
        build(2, c, (sx, sy, 1), gluing)
    }

    /// Build a 3D problem: `(c·sx) × (c·sy) × (c·sz)` cells.
    pub fn build_3d(c: usize, (sx, sy, sz): (usize, usize, usize), gluing: Gluing) -> Self {
        build(3, c, (sx, sy, sz), gluing)
    }

    /// Assemble the undecomposed global system (free dofs only) for
    /// verification. Only sensible for small problems.
    pub fn assemble_global(&self) -> (Csc, Vec<f64>) {
        assemble_global(self)
    }

    /// Dofs per subdomain in the interior (the paper's "number of unknowns
    /// per subdomain").
    pub fn dofs_per_subdomain(&self) -> usize {
        let c = self.cells_per_sub;
        (c + 1).pow(self.dim as u32)
    }

    /// Map a per-subdomain solution back to a global vector (averaging is
    /// unnecessary: a converged FETI solution is conforming; later writes
    /// overwrite identical values).
    pub fn gather_global(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let mut u = vec![0.0; self.n_free];
        for (sd, ul) in self.subdomains.iter().zip(locals) {
            for (ldof, &g) in sd.l2g.iter().enumerate() {
                u[g] = ul[ldof];
            }
        }
        u
    }
}

/// Mesh geometry helper shared by the subdomain and global assemblers.
struct Geometry {
    dim: usize,
    c: usize,
    subs: (usize, usize, usize),
}

impl Geometry {
    fn nodes_per_axis(&self) -> (usize, usize, usize) {
        let (sx, sy, sz) = self.subs;
        (
            self.c * sx + 1,
            self.c * sy + 1,
            if self.dim == 3 { self.c * sz + 1 } else { 1 },
        )
    }

    fn spacing(&self) -> (f64, f64, f64) {
        let (sx, sy, sz) = self.subs;
        (
            1.0 / (self.c * sx) as f64, // sc-analyze: allow(precision-discipline)
            1.0 / (self.c * sy) as f64, // sc-analyze: allow(precision-discipline)
            if self.dim == 3 {
                1.0 / (self.c * sz) as f64 // sc-analyze: allow(precision-discipline)
            } else {
                1.0
            },
        )
    }

    /// Global free-dof index of a global node, `None` on the Dirichlet face
    /// `gx == 0`.
    fn global_dof(&self, gx: usize, gy: usize, gz: usize) -> Option<usize> {
        if gx == 0 {
            return None;
        }
        let (nx, ny, _) = self.nodes_per_axis();
        let free_x = nx - 1;
        Some((gz * ny + gy) * free_x + (gx - 1))
    }

    fn n_free(&self) -> usize {
        let (nx, ny, nz) = self.nodes_per_axis();
        (nx - 1) * ny * nz
    }

    /// Local dof index of local node `(lx, ly, lz)` within subdomain
    /// `(si, ..)`; `None` when the node is Dirichlet (only possible for
    /// `si == 0`, `lx == 0`).
    fn local_dof(&self, si: usize, lx: usize, ly: usize, lz: usize) -> Option<usize> {
        let c = self.c;
        if si == 0 {
            if lx == 0 {
                return None;
            }
            Some((lz * (c + 1) + ly) * c + (lx - 1))
        } else {
            Some((lz * (c + 1) + ly) * (c + 1) + lx)
        }
    }

    fn local_ndofs(&self, si: usize) -> usize {
        let c = self.c;
        let per_x = if si == 0 { c } else { c + 1 };
        let z_nodes = if self.dim == 3 { c + 1 } else { 1 };
        per_x * (c + 1) * z_nodes
    }

    /// Subdomains (per axis) containing global coordinate `g`.
    fn axis_members(&self, g: usize, s: usize) -> [Option<usize>; 2] {
        let c = self.c;
        let q = g / c;
        if g.is_multiple_of(c) {
            if q == 0 {
                [Some(0), None]
            } else if q == s {
                [Some(s - 1), None]
            } else {
                [Some(q - 1), Some(q)]
            }
        } else {
            [Some(q), None]
        }
    }
}

fn build(dim: usize, c: usize, subs: (usize, usize, usize), gluing: Gluing) -> HeatProblem {
    assert!(c >= 1, "need at least one cell per subdomain");
    let (sx, sy, sz) = subs;
    assert!(sx >= 1 && sy >= 1 && sz >= 1);
    assert!(dim == 2 || dim == 3);
    if dim == 2 {
        assert_eq!(sz, 1, "2D problems have one subdomain layer in z");
    }
    let geo = Geometry { dim, c, subs };
    let nsub = sx * sy * sz;

    // --- per-subdomain stiffness/load (parallel: subdomains independent) ---
    let mut subdomains: Vec<Subdomain> = (0..nsub)
        .into_par_iter()
        .map(|sid| {
            let si = sid % sx;
            let sj = (sid / sx) % sy;
            let sk = sid / (sx * sy);
            assemble_subdomain(&geo, si, sj, sk)
        })
        .collect();

    // --- gluing (sequential: assigns global multiplier ids) ---
    let (nx, ny, nz) = geo.nodes_per_axis();
    let mut n_lambda = 0usize;
    // per-subdomain column builders: (local dof, sign) per multiplier
    let mut bt_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nsub];
    let mut lambda_ids: Vec<Vec<usize>> = vec![Vec::new(); nsub];
    let sub_id = |si: usize, sj: usize, sk: usize| (sk * sy + sj) * sx + si;

    let mut members: Vec<(usize, usize)> = Vec::new(); // (subdomain, local dof)
    for gz in 0..nz.max(1) {
        let mz = if dim == 3 {
            geo.axis_members(gz, sz)
        } else {
            [Some(0), None]
        };
        for gy in 0..ny {
            let my = geo.axis_members(gy, sy);
            for gx in 0..nx {
                if gx == 0 {
                    continue; // Dirichlet nodes are not glued
                }
                let mx = geo.axis_members(gx, sx);
                members.clear();
                for &ok in mx.iter() {
                    let Some(si) = ok else { continue };
                    for &oj in my.iter() {
                        let Some(sj) = oj else { continue };
                        for &okz in mz.iter() {
                            let Some(sk) = okz else { continue };
                            let (lx, ly, lz) = (gx - si * c, gy - sj * c, gz - sk * c);
                            let ldof = geo
                                .local_dof(si, lx, ly, lz)
                                .expect("glued node must be free");
                            members.push((sub_id(si, sj, sk), ldof));
                        }
                    }
                }
                if members.len() < 2 {
                    continue;
                }
                members.sort_unstable();
                let pairs: Vec<(usize, usize)> = match gluing {
                    Gluing::Redundant => {
                        let mut p = Vec::new();
                        for a in 0..members.len() {
                            for b in (a + 1)..members.len() {
                                p.push((a, b));
                            }
                        }
                        p
                    }
                    Gluing::Chain => (0..members.len() - 1).map(|a| (a, a + 1)).collect(),
                };
                for (a, b) in pairs {
                    let (sa, da) = members[a];
                    let (sb, db) = members[b];
                    bt_cols[sa].push((da, 1.0));
                    lambda_ids[sa].push(n_lambda);
                    bt_cols[sb].push((db, -1.0));
                    lambda_ids[sb].push(n_lambda);
                    n_lambda += 1;
                }
            }
        }
    }

    // finalize bt per subdomain (every column has exactly one entry)
    for (sd, (cols, ids)) in subdomains
        .iter_mut()
        .zip(bt_cols.into_iter().zip(lambda_ids))
    {
        let m = cols.len();
        let col_ptr: Vec<usize> = (0..=m).collect();
        let row_idx: Vec<usize> = cols.iter().map(|&(d, _)| d).collect();
        let values: Vec<f64> = cols.iter().map(|&(_, s)| s).collect();
        sd.bt = Csc::from_parts(sd.f.len(), m, col_ptr, row_idx, values);
        sd.lambda_ids = ids;
    }

    HeatProblem {
        dim,
        cells_per_sub: c,
        subs,
        subdomains,
        n_lambda,
        n_free: geo.n_free(),
    }
}

fn assemble_subdomain(geo: &Geometry, si: usize, sj: usize, sk: usize) -> Subdomain {
    let c = geo.c;
    let dim = geo.dim;
    let (hx, hy, hz) = geo.spacing();
    let ndofs = geo.local_ndofs(si);
    let mut coo = Coo::with_capacity(ndofs, ndofs, ndofs * if dim == 2 { 9 } else { 27 });
    let mut f = vec![0.0f64; ndofs];

    if dim == 2 {
        // two congruent triangle shapes per cell; stiffness is position
        // independent on a uniform mesh
        let k_lo = tri_stiffness([[0.0, 0.0], [hx, 0.0], [hx, hy]]);
        let k_hi = tri_stiffness([[0.0, 0.0], [hx, hy], [0.0, hy]]);
        let area_third = 0.5 * hx * hy / 3.0;
        for ay in 0..c {
            for ax in 0..c {
                let n = |dx: usize, dy: usize| (ax + dx, ay + dy, 0usize);
                let tri_lo = [n(0, 0), n(1, 0), n(1, 1)];
                let tri_hi = [n(0, 0), n(1, 1), n(0, 1)];
                for (tri, ke) in [(tri_lo, &k_lo), (tri_hi, &k_hi)] {
                    let dofs: Vec<Option<usize>> = tri
                        .iter()
                        .map(|&(lx, ly, lz)| geo.local_dof(si, lx, ly, lz))
                        .collect();
                    scatter_element(
                        &mut coo,
                        &mut f,
                        &dofs,
                        &ke[..].iter().map(|r| r.to_vec()).collect::<Vec<_>>(),
                        area_third,
                    );
                }
            }
        }
    } else {
        // Kuhn subdivision: six tets per cube, one per axis permutation
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let h = [hx, hy, hz];
        let vol_quarter = hx * hy * hz / 6.0 / 4.0;
        // per-shape stiffness precomputed (mesh uniform)
        let shapes: Vec<[[f64; 4]; 4]> = perms
            .iter()
            .map(|p| {
                let mut verts = [[0.0f64; 3]; 4];
                let mut cur = [0usize; 3];
                for (step, &axis) in p.iter().enumerate() {
                    cur[axis] += 1;
                    for d in 0..3 {
                        verts[step + 1][d] = cur[d] as f64 * h[d]; // sc-analyze: allow(precision-discipline)
                    }
                }
                tet_stiffness(verts)
            })
            .collect();
        for az in 0..c {
            for ay in 0..c {
                for ax in 0..c {
                    for (p, ke) in perms.iter().zip(&shapes) {
                        let mut cur = [ax, ay, az];
                        let mut nodes = [(ax, ay, az); 4];
                        for (step, &axis) in p.iter().enumerate() {
                            cur[axis] += 1;
                            nodes[step + 1] = (cur[0], cur[1], cur[2]);
                        }
                        let dofs: Vec<Option<usize>> = nodes
                            .iter()
                            .map(|&(lx, ly, lz)| geo.local_dof(si, lx, ly, lz))
                            .collect();
                        let ke_vec: Vec<Vec<f64>> = ke.iter().map(|r| r.to_vec()).collect();
                        scatter_element(&mut coo, &mut f, &dofs, &ke_vec, vol_quarter);
                    }
                }
            }
        }
    }

    // local -> global dof map
    let mut l2g = vec![0usize; ndofs];
    let zmax = if dim == 3 { c + 1 } else { 1 };
    for lz in 0..zmax {
        for ly in 0..=c {
            for lx in 0..=c {
                if let Some(ld) = geo.local_dof(si, lx, ly, lz) {
                    let g = geo
                        .global_dof(si * c + lx, sj * c + ly, sk * c + lz)
                        .expect("free local dof must map to free global dof");
                    l2g[ld] = g;
                }
            }
        }
    }

    let kernel = if si == 0 {
        None
    } else {
        Some(vec![1.0; ndofs])
    };
    // fixing node: subdomain center (free by construction for si > 0)
    let fixing_dof = geo
        .local_dof(
            si,
            c / 2 + usize::from(si == 0 && c / 2 == 0),
            c / 2,
            if dim == 3 { c / 2 } else { 0 },
        )
        .expect("fixing node must be free");

    Subdomain {
        k: coo.to_csc(),
        f,
        bt: Csc::zeros(ndofs, 0), // filled by the gluing pass
        lambda_ids: Vec::new(),
        kernel,
        l2g,
        fixing_dof,
    }
}

/// Scatter one element's stiffness and load into the local system, skipping
/// Dirichlet nodes (their value is 0, so no RHS correction is needed).
fn scatter_element(
    coo: &mut Coo,
    f: &mut [f64],
    dofs: &[Option<usize>],
    ke: &[Vec<f64>],
    load_per_node: f64,
) {
    for (i, &di) in dofs.iter().enumerate() {
        let Some(di) = di else { continue };
        f[di] += load_per_node;
        for (j, &dj) in dofs.iter().enumerate() {
            let Some(dj) = dj else { continue };
            coo.push(di, dj, ke[i][j]);
        }
    }
}

fn assemble_global(p: &HeatProblem) -> (Csc, Vec<f64>) {
    let geo = Geometry {
        dim: p.dim,
        c: p.cells_per_sub,
        subs: p.subs,
    };
    let n = geo.n_free();
    let mut coo = Coo::with_capacity(n, n, n * if p.dim == 2 { 9 } else { 27 });
    let mut f = vec![0.0f64; n];
    // reuse the subdomain assembly by scattering through l2g
    for sd in &p.subdomains {
        for (ld, &g) in sd.l2g.iter().enumerate() {
            f[g] += sd.f[ld];
        }
        for j in 0..sd.k.ncols() {
            let (rows, vals) = sd.k.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                coo.push(sd.l2g[i], sd.l2g[j], v);
            }
        }
    }
    (coo.to_csc(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_add_up_2d() {
        let p = HeatProblem::build_2d(4, (2, 2), Gluing::Redundant);
        assert_eq!(p.subdomains.len(), 4);
        assert_eq!(p.n_free, 8 * 9); // (nx-1) * ny with nx=ny=9
                                     // left subdomains lose the Dirichlet column
        assert_eq!(p.subdomains[0].n_dofs(), 4 * 5);
        assert_eq!(p.subdomains[1].n_dofs(), 5 * 5);
    }

    #[test]
    fn floating_subdomains_have_constant_kernel() {
        let p = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        assert!(p.subdomains[0].kernel.is_none(), "touches Dirichlet");
        let sd = &p.subdomains[1];
        let ker = sd.kernel.as_ref().expect("floating");
        // K * 1 = 0
        let mut y = vec![0.0; sd.n_dofs()];
        sd.k.spmv(1.0, ker, 0.0, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_subdomain_is_spd() {
        let p = HeatProblem::build_2d(3, (2, 1), Gluing::Redundant);
        let k = &p.subdomains[0].k;
        let sym = sc_factor_stub_analyze(k);
        assert!(sym, "K_0 must be positive definite");
    }

    // tiny local SPD check without depending on sc-factor (dev-dependency
    // cycles): dense Cholesky from sc-dense
    fn sc_factor_stub_analyze(k: &Csc) -> bool {
        let mut d = k.to_dense();
        sc_dense::cholesky_in_place(d.as_mut()).is_ok()
    }

    #[test]
    fn gluing_rows_sum_to_zero_on_conforming_vector() {
        // For u_i = restriction of a global vector, B u = Σ_i B̃ᵢ u_i = 0.
        let p = HeatProblem::build_2d(3, (3, 2), Gluing::Redundant);
        let u_glob: Vec<f64> = (0..p.n_free).map(|g| (g as f64 * 0.37).sin()).collect();
        let mut bu = vec![0.0; p.n_lambda];
        for sd in &p.subdomains {
            let ul: Vec<f64> = sd.l2g.iter().map(|&g| u_glob[g]).collect();
            // bu[lambda] += bt_colᵀ u
            let mut local = vec![0.0; sd.n_lambda()];
            sd.bt.spmv_t(1.0, &ul, 0.0, &mut local);
            for (ll, &gl) in sd.lambda_ids.iter().enumerate() {
                bu[gl] += local[ll];
            }
        }
        for v in bu {
            assert!(v.abs() < 1e-12, "non-conforming gluing row: {v}");
        }
    }

    #[test]
    fn chain_gluing_has_fewer_multipliers() {
        let pr = HeatProblem::build_2d(3, (3, 3), Gluing::Redundant);
        let pc = HeatProblem::build_2d(3, (3, 3), Gluing::Chain);
        assert!(pc.n_lambda < pr.n_lambda);
    }

    #[test]
    fn global_load_matches_subdomain_sum() {
        let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
        let (_, f) = p.assemble_global();
        // total load = ∫ 1 over the domain minus the Dirichlet strip ≈ area;
        // just check sum of local loads equals global sum through l2g
        let mut g = vec![0.0; p.n_free];
        for sd in &p.subdomains {
            for (ld, &gg) in sd.l2g.iter().enumerate() {
                g[gg] += sd.f[ld];
            }
        }
        for (a, b) in g.iter().zip(&f) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn global_system_is_spd_and_solvable_2d() {
        let p = HeatProblem::build_2d(3, (2, 2), Gluing::Redundant);
        let (k, f) = p.assemble_global();
        let mut d = k.to_dense();
        sc_dense::cholesky_in_place(d.as_mut()).unwrap();
        let mut x = f.clone();
        sc_dense::cholesky_solve(d.as_ref(), &mut x);
        // residual
        let mut r = vec![0.0; f.len()];
        k.spmv(1.0, &x, 0.0, &mut r);
        for (ri, fi) in r.iter().zip(&f) {
            assert!((ri - fi).abs() < 1e-9);
        }
        // temperature grows away from the Dirichlet face: all positive
        assert!(x.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn sizes_add_up_3d() {
        let p = HeatProblem::build_3d(2, (2, 1, 1), Gluing::Redundant);
        assert_eq!(p.subdomains.len(), 2);
        assert_eq!(p.subdomains[0].n_dofs(), 2 * 3 * 3);
        assert_eq!(p.subdomains[1].n_dofs(), 3 * 3 * 3);
        assert_eq!(p.n_free, 4 * 3 * 3);
    }

    #[test]
    fn kuhn_tets_tile_the_cube() {
        // volumes of the 6 tets must sum to the cell volume: check via the
        // load vector sum = total volume (each tet spreads vol/4 to 4 nodes)
        let p = HeatProblem::build_3d(2, (1, 1, 1), Gluing::Redundant);
        let total: f64 = p.subdomains[0].f.iter().sum();
        // domain volume is 1, but the Dirichlet plane nodes absorb part of
        // the load: recompute expected by counting free node contributions.
        // Instead check against global: sum of global f < 1 and > 0.5
        assert!(total > 0.5 && total < 1.0, "{total}");
    }

    #[test]
    fn floating_3d_kernel_is_constant() {
        let p = HeatProblem::build_3d(2, (2, 1, 1), Gluing::Redundant);
        let sd = &p.subdomains[1];
        let ker = sd.kernel.as_ref().unwrap();
        let mut y = vec![0.0; sd.n_dofs()];
        sd.k.spmv(1.0, ker, 0.0, &mut y);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn redundant_corner_node_gets_all_pairs() {
        // 2x2 subdomains in 2D: the center node is shared by 4 subdomains ->
        // 6 redundant multipliers for that node
        let p = HeatProblem::build_2d(2, (2, 2), Gluing::Redundant);
        // count lambdas that touch 2 subdomains each: total lambda columns
        // across subdomains = 2 * n_lambda
        let total_cols: usize = p.subdomains.iter().map(|s| s.n_lambda()).sum();
        assert_eq!(total_cols, 2 * p.n_lambda);
    }
}
