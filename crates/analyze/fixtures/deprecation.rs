// Fixture: seeded deprecation-budget violation.

#[allow(deprecated)] // line 3
pub fn uses_legacy() {}

#[allow(dead_code)]
pub fn unrelated_allow_ok() {}
