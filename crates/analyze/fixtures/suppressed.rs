// Fixture: every seeded violation carries an allow directive — the
// engine must report ZERO findings for this file. A directive covers
// its own line and the next, so it sits either trailing the violation
// or on the line directly above it.

pub fn unwrap_suppressed(x: Option<u8>) -> u8 {
    x.unwrap() // sc-analyze: allow(panic-surface)
}

pub fn float_suppressed(x: f64) -> bool {
    // sc-analyze: allow(float-eq)
    x == 0.5
}

pub fn units_suppressed(a_seconds: f64, b_bytes: f64) -> f64 {
    a_seconds + b_bytes // sc-analyze: allow(unit-discipline)
}

pub fn multi_suppressed(x: f64) -> bool {
    // sc-analyze: allow(panic-surface, float-eq)
    if x == 1.5 { panic!("suppressed on this line and the one above") } else { false }
}
