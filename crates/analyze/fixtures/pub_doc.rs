// Fixture: seeded pub-doc violations (analyzed under a core/src path).

pub fn undocumented_fn() {} // line 3

pub struct UndocumentedStruct; // line 5

/// Documented function.
pub fn documented_fn() {}

/// Documented struct, attribute between doc and item.
#[derive(Clone)]
pub struct DocumentedStruct;

pub(crate) fn restricted_ok() {}

pub enum NotATarget {
    A,
}
