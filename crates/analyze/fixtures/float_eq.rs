// Fixture: seeded float-eq violations.

pub fn literal_rhs(x: f64) -> bool {
    x == 0.5 // line 4
}

pub fn literal_lhs(x: f64) -> bool {
    1e-12 != x // line 8
}

pub fn negative_literal(x: f64) -> bool {
    x == -2.5 // line 12
}

pub fn int_compare_ok(x: u32) -> bool {
    x == 5
}

pub fn tolerance_ok(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}

pub fn bits_ok(x: f64, y: f64) -> bool {
    x.to_bits() == y.to_bits()
}
