// Fixture: violation-shaped text hidden where only a real lexer can see
// it is harmless — the engine must report ZERO findings for this file.

pub fn strings_hide_everything() -> &'static str {
    "x.unwrap() and panic!(\"boom\") and a == 0.5 and t_seconds + n_bytes"
}

pub fn raw_strings_too() -> &'static str {
    r#"y.expect("no") != 1.5 todo!()"#
}

// commented out: z.unwrap(); w == 2.5; panic!("never lexed as code")

/* block comment with a == 0.5 and .unwrap() inside
   /* nested: panic!("still trivia") */
   still trivia */

pub fn char_literals_are_not_lifetimes() -> (char, char) {
    ('\'', '"')
}

pub fn int_method_calls_are_not_floats(n: u64) -> u64 {
    // `1.max(...)` lexes as Int `.` Ident — no float-eq despite the `==`
    let m = 1.max(n);
    if m == 1 {
        m
    } else {
        n
    }
}
