// Fixture: seeded precision-discipline violations.

pub fn demotes_bare(x: f64) -> f32 {
    x as f32 // line 4
}

pub fn promotes_bare(x: f32) -> f64 {
    x as f64 // line 8
}

pub fn width_cast_unescaped(n: usize) -> f64 {
    n as f64 // line 12
}

pub fn width_cast_escaped(n: usize) -> f64 {
    n as f64 // sc-analyze: allow(precision-discipline)
}

pub fn sanctioned_conversions(x: f32) -> f64 {
    f64::from(x) + f64::from_bits(42)
}

pub fn integer_casts_ok(n: usize) -> u32 {
    n as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let x = 1.5f64;
        let _ = x as f32;
        let _ = (3usize + 4) as f64;
    }
}
