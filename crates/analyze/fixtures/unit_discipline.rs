// Fixture: seeded unit-discipline violations.

pub fn mixed_add(elapsed_seconds: f64, staged_bytes: f64) -> f64 {
    elapsed_seconds + staged_bytes // line 4
}

pub fn mixed_compare(total_flops: f64, moved_bytes: f64) -> bool {
    total_flops > moved_bytes // line 8
}

pub fn same_unit_ok(a_seconds: f64, b_seconds: f64) -> f64 {
    a_seconds - b_seconds
}

pub fn rate_ok(work_flops: f64, span_seconds: f64) -> f64 {
    work_flops / span_seconds
}

pub fn unsuffixed_ok(count: usize, limit: usize) -> bool {
    count > limit
}
