// Fixture: seeded panic-surface violations. Analyzed under a synthetic
// library path; expected findings are pinned by line in fixtures.rs.

pub fn unwrap_violation(x: Option<u8>) -> u8 {
    x.unwrap() // line 5: .unwrap()
}

pub fn short_expect_violation(x: Option<u8>) -> u8 {
    x.expect("no") // line 9: message too short
}

pub fn panic_violation(flag: bool) {
    if flag {
        panic!("seeded"); // line 14: panic!
    }
}

pub fn todo_violation() {
    todo!() // line 19: todo!
}

pub fn descriptive_expect_ok(x: Option<u8>) -> u8 {
    x.expect("fixture invariant: slot populated by caller")
}

pub fn format_expect_ok(x: Option<u8>, i: usize) -> u8 {
    x.expect(&format!("fixture slot {i} populated by caller"))
}

#[test]
fn test_region_ok() {
    let x: Option<u8> = None;
    let _ = x.unwrap_or(0);
    assert!(std::panic::catch_unwind(|| panic!("fine in tests")).is_err());
}
