//! Pin the lint engine against the committed fixture corpus: each rule
//! must fire on its seeded violations at the exact line, and the
//! suppressed / lexer-stress fixtures must come back clean.

use sc_analyze::analyze_source;
use sc_analyze::rules::default_rules;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Run the default rule set over a fixture under a synthetic
/// repository-relative path (which controls rule scoping).
fn findings(name: &str, rel: &str) -> Vec<(u32, String)> {
    analyze_source(rel, &fixture(name), &default_rules())
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn panic_surface_fixture_fires_at_seeded_lines() {
    let got = findings("panic_surface.rs", "crates/sparse/src/fixture.rs");
    let want = vec![
        (5, "panic-surface".to_string()),
        (9, "panic-surface".to_string()),
        (14, "panic-surface".to_string()),
        (19, "panic-surface".to_string()),
    ];
    assert_eq!(got, want, "panic-surface findings mismatch");
}

#[test]
fn float_eq_fixture_fires_at_seeded_lines() {
    let got = findings("float_eq.rs", "crates/fem/src/fixture.rs");
    let float_lines: Vec<u32> = got
        .iter()
        .filter(|(_, r)| r == "float-eq")
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(float_lines, vec![4, 8, 12], "float-eq findings mismatch");
}

#[test]
fn unit_discipline_fixture_fires_at_seeded_lines() {
    let got = findings("unit_discipline.rs", "crates/core/src/fixture.rs");
    let unit_lines: Vec<u32> = got
        .iter()
        .filter(|(_, r)| r == "unit-discipline")
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(unit_lines, vec![4, 8], "unit-discipline findings mismatch");
}

#[test]
fn deprecation_fixture_fires_at_seeded_line() {
    let got = findings("deprecation.rs", "crates/order/src/fixture.rs");
    assert_eq!(
        got,
        vec![(3, "deprecation-budget".to_string())],
        "deprecation-budget findings mismatch"
    );
    // the same file inside the allowlist is clean of deprecation findings
    // (pub-doc now applies to sc_feti, so filter to the rule under test)
    assert!(findings("deprecation.rs", "crates/feti/src/compat.rs")
        .iter()
        .all(|(_, r)| r != "deprecation-budget"));
}

#[test]
fn pub_doc_fixture_fires_at_seeded_lines() {
    let got = findings("pub_doc.rs", "crates/core/src/fixture.rs");
    let doc_lines: Vec<u32> = got
        .iter()
        .filter(|(_, r)| r == "pub-doc")
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(doc_lines, vec![3, 5], "pub-doc findings mismatch");
    // outside the documented crates (core/gpusim/dense/feti) the rule
    // does not apply
    assert!(findings("pub_doc.rs", "crates/sparse/src/fixture.rs")
        .iter()
        .all(|(_, r)| r != "pub-doc"));
}

#[test]
fn precision_discipline_fixture_fires_at_seeded_lines() {
    let got = findings("precision_discipline.rs", "crates/sparse/src/fixture.rs");
    let precision_lines: Vec<u32> = got
        .iter()
        .filter(|(_, r)| r == "precision-discipline")
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(
        precision_lines,
        vec![4, 8, 12],
        "precision-discipline findings mismatch"
    );
    // the Scalar impl module is the sanctioned cast site
    assert!(
        findings("precision_discipline.rs", "crates/dense/src/scalar.rs")
            .iter()
            .all(|(_, r)| r != "precision-discipline")
    );
    // non-library paths (tests, benches, shims) are out of scope
    assert!(
        findings("precision_discipline.rs", "tests/integration.rs").is_empty(),
        "integration tests are not library sources"
    );
}

#[test]
fn suppressed_fixture_is_clean() {
    // analyzed outside core/gpusim so pub-doc (which the fixture does
    // not exercise) stays out of the way
    let got = findings("suppressed.rs", "crates/sparse/src/fixture.rs");
    assert!(got.is_empty(), "suppressions ignored: {got:?}");
}

#[test]
fn tricky_lexer_fixture_is_clean() {
    let got = findings("tricky_lexer.rs", "crates/sparse/src/fixture.rs");
    assert!(
        got.is_empty(),
        "lexer misread strings/comments as code: {got:?}"
    );
}
