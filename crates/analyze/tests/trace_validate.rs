//! Mutation-test the trace sanitizer on synthetic traces: generate a
//! randomized hazard-free trace, assert it validates clean, then inject
//! one instance of each hazard class and assert the validator reports
//! exactly that class (with the right slot/stream in the diagnostic).

use proptest::prelude::*;
use sc_analyze::trace::{validate, TraceViolation};
use sc_gpu::{SimSpan, Trace, TraceEvent};

/// Deterministically build a hazard-free trace: slots allocated and
/// freed strictly in sequence (one live at a time), each slot touched
/// by `kernels_per_slot` back-to-back kernels on its home stream.
fn clean_trace(n_slots: usize, n_streams: usize, kernels_per_slot: usize) -> Trace {
    let mut events = Vec::new();
    let mut span_log = Vec::new();
    let mut t = 0.0f64;
    let mut max_bytes = 0usize;
    for slot in 0..n_slots {
        let bytes = 64 * (slot + 1);
        max_bytes = max_bytes.max(bytes);
        let stream = slot % n_streams;
        events.push(TraceEvent::Alloc { slot, bytes, at: t });
        for _ in 0..kernels_per_slot {
            let span = SimSpan {
                start: t,
                end: t + 1.0,
            };
            events.push(TraceEvent::Kernel {
                label: "synthetic",
                stream,
                span,
                reads: vec![slot],
                writes: vec![slot],
            });
            span_log.push((stream, span));
            t += 1.0;
        }
        events.push(TraceEvent::Free { slot, at: t });
    }
    Trace {
        arena_capacity: max_bytes,
        elem_bytes: 8,
        n_streams,
        concurrency: n_streams,
        events,
        span_log,
    }
}

fn has<F: Fn(&TraceViolation) -> bool>(violations: &[TraceViolation], pred: F) -> bool {
    violations.iter().any(pred)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unmutated_synthetic_traces_validate_clean(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
    ) {
        let t = clean_trace(n_slots, n_streams, kernels);
        let v = validate(&t);
        prop_assert!(v.is_empty(), "clean trace flagged: {v:?}");
    }

    #[test]
    fn dropped_free_is_reported_as_leak(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        let victim = pick % n_slots;
        t.events.retain(|e| !matches!(e, TraceEvent::Free { slot, .. } if *slot == victim));
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::LeakedSlot { slot, .. } if *slot == victim)),
            "leak of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn alloc_reordered_after_use_is_reported(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        let victim = pick % n_slots;
        // push the alloc past the slot's first kernel: the kernel now
        // touches memory that is not yet backed
        let first_use = t.events.iter().find_map(|e| match e {
            TraceEvent::Kernel { span, writes, .. } if writes.contains(&victim) => Some(span.start),
            _ => None,
        }).expect("every slot has a kernel in the synthetic trace");
        for e in &mut t.events {
            if let TraceEvent::Alloc { slot, at, .. } = e {
                if *slot == victim {
                    *at = first_use + 0.5;
                }
            }
        }
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::UseBeforeAlloc { slot, .. } if *slot == victim)),
            "use-before-alloc of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn early_free_is_reported_as_use_after_free(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        let victim = pick % n_slots;
        let alloc_at = t.events.iter().find_map(|e| match e {
            TraceEvent::Alloc { slot, at, .. } if *slot == victim => Some(*at),
            _ => None,
        }).expect("every slot allocates in the synthetic trace");
        // free immediately after half the first kernel: later kernel
        // activity on the slot now dangles
        for e in &mut t.events {
            if let TraceEvent::Free { slot, at } = e {
                if *slot == victim {
                    *at = alloc_at + 0.5;
                }
            }
        }
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::UseAfterFree { slot, .. } if *slot == victim)),
            "use-after-free of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn double_free_is_reported(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        let victim = pick % n_slots;
        let free_at = t.events.iter().find_map(|e| match e {
            TraceEvent::Free { slot, at } if *slot == victim => Some(*at),
            _ => None,
        }).expect("every slot frees in the synthetic trace");
        t.events.push(TraceEvent::Free { slot: victim, at: free_at + 1.0 });
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::DoubleFree { slot, .. } if *slot == victim)),
            "double free of slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn overlapping_spans_on_one_stream_are_reported(
        n_slots in 2usize..6,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        // single stream: every span shares it, so overlapping any two
        // consecutive spans breaks the serial-queue invariant
        let mut t = clean_trace(n_slots, 1, kernels);
        let n = t.span_log.len();
        prop_assert!(n >= 2);
        let i = 1 + pick % (n - 1);
        let prev_start = t.span_log[i - 1].1.start;
        t.span_log[i].1.start = prev_start;
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::StreamOverlap { stream: 0, .. })),
            "stream overlap not reported: {v:?}"
        );
    }

    #[test]
    fn cross_stream_race_is_reported(
        n_slots in 1usize..6,
        kernels in 2usize..4,
        pick in 0usize..64,
    ) {
        // start from a 1-stream trace so every kernel of a slot shares a
        // stream, then move one of the victim's kernels to stream 1 and
        // overlap it with the victim's previous kernel
        let mut t = clean_trace(n_slots, 1, kernels);
        t.n_streams = 2;
        let victim = pick % n_slots;
        let kernel_idxs: Vec<usize> = t.events.iter().enumerate().filter_map(|(i, e)| match e {
            TraceEvent::Kernel { writes, .. } if writes.contains(&victim) => Some(i),
            _ => None,
        }).collect();
        prop_assert!(kernel_idxs.len() >= 2);
        let target = kernel_idxs[1];
        let prev_span = match &t.events[kernel_idxs[0]] {
            TraceEvent::Kernel { span, .. } => *span,
            _ => unreachable!("filtered to kernels"),
        };
        if let TraceEvent::Kernel { stream, span, .. } = &mut t.events[target] {
            *stream = 1;
            *span = prev_span; // same interval, different stream, same slot
        }
        // mirror the move in the span log so the serial-queue check does
        // not fire instead of the race check
        let mut seen = 0usize;
        for (s, sp) in &mut t.span_log {
            if sp.start == prev_span.start && seen == 0 {
                seen = 1;
            } else if sp.start > prev_span.start && seen == 1 {
                // the moved kernel's old log entry: reassign
                *s = 1;
                *sp = prev_span;
                seen = 2;
            }
        }
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::CrossStreamHazard { slot, .. } if *slot == victim)),
            "cross-stream race on slot {victim} not reported: {v:?}"
        );
    }

    #[test]
    fn exchange_slid_under_a_dependent_kernel_is_reported(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
        pick in 0usize..64,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        let victim = pick % n_slots;
        let read_span = t.events.iter().find_map(|e| match e {
            TraceEvent::Kernel { span, reads, .. } if reads.contains(&victim) => Some(*span),
            _ => None,
        }).expect("every slot is read in the synthetic trace");
        // a well-ordered exchange (entirely before the reader) is clean
        let safe_span = SimSpan {
            start: read_span.start - 1.0,
            end: read_span.start,
        };
        t.events.push(TraceEvent::Exchange {
            label: "boundary",
            peer: 1,
            bytes: 64,
            span: safe_span,
            writes: vec![victim],
        });
        prop_assert!(validate(&t).is_empty(), "ordered exchange flagged");
        // mutate it to straddle the reader's span: must be reported with
        // the victim slot and the reader's label in the diagnostic
        if let Some(TraceEvent::Exchange { span, .. }) = t.events.last_mut() {
            *span = SimSpan {
                start: read_span.start + 0.25,
                end: read_span.end - 0.25,
            };
        }
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::ExchangeOverlap { slot, exchange: "boundary", peer: 1, .. }
                if *slot == victim)),
            "exchange overlap on slot {victim} not reported: {v:?}"
        );
        let msg = v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("\n");
        prop_assert!(
            msg.contains("exchange-overlap") && msg.contains("synthetic"),
            "diagnostic must name the hazard class and the dependent kernel: {msg}"
        );
    }

    #[test]
    fn arena_oversubscription_is_reported(
        n_slots in 1usize..6,
        n_streams in 1usize..4,
        kernels in 1usize..4,
    ) {
        let mut t = clean_trace(n_slots, n_streams, kernels);
        // capacity below the largest allocation: that alloc must trip
        let max_bytes = t.events.iter().filter_map(|e| match e {
            TraceEvent::Alloc { bytes, .. } => Some(*bytes),
            _ => None,
        }).max().expect("synthetic trace allocates");
        t.arena_capacity = max_bytes - 1;
        let v = validate(&t);
        prop_assert!(
            has(&v, |x| matches!(x, TraceViolation::ArenaOversubscribed { capacity, .. }
                if *capacity == max_bytes - 1)),
            "oversubscription not reported: {v:?}"
        );
    }
}
