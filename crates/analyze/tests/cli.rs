//! End-to-end CLI contract: `sc_analyze` exits 0 on a clean tree,
//! exits 1 with a `file:line: rule:` diagnostic on a seeded violation,
//! and exits 2 on usage errors.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sc_analyze"))
}

/// Build a throwaway tree under `target/` with one `src/` file.
fn temp_root(tag: &str, src_text: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("sc-analyze-cli-test")
        .join(tag);
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("create temp tree under target/");
    std::fs::write(src.join("lib.rs"), src_text).expect("write temp src/lib.rs");
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = temp_root(
        "clean",
        "/// Fine.\npub fn fine(x: Option<u8>) -> Option<u8> { x }\n",
    );
    let out = bin()
        .args(["--root", root.to_str().expect("utf-8 temp path")])
        .output()
        .expect("spawn sc_analyze");
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn seeded_violation_exits_one_with_location() {
    let root = temp_root(
        "dirty",
        "pub fn bad(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    let out = bin()
        .args(["--root", root.to_str().expect("utf-8 temp path")])
        .output()
        .expect("spawn sc_analyze");
    assert_eq!(out.status.code(), Some(1), "expected exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/lib.rs:2: panic-surface:"),
        "diagnostic must carry file:line: rule — got:\n{stdout}"
    );
}

#[test]
fn missing_root_operand_exits_two() {
    let out = bin().arg("--root").output().expect("spawn sc_analyze");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_argument_exits_two() {
    let out = bin().arg("--bogus").output().expect("spawn sc_analyze");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repository_tree_is_clean() {
    // The committed tree must satisfy its own lint gate — this is the
    // same invocation the `ci` bin's `analyze` stage runs.
    let out = bin().output().expect("spawn sc_analyze");
    assert!(
        out.status.success(),
        "sc_analyze found violations in the repository:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
