//! A minimal, dependency-free Rust lexer.
//!
//! The workspace is offline, so the lint engine cannot lean on `syn` or
//! `proc-macro2`; this hand-rolled scanner produces just enough structure
//! for lexical lint rules to be exact about what is *code*: string, char,
//! raw-string, and byte literals are single tokens (their contents can
//! never trip a rule), comments are preserved as trivia (suppression
//! directives and doc-comment checks need them), and multi-character
//! operators (`==`, `!=`, `::`, …) arrive pre-combined so rules match on
//! whole operators, not character soup.
//!
//! The lexer is intentionally *not* a validator — on malformed input it
//! produces a best-effort token stream instead of erroring, which is the
//! right trade for a linter that runs over a tree the compiler checks
//! anyway.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/oct/bin and tuple-index digits).
    Int,
    /// Float literal (`0.0`, `1e-12`, `2.5e3`, `1f64`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes
    /// included in [`Token::text`].
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Non-doc comment, line or block, markers included.
    Comment,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Punctuation / operator, multi-character operators pre-combined.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when the token is comment trivia (doc or not).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::Comment | TokKind::DocComment)
    }

    /// The contents of a string literal (text between the quotes, escapes
    /// unprocessed); `None` for non-string tokens.
    pub fn str_contents(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let open = self.text.find('"')?;
        let close = self.text.rfind('"')?;
        if close > open {
            Some(&self.text[open + 1..close])
        } else {
            Some("")
        }
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream (comments preserved as trivia).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |out: &mut Vec<Token>, kind: TokKind, text: String, line: u32| {
        out.push(Token { kind, text, line });
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // comments
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start = i;
            let start_line = line;
            if b[i + 1] == '/' {
                // `///` (but not `////`) and `//!` are doc comments
                let doc = (b.get(i + 2) == Some(&'/') && b.get(i + 3) != Some(&'/'))
                    || b.get(i + 2) == Some(&'!');
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                push(
                    &mut out,
                    if doc {
                        TokKind::DocComment
                    } else {
                        TokKind::Comment
                    },
                    text,
                    start_line,
                );
            } else {
                // block comment, nesting honored; `/**`/`/*!` are doc
                // (but the empty `/**/` is not)
                let doc = (b.get(i + 2) == Some(&'*') && b.get(i + 3) != Some(&'/'))
                    || b.get(i + 2) == Some(&'!');
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = b[start..i].iter().collect();
                push(
                    &mut out,
                    if doc {
                        TokKind::DocComment
                    } else {
                        TokKind::Comment
                    },
                    text,
                    start_line,
                );
            }
            continue;
        }

        // raw strings and byte-string prefixes: r"…", r#"…"#, br"…", b"…"
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut is_raw = false;
            if b[j] == 'b' && b.get(j + 1) == Some(&'r') {
                is_raw = true;
                j += 2;
            } else if b[j] == 'r' {
                is_raw = true;
                j += 1;
            } else {
                j += 1; // plain `b` prefix
            }
            if is_raw && (b.get(j) == Some(&'"') || b.get(j) == Some(&'#')) {
                // raw string: count hashes, then scan to `"` + same hashes
                let start = i;
                let start_line = line;
                let mut hashes = 0usize;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    j += 1;
                    'scan: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && b.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    let text: String = b[start..j.min(n)].iter().collect();
                    push(&mut out, TokKind::Str, text, start_line);
                    i = j;
                    continue;
                }
            } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                // byte string: fall through to the ordinary string scanner
                // by consuming the prefix here
                let start = i;
                let start_line = line;
                let mut j = i + 2;
                while j < n {
                    match b[j] {
                        '\\' => {
                            // a `\` before a newline is a string
                            // continuation — the newline still counts
                            if b.get(j + 1) == Some(&'\n') {
                                line += 1;
                            }
                            j += 2;
                        }
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        '"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let text: String = b[start..j.min(n)].iter().collect();
                push(&mut out, TokKind::Str, text, start_line);
                i = j;
                continue;
            } else if c == 'b' && b.get(i + 1) == Some(&'\'') {
                // byte char literal
                let start = i;
                let mut j = i + 2;
                if b.get(j) == Some(&'\\') {
                    j += 2;
                } else {
                    j += 1;
                }
                if b.get(j) == Some(&'\'') {
                    j += 1;
                }
                let text: String = b[start..j.min(n)].iter().collect();
                push(&mut out, TokKind::Char, text, line);
                i = j;
                continue;
            }
            // plain identifier starting with r/b — fall through
        }

        // string literal
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => {
                        // string-continuation escape: `\` + newline
                        if b.get(i + 1) == Some(&'\n') {
                            line += 1;
                        }
                        i += 2;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            push(&mut out, TokKind::Str, text, start_line);
            continue;
        }

        // char literal or lifetime
        if c == '\'' {
            let start = i;
            if b.get(i + 1) == Some(&'\\') {
                // escaped char literal: '\n', '\'', '\u{1F600}'
                i += 2;
                if b.get(i) == Some(&'u') && b.get(i + 1) == Some(&'{') {
                    i += 2;
                    while i < n && b[i] != '}' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    i += 1;
                }
                if b.get(i) == Some(&'\'') {
                    i += 1;
                }
                let text: String = b[start..i.min(n)].iter().collect();
                push(&mut out, TokKind::Char, text, line);
            } else if b
                .get(i + 1)
                .is_some_and(|&ch| is_ident_start(ch) || ch.is_ascii_digit())
                && b.get(i + 2) != Some(&'\'')
            {
                // lifetime: 'a, 'static, '_
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                push(&mut out, TokKind::Lifetime, text, line);
            } else {
                // single-char literal: 'a', '(', ' '
                i += 2;
                if b.get(i) == Some(&'\'') {
                    i += 1;
                }
                let text: String = b[start..i.min(n)].iter().collect();
                push(&mut out, TokKind::Char, text, line);
            }
            continue;
        }

        // numeric literal
        if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            if c == '0' && matches!(b.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
                // radix literal: consume alphanumerics and underscores
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // fractional part: a `.` followed by a digit (NOT `..` or a
                // method call like `1.max(2)`)
                if b.get(i) == Some(&'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // exponent
                if matches!(b.get(i), Some('e' | 'E')) {
                    let mut j = i + 1;
                    if matches!(b.get(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if b.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // suffix (u64, f64, …)
                let suffix_start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let suffix: String = b[suffix_start..i].iter().collect();
                if suffix.starts_with("f32") || suffix.starts_with("f64") {
                    float = true;
                }
            }
            let text: String = b[start..i].iter().collect();
            push(
                &mut out,
                if float { TokKind::Float } else { TokKind::Int },
                text,
                line,
            );
            continue;
        }

        // identifier / keyword
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            push(&mut out, TokKind::Ident, text, line);
            continue;
        }

        // punctuation, maximal munch
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= n && b[i..i + pl].iter().collect::<String>() == **p {
                push(&mut out, TokKind::Punct, (*p).to_string(), line);
                i += pl;
                matched = true;
                break;
            }
        }
        if !matched {
            push(&mut out, TokKind::Punct, c.to_string(), line);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn operators_are_combined() {
        let t = kinds("a == b != c <= d .. e ..= f :: g");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", "..", "..=", "::"]);
    }

    #[test]
    fn strings_swallow_operators_and_comments() {
        let t = kinds(r#"let s = "a == b // not a comment"; x"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("==")));
        assert!(!t.iter().any(|(k, _)| *k == TokKind::Comment));
        assert_eq!(t.last().unwrap().1, "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r###"let s = r#"panic!("inside")"#; y"###);
        let s = t.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert!(s.1.contains("panic!"));
        assert_eq!(t.last().unwrap().1, "y");
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\\n'; }");
        let lifetimes: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_detection() {
        assert_eq!(kinds("0.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-12")[0].0, TokKind::Float);
        assert_eq!(kinds("2.5e3")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0xFF")[0].0, TokKind::Int);
        // `1.max(2)` is an int method call, not a float
        let t = kinds("1.max(2)");
        assert_eq!(t[0].0, TokKind::Int);
        assert_eq!(t[1].1, ".");
        // `0..10` is a range of ints
        let t = kinds("0..10");
        assert_eq!(t[0].0, TokKind::Int);
        assert_eq!(t[1].1, "..");
        assert_eq!(t[2].0, TokKind::Int);
    }

    #[test]
    fn doc_comments_are_classified() {
        let t = lex("/// doc\n//! inner\n// plain\n//// not doc\n/** block doc */\n/* plain */ x");
        let kinds: Vec<TokKind> = t.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::Comment,
                TokKind::Comment,
                TokKind::DocComment,
                TokKind::Comment,
                TokKind::Ident
            ]
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let t = lex("a\n\"two\nlines\"\nb");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 4);
    }

    #[test]
    fn string_continuations_count_their_newline() {
        // `\` at end of line inside a string swallows the newline for
        // the *string value*, but the source line count must advance
        let t = lex("\"a \\\n   b\"\nc");
        assert_eq!(t[0].kind, TokKind::Str);
        assert_eq!(t[1].text, "c");
        assert_eq!(t[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].1, "x");
    }

    #[test]
    fn str_contents_strips_quotes() {
        let t = lex(r#""hello there""#);
        assert_eq!(t[0].str_contents(), Some("hello there"));
    }
}
