//! `sc_analyze` CLI: lint the repository tree and exit non-zero on any
//! diagnostic.
//!
//! Usage: `sc_analyze [--root <dir>]`
//!
//! With no arguments the workspace root is located relative to this
//! crate's manifest (`crates/analyze/../..`), so `cargo run -p
//! sc_analyze` works from anywhere inside the workspace.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: sc_analyze [--root <dir>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sc_analyze: `--root` requires a directory operand");
                    usage();
                }
            },
            "--help" | "-h" => {
                println!("usage: sc_analyze [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sc_analyze: unknown argument `{other}`");
                usage();
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let diags = match sc_analyze::analyze_tree(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sc_analyze: cannot analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("sc_analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("sc_analyze: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
