//! Kernel-trace hazard sanitizer.
//!
//! [`validate`] statically audits a [`sc_gpu::Trace`] — the recorded
//! arena events and kernel launches of one device's replayed schedule —
//! for the memory and ordering hazards the simulator itself cannot rule
//! out by construction:
//!
//! * **slot lifetime**: every kernel access to an arena slot must fall
//!   inside that slot's `[alloc, free]` interval; no double alloc/free;
//!   every alloc is eventually freed (the replay arena is a FIFO pool —
//!   a leaked slot would starve later admissions);
//! * **cross-stream races**: two kernels on *different* streams whose
//!   spans overlap in time may not touch the same slot unless both only
//!   read — an overlap with a writer is a RAW/WAR/WAW hazard with no
//!   ordering edge between the streams;
//! * **per-stream serialization**: kernels assigned to one stream must
//!   not overlap in time (a stream is a serial queue);
//! * **arena accounting**: live bytes may never exceed the arena
//!   capacity at any instant.
//! * **exchange ordering**: an inter-node transfer
//!   ([`TraceEvent::Exchange`]) may not overlap the span of a kernel
//!   that reads a slot the exchange writes — the consumer would observe
//!   a half-arrived buffer.
//!
//! All checks run on the trace alone; nothing re-executes.

use sc_gpu::{Trace, TraceEvent};

/// Timestamp slack for interval-membership checks: accesses exactly at
/// an alloc/free boundary are legal (the replay opens a slot at the
/// span start and closes it at the span end).
const EPS: f64 = 1e-12;

/// The kind of cross-stream data race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hazard {
    /// Read-after-write: the earlier kernel writes, the later reads.
    Raw,
    /// Write-after-read: the earlier kernel reads, the later writes.
    War,
    /// Write-after-write: both kernels write.
    Waw,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hazard::Raw => write!(f, "RAW"),
            Hazard::War => write!(f, "WAR"),
            Hazard::Waw => write!(f, "WAW"),
        }
    }
}

/// One hazard found by [`validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceViolation {
    /// A kernel touched a slot after its free.
    UseAfterFree {
        /// Arena slot id (replay-local subdomain position).
        slot: usize,
        /// Label of the offending kernel.
        label: &'static str,
        /// Start time of the offending access.
        at: f64,
        /// Time the slot was freed.
        freed_at: f64,
    },
    /// A kernel touched a slot before its alloc (or a slot never
    /// allocated at all).
    UseBeforeAlloc {
        /// Arena slot id.
        slot: usize,
        /// Label of the offending kernel.
        label: &'static str,
        /// Start time of the offending access.
        at: f64,
    },
    /// A slot was freed twice.
    DoubleFree {
        /// Arena slot id.
        slot: usize,
        /// Time of the second free.
        at: f64,
    },
    /// A slot was allocated twice without an intervening free.
    DoubleAlloc {
        /// Arena slot id.
        slot: usize,
        /// Time of the second alloc.
        at: f64,
    },
    /// A slot was allocated but never freed.
    LeakedSlot {
        /// Arena slot id.
        slot: usize,
        /// Bytes held.
        bytes: usize,
    },
    /// Two kernels on different streams overlap in time and touch the
    /// same slot with at least one writer.
    CrossStreamHazard {
        /// Arena slot id both kernels touch.
        slot: usize,
        /// Race classification.
        hazard: Hazard,
        /// The two stream ids involved, earlier kernel first.
        streams: (usize, usize),
        /// Labels of the two kernels, earlier first.
        labels: (&'static str, &'static str),
        /// Start time of the later (conflicting) kernel.
        at: f64,
    },
    /// Two kernels assigned to the same stream overlap in time.
    StreamOverlap {
        /// The serial stream id.
        stream: usize,
        /// Start time of the later span.
        at: f64,
        /// End time of the earlier span it overlaps.
        prev_end: f64,
    },
    /// Live arena bytes exceeded the pool capacity.
    ArenaOversubscribed {
        /// Time of the alloc that overflowed.
        at: f64,
        /// Live bytes after that alloc.
        live_bytes: usize,
        /// Pool capacity in bytes.
        capacity: usize,
    },
    /// An inter-node exchange overlaps a kernel that reads a slot the
    /// exchange writes: the consumer has no ordering edge to the
    /// transfer and would observe a half-arrived buffer.
    ExchangeOverlap {
        /// Arena slot id the exchange writes and the kernel reads.
        slot: usize,
        /// Label of the exchange event.
        exchange: &'static str,
        /// Label of the dependent kernel.
        kernel: &'static str,
        /// Peer node of the transfer.
        peer: usize,
        /// Start time of the dependent kernel's span.
        at: f64,
    },
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceViolation::UseAfterFree {
                slot,
                label,
                at,
                freed_at,
            } => write!(
                f,
                "use-after-free: kernel `{label}` touches slot {slot} at t={at:.6e} \
                 but the slot was freed at t={freed_at:.6e}"
            ),
            TraceViolation::UseBeforeAlloc { slot, label, at } => write!(
                f,
                "use-before-alloc: kernel `{label}` touches slot {slot} at t={at:.6e} \
                 before (or without) its allocation"
            ),
            TraceViolation::DoubleFree { slot, at } => {
                write!(f, "double-free of slot {slot} at t={at:.6e}")
            }
            TraceViolation::DoubleAlloc { slot, at } => {
                write!(f, "double-alloc of slot {slot} at t={at:.6e}")
            }
            TraceViolation::LeakedSlot { slot, bytes } => {
                write!(f, "leaked slot {slot} ({bytes} bytes never freed)")
            }
            TraceViolation::CrossStreamHazard {
                slot,
                hazard,
                streams,
                labels,
                at,
            } => write!(
                f,
                "cross-stream {hazard} hazard on slot {slot}: `{}` (stream {}) overlaps \
                 `{}` (stream {}) at t={at:.6e} with no ordering edge",
                labels.0, streams.0, labels.1, streams.1
            ),
            TraceViolation::StreamOverlap {
                stream,
                at,
                prev_end,
            } => write!(
                f,
                "stream {stream} is serial but a kernel starts at t={at:.6e} before the \
                 previous one ends at t={prev_end:.6e}"
            ),
            TraceViolation::ArenaOversubscribed {
                at,
                live_bytes,
                capacity,
            } => write!(
                f,
                "arena oversubscribed at t={at:.6e}: {live_bytes} live bytes > \
                 capacity {capacity}"
            ),
            TraceViolation::ExchangeOverlap {
                slot,
                exchange,
                kernel,
                peer,
                at,
            } => write!(
                f,
                "exchange-overlap: transfer `{exchange}` (peer {peer}) still writes \
                 slot {slot} while dependent kernel `{kernel}` reads it at t={at:.6e}"
            ),
        }
    }
}

/// Lifetime record for one slot, rebuilt from the event stream.
#[derive(Default)]
struct SlotLife {
    alloc_at: Option<f64>,
    free_at: Option<f64>,
    bytes: usize,
}

/// Statically check `trace` for every hazard class; returns all
/// violations found (empty = clean).
pub fn validate(trace: &Trace) -> Vec<TraceViolation> {
    let mut out = Vec::new();
    check_slot_lifetimes(trace, &mut out);
    check_cross_stream(trace, &mut out);
    check_stream_serialization(trace, &mut out);
    check_arena_budget(trace, &mut out);
    check_exchange_overlap(trace, &mut out);
    out
}

fn slot_lifetimes(trace: &Trace, out: &mut Vec<TraceViolation>) -> Vec<(usize, SlotLife)> {
    let mut lives: Vec<(usize, SlotLife)> = Vec::new();
    let idx = |lives: &mut Vec<(usize, SlotLife)>, slot: usize| -> usize {
        if let Some(p) = lives.iter().position(|(s, _)| *s == slot) {
            p
        } else {
            lives.push((slot, SlotLife::default()));
            lives.len() - 1
        }
    };
    for ev in &trace.events {
        match ev {
            TraceEvent::Alloc { slot, bytes, at } => {
                let p = idx(&mut lives, *slot);
                let life = &mut lives[p].1;
                if life.alloc_at.is_some() && life.free_at.is_none() {
                    out.push(TraceViolation::DoubleAlloc {
                        slot: *slot,
                        at: *at,
                    });
                } else {
                    // re-allocation after free is legal in principle, but the
                    // replay engine never does it: slot ids are unique
                    // subdomain positions. Track the latest lifetime.
                    life.alloc_at = Some(*at);
                    life.free_at = None;
                    life.bytes = *bytes;
                }
            }
            TraceEvent::Free { slot, at } => {
                let p = idx(&mut lives, *slot);
                let life = &mut lives[p].1;
                if life.alloc_at.is_none() || life.free_at.is_some() {
                    out.push(TraceViolation::DoubleFree {
                        slot: *slot,
                        at: *at,
                    });
                } else {
                    life.free_at = Some(*at);
                }
            }
            TraceEvent::Kernel { .. } | TraceEvent::Exchange { .. } => {}
        }
    }
    lives
}

fn check_slot_lifetimes(trace: &Trace, out: &mut Vec<TraceViolation>) {
    let lives = slot_lifetimes(trace, out);
    let find = |slot: usize| lives.iter().find(|(s, _)| *s == slot).map(|(_, l)| l);
    for ev in &trace.events {
        let TraceEvent::Kernel {
            label,
            span,
            reads,
            writes,
            ..
        } = ev
        else {
            continue;
        };
        for &slot in reads.iter().chain(writes.iter()) {
            let Some(life) = find(slot) else {
                out.push(TraceViolation::UseBeforeAlloc {
                    slot,
                    label,
                    at: span.start,
                });
                continue;
            };
            match life.alloc_at {
                None => out.push(TraceViolation::UseBeforeAlloc {
                    slot,
                    label,
                    at: span.start,
                }),
                Some(a) if span.start < a - EPS => out.push(TraceViolation::UseBeforeAlloc {
                    slot,
                    label,
                    at: span.start,
                }),
                _ => {}
            }
            if let Some(fr) = life.free_at {
                if span.end > fr + EPS {
                    out.push(TraceViolation::UseAfterFree {
                        slot,
                        label,
                        at: span.start,
                        freed_at: fr,
                    });
                }
            }
        }
    }
    // leaks last, deduplicated by construction (one SlotLife per slot)
    for (slot, life) in &lives {
        if life.alloc_at.is_some() && life.free_at.is_none() {
            out.push(TraceViolation::LeakedSlot {
                slot: *slot,
                bytes: life.bytes,
            });
        }
    }
}

fn check_cross_stream(trace: &Trace, out: &mut Vec<TraceViolation>) {
    struct K<'a> {
        label: &'static str,
        stream: usize,
        start: f64,
        end: f64,
        reads: &'a [usize],
        writes: &'a [usize],
    }
    let kernels: Vec<K> = trace
        .events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Kernel {
                label,
                stream,
                span,
                reads,
                writes,
            } => Some(K {
                label,
                stream: *stream,
                start: span.start,
                end: span.end,
                reads,
                writes,
            }),
            _ => None,
        })
        .collect();
    for (i, a) in kernels.iter().enumerate() {
        for b in kernels.iter().skip(i + 1) {
            if a.stream == b.stream {
                continue; // same stream is ordered by the queue
            }
            // strict overlap in time (touching endpoints are ordered)
            if a.end <= b.start + EPS || b.end <= a.start + EPS {
                continue;
            }
            // shared slots with at least one writer
            for &slot in a.reads.iter().chain(a.writes.iter()) {
                let a_writes = a.writes.contains(&slot);
                let b_reads = b.reads.contains(&slot);
                let b_writes = b.writes.contains(&slot);
                if !(b_reads || b_writes) {
                    continue;
                }
                if !a_writes && !b_writes {
                    continue; // read-read is always safe
                }
                let (earlier, later) = if a.start <= b.start { (a, b) } else { (b, a) };
                let earlier_writes = earlier.writes.contains(&slot);
                let later_writes = later.writes.contains(&slot);
                let hazard = match (earlier_writes, later_writes) {
                    (true, true) => Hazard::Waw,
                    (true, false) => Hazard::Raw,
                    (false, true) => Hazard::War,
                    (false, false) => unreachable!("filtered above"),
                };
                out.push(TraceViolation::CrossStreamHazard {
                    slot,
                    hazard,
                    streams: (earlier.stream, later.stream),
                    labels: (earlier.label, later.label),
                    at: later.start,
                });
                break; // one violation per kernel pair is enough signal
            }
        }
    }
}

fn check_stream_serialization(trace: &Trace, out: &mut Vec<TraceViolation>) {
    // Prefer the device span log (it covers every submission, including
    // any the event stream missed); fall back to kernel events.
    let mut spans: Vec<(usize, f64, f64)> = if !trace.span_log.is_empty() {
        trace
            .span_log
            .iter()
            .map(|(s, sp)| (*s, sp.start, sp.end))
            .collect()
    } else {
        trace
            .events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Kernel { stream, span, .. } => Some((*stream, span.start, span.end)),
                _ => None,
            })
            .collect()
    };
    spans.sort_by(|a, b| {
        (a.0, a.1)
            .partial_cmp(&(b.0, b.1))
            .expect("kernel span timestamps are finite")
    });
    for w in spans.windows(2) {
        let (s0, _, e0) = w[0];
        let (s1, b1, _) = w[1];
        if s0 == s1 && b1 < e0 - EPS {
            out.push(TraceViolation::StreamOverlap {
                stream: s0,
                at: b1,
                prev_end: e0,
            });
        }
    }
}

fn check_arena_budget(trace: &Trace, out: &mut Vec<TraceViolation>) {
    // Sweep alloc/free events in time order; at equal timestamps frees
    // land first (the replay closes one slot and opens the next at the
    // same instant — that is a hand-off, not a doubling).
    let mut deltas: Vec<(f64, i64)> = Vec::new();
    for ev in &trace.events {
        match ev {
            TraceEvent::Alloc { bytes, at, .. } => deltas.push((*at, *bytes as i64)),
            TraceEvent::Free { at, .. } => {
                // recover the bytes from the matching alloc below
                deltas.push((*at, i64::MIN)); // placeholder, fixed next
            }
            TraceEvent::Kernel { .. } | TraceEvent::Exchange { .. } => {}
        }
    }
    // Rebuild free sizes from slot lifetimes (a Free event does not
    // carry bytes).
    let mut sizes: Vec<(usize, usize)> = Vec::new();
    for ev in &trace.events {
        if let TraceEvent::Alloc { slot, bytes, .. } = ev {
            sizes.push((*slot, *bytes));
        }
    }
    let mut di = 0usize;
    for ev in &trace.events {
        match ev {
            TraceEvent::Alloc { .. } => di += 1,
            TraceEvent::Free { slot, .. } => {
                let bytes = sizes
                    .iter()
                    .find(|(s, _)| s == slot)
                    .map(|(_, b)| *b)
                    .unwrap_or(0);
                deltas[di].1 = -(bytes as i64);
                di += 1;
            }
            TraceEvent::Kernel { .. } | TraceEvent::Exchange { .. } => {}
        }
    }
    // sort by (time, frees-first)
    deltas.sort_by(|a, b| {
        (a.0, a.1)
            .partial_cmp(&(b.0, b.1))
            .expect("arena event timestamps are finite")
    });
    let mut live = 0i64;
    for (at, d) in deltas {
        live += d;
        if live > trace.arena_capacity as i64 {
            out.push(TraceViolation::ArenaOversubscribed {
                at,
                live_bytes: live as usize,
                capacity: trace.arena_capacity,
            });
        }
    }
}

fn check_exchange_overlap(trace: &Trace, out: &mut Vec<TraceViolation>) {
    for ev in &trace.events {
        let TraceEvent::Exchange {
            label: xlabel,
            peer,
            span: xspan,
            writes,
            ..
        } = ev
        else {
            continue;
        };
        for kev in &trace.events {
            let TraceEvent::Kernel {
                label, span, reads, ..
            } = kev
            else {
                continue;
            };
            // strict overlap in time (touching endpoints are ordered)
            if span.end <= xspan.start + EPS || xspan.end <= span.start + EPS {
                continue;
            }
            if let Some(&slot) = reads.iter().find(|s| writes.contains(s)) {
                out.push(TraceViolation::ExchangeOverlap {
                    slot,
                    exchange: xlabel,
                    kernel: label,
                    peer: *peer,
                    at: span.start,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_gpu::{SimSpan, SlotAccess};

    fn span(start: f64, end: f64) -> SimSpan {
        SimSpan { start, end }
    }

    /// A minimal clean trace: alloc slot 0, run two ordered kernels on
    /// stream 0, free it.
    fn clean_trace() -> Trace {
        Trace {
            arena_capacity: 1024,
            elem_bytes: 8,
            n_streams: 2,
            concurrency: 2,
            events: vec![
                TraceEvent::Alloc {
                    slot: 0,
                    bytes: 512,
                    at: 0.0,
                },
                TraceEvent::Kernel {
                    label: "upload",
                    stream: 0,
                    span: span(0.0, 1.0),
                    reads: vec![],
                    writes: vec![0],
                },
                TraceEvent::Kernel {
                    label: "syrk",
                    stream: 0,
                    span: span(1.0, 2.0),
                    reads: vec![0],
                    writes: vec![0],
                },
                TraceEvent::Free { slot: 0, at: 2.0 },
            ],
            span_log: vec![(0, span(0.0, 1.0)), (0, span(1.0, 2.0))],
        }
    }

    #[test]
    fn clean_trace_validates() {
        assert!(validate(&clean_trace()).is_empty());
        let _ = SlotAccess::read_write(); // exercise the re-export path
    }

    #[test]
    fn dropped_free_is_a_leak() {
        let mut t = clean_trace();
        t.events.retain(|e| !matches!(e, TraceEvent::Free { .. }));
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::LeakedSlot { slot: 0, .. })));
    }

    #[test]
    fn use_after_free_detected() {
        let mut t = clean_trace();
        // free at 0.5, while the second kernel runs until 2.0
        if let Some(TraceEvent::Free { at, .. }) = t
            .events
            .iter_mut()
            .find(|e| matches!(e, TraceEvent::Free { .. }))
        {
            *at = 0.5;
        }
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::UseAfterFree { slot: 0, .. })));
    }

    #[test]
    fn use_before_alloc_detected() {
        let mut t = clean_trace();
        if let Some(TraceEvent::Alloc { at, .. }) = t
            .events
            .iter_mut()
            .find(|e| matches!(e, TraceEvent::Alloc { .. }))
        {
            *at = 1.5;
        }
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::UseBeforeAlloc { slot: 0, .. })));
    }

    #[test]
    fn double_free_detected() {
        let mut t = clean_trace();
        t.events.push(TraceEvent::Free { slot: 0, at: 3.0 });
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::DoubleFree { slot: 0, .. })));
    }

    #[test]
    fn cross_stream_write_overlap_detected() {
        let mut t = clean_trace();
        // move the second kernel to stream 1, overlapping the first
        if let Some(TraceEvent::Kernel {
            stream, span: sp, ..
        }) = t
            .events
            .iter_mut()
            .filter(|e| matches!(e, TraceEvent::Kernel { .. }))
            .nth(1)
        {
            *stream = 1;
            *sp = span(0.5, 1.5);
        }
        t.span_log = vec![(0, span(0.0, 1.0)), (1, span(0.5, 1.5))];
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::CrossStreamHazard { slot: 0, .. })));
    }

    #[test]
    fn same_stream_overlap_detected_via_span_log() {
        let mut t = clean_trace();
        t.span_log = vec![(0, span(0.0, 1.0)), (0, span(0.5, 1.5))];
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::StreamOverlap { stream: 0, .. })));
    }

    #[test]
    fn arena_oversubscription_detected() {
        let mut t = clean_trace();
        t.arena_capacity = 256; // alloc of 512 overflows
        let v = validate(&t);
        assert!(v
            .iter()
            .any(|v| matches!(v, TraceViolation::ArenaOversubscribed { .. })));
    }

    #[test]
    fn exchange_overlapping_dependent_kernel_detected() {
        let mut t = clean_trace();
        // transfer into slot 0 spanning [0.5, 1.5): the `syrk` kernel
        // reading slot 0 at [1.0, 2.0) consumes a half-arrived buffer
        t.events.push(TraceEvent::Exchange {
            label: "lambda-exchange",
            peer: 1,
            bytes: 256,
            span: span(0.5, 1.5),
            writes: vec![0],
        });
        let v = validate(&t);
        assert!(v.iter().any(|v| matches!(
            v,
            TraceViolation::ExchangeOverlap {
                slot: 0,
                kernel: "syrk",
                peer: 1,
                ..
            }
        )));
        // moved past every reader, the same transfer is clean
        let mut t = clean_trace();
        t.events.push(TraceEvent::Exchange {
            label: "lambda-exchange",
            peer: 1,
            bytes: 256,
            span: span(2.0, 3.0),
            writes: vec![0],
        });
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn handoff_at_equal_time_is_not_oversubscription() {
        let t = Trace {
            arena_capacity: 512,
            elem_bytes: 8,
            n_streams: 1,
            concurrency: 1,
            events: vec![
                TraceEvent::Alloc {
                    slot: 0,
                    bytes: 512,
                    at: 0.0,
                },
                TraceEvent::Free { slot: 0, at: 1.0 },
                TraceEvent::Alloc {
                    slot: 1,
                    bytes: 512,
                    at: 1.0,
                },
                TraceEvent::Free { slot: 1, at: 2.0 },
            ],
            span_log: vec![],
        };
        assert!(validate(&t).is_empty());
    }
}
