//! The lint rule set.
//!
//! Each rule is a lexical check over a [`SourceFile`] token stream. Rules
//! carry their own scope ([`Rule::applies`]) and per-file allowlists;
//! line-level opt-outs (`// sc-analyze: allow(<rule>)`) are handled
//! centrally by the engine in [`crate::analyze_source`].

use crate::lexer::{TokKind, Token};
use crate::SourceFile;

/// One finding: a rule violation at a specific file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repository-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (e.g. `panic-surface`).
    pub rule: String,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lint rule: a named check with a path scope.
pub trait Rule {
    /// Stable rule name, used in diagnostics and `allow(...)` directives.
    fn name(&self) -> &'static str;
    /// Whether the rule runs on the file at repository-relative path
    /// `rel`. Default: every `.rs` file handed to the engine.
    fn applies(&self, rel: &str) -> bool {
        let _ = rel;
        true
    }
    /// Scan `file` and append findings to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// The full default rule set, in the order diagnostics group best.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(PanicSurface),
        Box::new(FloatEq {
            allow_files: FLOAT_EQ_ALLOWLIST,
        }),
        Box::new(PrecisionDiscipline {
            allow_files: PRECISION_ALLOWLIST,
        }),
        Box::new(UnitDiscipline),
        Box::new(DeprecationBudget {
            allow_files: DEPRECATION_ALLOWLIST,
        }),
        Box::new(PubDoc),
    ]
}

/// Files permitted to compare floats bitwise with `==`/`!=`: replay
/// determinism tests, where the whole point is bit-identical numerics.
pub const FLOAT_EQ_ALLOWLIST: &[&str] = &[
    "tests/determinism.rs",
    "crates/core/src/batch.rs",
    "crates/core/tests/",
];

/// Files permitted to reference the deprecated compat surface: the
/// facade that re-exports it, the module that defines it, and the API
/// surface test that pins it.
pub const DEPRECATION_ALLOWLIST: &[&str] = &[
    "src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/core/src/schedule.rs",
    "crates/feti/src/compat.rs",
    "tests/api_surface.rs",
];

/// True for paths that are library (non-test, non-bench, non-shim)
/// sources: `src/**` of the facade or of any `crates/<name>` except
/// `bench`, `analyze`, and the `shims` subtree.
pub fn is_library_source(rel: &str) -> bool {
    if rel.starts_with("src/") {
        return true;
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    let krate = parts.next().unwrap_or("");
    let second = parts.next().unwrap_or("");
    if krate == "bench" || krate == "analyze" || krate == "shims" {
        return false;
    }
    second == "src"
}

/// Does a per-file allowlist entry cover `rel`? Entries ending in `/`
/// are directory prefixes; others are exact paths.
fn allowlisted(rel: &str, allow: &[&str]) -> bool {
    allow.iter().any(|a| {
        if a.ends_with('/') {
            rel.starts_with(a)
        } else {
            rel == *a
        }
    })
}

// ---------------------------------------------------------------------------
// panic-surface
// ---------------------------------------------------------------------------

/// Library code may not use `.unwrap()`, bare `.expect(...)` without a
/// descriptive message, `panic!`, `todo!`, or `unimplemented!`. Tests
/// (lines inside `#[test]`/`#[cfg(test)]` items) are exempt, as are
/// `.expect("…")` calls whose message is at least eight characters —
/// a descriptive message documents the invariant being relied on.
pub struct PanicSurface;

impl Rule for PanicSurface {
    fn name(&self) -> &'static str {
        "panic-surface"
    }

    fn applies(&self, rel: &str) -> bool {
        is_library_source(rel)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let sig = &file.sig;
        for si in 0..sig.len() {
            let t = &file.tokens[sig[si]];
            if file.in_test_region(t.line) {
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev_dot = si > 0 && file.tokens[sig[si - 1]].text == ".";
            let next_is = |text: &str| {
                file.sig_tok(si + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == text)
            };
            match t.text.as_str() {
                "unwrap" if prev_dot && next_is("(") => out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: self.name().into(),
                    message: "`.unwrap()` in library code; use `.expect(\"<invariant>\")` or \
                              propagate the error"
                        .into(),
                }),
                "expect"
                    if prev_dot
                        && next_is("(")
                        && !expect_has_descriptive_message(file, si + 1) =>
                {
                    out.push(Diagnostic {
                        file: file.rel.clone(),
                        line: t.line,
                        rule: self.name().into(),
                        message: "`.expect(..)` without a descriptive message (>= 8 chars) \
                                      in library code"
                            .into(),
                    });
                }
                "panic" | "todo" | "unimplemented" if next_is("!") => out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: self.name().into(),
                    message: format!(
                        "`{}!` in library code; return an error or document the invariant \
                         with an allow directive",
                        t.text
                    ),
                }),
                _ => {}
            }
        }
    }
}

/// Scan the parenthesized argument of `.expect(` starting at the sig
/// index of the opening `(`; true when any string literal inside has
/// contents of at least eight characters (covers both `.expect("long
/// message")` and `.expect(&format!("slot {i} missing"))`).
fn expect_has_descriptive_message(file: &SourceFile, open_si: usize) -> bool {
    let mut depth = 0i64;
    for si in open_si..file.sig.len() {
        let t = &file.tokens[file.sig[si]];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Str && t.str_contents().is_some_and(|s| s.len() >= 8) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// `==`/`!=` on expressions involving float literals is almost always a
/// bug outside determinism tests; use a tolerance or compare `.to_bits()`.
/// Files on the allowlist assert bitwise replay equality on purpose.
pub struct FloatEq {
    /// Exact paths or `/`-terminated directory prefixes exempt from the
    /// rule.
    pub allow_files: &'static [&'static str],
}

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn applies(&self, rel: &str) -> bool {
        !allowlisted(rel, self.allow_files)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let sig = &file.sig;
        for si in 0..sig.len() {
            let t = &file.tokens[sig[si]];
            if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
                continue;
            }
            let lhs_float = si > 0 && file.tokens[sig[si - 1]].kind == TokKind::Float;
            let rhs_float = {
                // allow a unary sign before the literal: `x == -0.5`
                let mut sj = si + 1;
                if file
                    .sig_tok(sj)
                    .is_some_and(|n| n.kind == TokKind::Punct && (n.text == "-" || n.text == "+"))
                {
                    sj += 1;
                }
                file.sig_tok(sj).is_some_and(|n| n.kind == TokKind::Float)
            };
            if lhs_float || rhs_float {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: self.name().into(),
                    message: format!(
                        "float literal compared with `{}`; use a tolerance or `.to_bits()`",
                        t.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// precision-discipline
// ---------------------------------------------------------------------------

/// Files permitted to cast to `f32`/`f64` with bare `as`: the sealed
/// `Scalar` impl module (the one sanctioned precision boundary — everything
/// else goes through `Scalar::from_f64`/`to_f64`), and the two gpusim cost
/// files, where every line prices integer byte/flop counts into `f64`
/// seconds and no value precision is involved.
pub const PRECISION_ALLOWLIST: &[&str] = &[
    "crates/dense/src/scalar.rs",
    "crates/gpusim/src/cost.rs",
    "crates/gpusim/src/kernels.rs",
];

/// Now that the numeric stack is generic over [`Scalar`], a bare `as f32`
/// / `as f64` cast in library code is an undeclared precision decision:
/// demotions silently drop bits, promotions hide where the mixed-precision
/// boundary sits. Value conversions go through `Scalar::from_f64` /
/// `Scalar::to_f64` (exact-by-construction and greppable); integer-width
/// casts that merely feed a cost model carry a
/// `// sc-analyze: allow(precision-discipline)` escape documenting they
/// change no value precision.
///
/// [`Scalar`]: ../sc_dense/trait.Scalar.html
pub struct PrecisionDiscipline {
    /// Exact paths or `/`-terminated directory prefixes exempt from the
    /// rule.
    pub allow_files: &'static [&'static str],
}

impl Rule for PrecisionDiscipline {
    fn name(&self) -> &'static str {
        "precision-discipline"
    }

    fn applies(&self, rel: &str) -> bool {
        is_library_source(rel) && !allowlisted(rel, self.allow_files)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (si, &ti) in file.sig.iter().enumerate() {
            let t = &file.tokens[ti];
            if t.kind != TokKind::Ident || t.text != "as" {
                continue;
            }
            if file.in_test_region(t.line) {
                continue;
            }
            let Some(target) = file.sig_tok(si + 1) else {
                continue;
            };
            if target.kind == TokKind::Ident && (target.text == "f32" || target.text == "f64") {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: self.name().into(),
                    message: format!(
                        "bare `as {}` cast outside the Scalar impl module; use \
                         `Scalar::from_f64`/`to_f64` for value conversions, or mark an \
                         integer-width cast with an allow directive",
                        target.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unit-discipline
// ---------------------------------------------------------------------------

const UNIT_SUFFIXES: &[&str] = &["_seconds", "_bytes", "_flops"];

fn unit_suffix(name: &str) -> Option<&'static str> {
    UNIT_SUFFIXES.iter().copied().find(|s| name.ends_with(s))
}

/// Identifiers carrying a unit suffix (`_seconds`, `_bytes`, `_flops`)
/// may not meet an identifier of a *different* unit across an arithmetic
/// or comparison operator — `elapsed_seconds + staged_bytes` is a unit
/// error the type system cannot see.
pub struct UnitDiscipline;

impl Rule for UnitDiscipline {
    fn name(&self) -> &'static str {
        "unit-discipline"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        const OPS: &[&str] = &["+", "-", "<", "<=", ">", ">=", "==", "!="];
        for (si, &ti) in file.sig.iter().enumerate() {
            let t = &file.tokens[ti];
            if t.kind != TokKind::Punct || !OPS.contains(&t.text.as_str()) {
                continue;
            }
            let (Some(prev), Some(next)) = (
                si.checked_sub(1).and_then(|p| file.sig_tok(p)),
                file.sig_tok(si + 1),
            ) else {
                continue;
            };
            if prev.kind != TokKind::Ident || next.kind != TokKind::Ident {
                continue;
            }
            if let (Some(lu), Some(ru)) = (unit_suffix(&prev.text), unit_suffix(&next.text)) {
                if lu != ru {
                    out.push(Diagnostic {
                        file: file.rel.clone(),
                        line: t.line,
                        rule: self.name().into(),
                        message: format!(
                            "`{}` mixes units: `{}` ({}) {} `{}` ({})",
                            t.text,
                            prev.text,
                            &lu[1..],
                            t.text,
                            next.text,
                            &ru[1..]
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// deprecation-budget
// ---------------------------------------------------------------------------

/// References to the deprecated compat surface — `#[allow(deprecated)]`
/// and `#[expect(deprecated)]` attributes — are budgeted to an explicit
/// allowlist so the legacy API cannot quietly re-spread. (Supersedes the
/// ad-hoc scan the `ci` bin used to carry inline.)
pub struct DeprecationBudget {
    /// Exact paths or `/`-terminated directory prefixes permitted to
    /// reference deprecated items.
    pub allow_files: &'static [&'static str],
}

impl Rule for DeprecationBudget {
    fn name(&self) -> &'static str {
        "deprecation-budget"
    }

    fn applies(&self, rel: &str) -> bool {
        !allowlisted(rel, self.allow_files) && !rel.starts_with("crates/shims/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (si, &ti) in file.sig.iter().enumerate() {
            let t = &file.tokens[ti];
            if t.kind != TokKind::Ident || (t.text != "allow" && t.text != "expect") {
                continue;
            }
            if !file
                .sig_tok(si + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(")
            {
                continue;
            }
            // scan the parenthesized list for a bare `deprecated` ident
            let mut depth = 0i64;
            for &tj_i in file.sig.iter().skip(si + 1) {
                let tj = &file.tokens[tj_i];
                if tj.kind == TokKind::Punct {
                    match tj.text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if tj.kind == TokKind::Ident && tj.text == "deprecated" {
                    out.push(Diagnostic {
                        file: file.rel.clone(),
                        line: t.line,
                        rule: self.name().into(),
                        message: format!(
                            "`{}(deprecated)` outside the compat allowlist; migrate to the \
                             session API instead of widening the budget",
                            t.text
                        ),
                    });
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pub-doc
// ---------------------------------------------------------------------------

/// Every `pub fn` and `pub struct` in the core, gpusim, dense, and feti
/// crates — the workspace's primary public surface — must carry a doc
/// comment. Restricted visibility (`pub(crate)`, `pub(super)`) is not
/// public surface and is skipped.
pub struct PubDoc;

impl Rule for PubDoc {
    fn name(&self) -> &'static str {
        "pub-doc"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/core/src/")
            || rel.starts_with("crates/gpusim/src/")
            || rel.starts_with("crates/dense/src/")
            || rel.starts_with("crates/feti/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (si, &ti) in file.sig.iter().enumerate() {
            let t = &file.tokens[ti];
            if !(t.kind == TokKind::Ident && t.text == "pub") {
                continue;
            }
            if file.in_test_region(t.line) {
                continue;
            }
            // restricted visibility: `pub(crate)` etc. — not public API
            if file
                .sig_tok(si + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(")
            {
                continue;
            }
            // skip qualifiers between `pub` and the item keyword
            let mut sj = si + 1;
            while file.sig_tok(sj).is_some_and(|n| {
                (n.kind == TokKind::Ident
                    && matches!(n.text.as_str(), "const" | "unsafe" | "async" | "extern"))
                    || n.kind == TokKind::Str // extern "C"
            }) {
                sj += 1;
            }
            let Some(item) = file.sig_tok(sj) else {
                continue;
            };
            if !(item.kind == TokKind::Ident && (item.text == "fn" || item.text == "struct")) {
                continue;
            }
            let name = file
                .sig_tok(sj + 1)
                .map(|n| n.text.clone())
                .unwrap_or_default();
            if !has_preceding_doc(file, ti) {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: self.name().into(),
                    message: format!("`pub {} {}` has no doc comment", item.text, name),
                });
            }
        }
    }
}

/// Walk the *raw* token stream backwards from the `pub` at raw index
/// `pub_ti`, skipping attribute groups (`#[…]`), and report whether a
/// doc comment immediately precedes the item.
fn has_preceding_doc(file: &SourceFile, pub_ti: usize) -> bool {
    let toks: &[Token] = &file.tokens;
    let mut ti = pub_ti;
    loop {
        if ti == 0 {
            return false;
        }
        ti -= 1;
        let t = &toks[ti];
        match t.kind {
            TokKind::DocComment => return true,
            TokKind::Comment => continue, // plain comments may sit between
            TokKind::Punct if t.text == "#" || t.text == "!" => continue,
            TokKind::Punct if t.text == "]" => {
                // skip a bracket group backwards; require a leading `#`
                let mut depth = 0i64;
                loop {
                    let t = &toks[ti];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if ti == 0 {
                        return false;
                    }
                    ti -= 1;
                }
                // `ti` is at `[`; the preceding sig token should be `#`
                // (or `#!`); keep walking from there.
                continue;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(rel, src, &default_rules())
    }

    #[test]
    fn panic_surface_fires_in_library_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(run("crates/sparse/src/csr.rs", src).len(), 1);
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("tests/integration.rs", src).is_empty());
        assert!(run("crates/shims/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn descriptive_expect_is_fine_short_is_not() {
        let good = "fn f(x: Option<u8>) -> u8 { x.expect(\"csr row pointer table non-empty\") }\n";
        assert!(run("crates/sparse/src/csr.rs", good).is_empty());
        let bad = "fn f(x: Option<u8>) -> u8 { x.expect(\"oops\") }\n";
        assert_eq!(run("crates/sparse/src/csr.rs", bad).len(), 1);
        let fmt =
            "fn f(x: Option<u8>, i: usize) -> u8 { x.expect(&format!(\"slot {i} must exist\")) }\n";
        assert!(run("crates/sparse/src/csr.rs", fmt).is_empty());
    }

    #[test]
    fn panic_surface_exempts_test_regions() {
        let src = "#[test]\nfn t() { let x: Option<u8> = None; x.unwrap(); panic!(\"boom\"); }\n";
        assert!(run("crates/sparse/src/csr.rs", src).is_empty());
    }

    #[test]
    fn float_eq_fires_and_respects_allowlist() {
        let src = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert_eq!(run("crates/fem/src/problem.rs", src).len(), 1);
        assert!(run("tests/determinism.rs", src).is_empty());
        let neg = "fn f(x: f64) -> bool { x != -1.5 }\n";
        assert_eq!(run("crates/fem/src/problem.rs", neg).len(), 1);
        let int = "fn f(x: u8) -> bool { x == 5 }\n";
        assert!(run("crates/fem/src/problem.rs", int).is_empty());
    }

    #[test]
    fn precision_discipline_flags_bare_float_casts() {
        let demote = "fn f(x: f64) -> f32 { x as f32 }\n";
        assert_eq!(run("crates/sparse/src/csr.rs", demote).len(), 1);
        let promote = "fn f(x: f32) -> f64 { x as f64 }\n";
        assert_eq!(run("crates/feti/src/solver.rs", promote).len(), 1);
        // the sanctioned conversion surface is clean
        let from = "fn f(x: f32) -> f64 { f64::from(x) }\n";
        assert!(run("crates/feti/src/solver.rs", from).is_empty());
        // integer casts to integer widths are out of scope
        let int = "fn f(n: usize) -> u32 { n as u32 }\n";
        assert!(run("crates/sparse/src/csr.rs", int).is_empty());
    }

    #[test]
    fn precision_discipline_respects_scope_and_escapes() {
        let src = "fn f(n: usize) -> f64 { n as f64 }\n";
        assert_eq!(run("crates/core/src/schedule.rs", src).len(), 1);
        // the Scalar impl module and the gpusim pricing files are sanctioned
        assert!(run("crates/dense/src/scalar.rs", src).is_empty());
        assert!(run("crates/gpusim/src/cost.rs", src).is_empty());
        // non-library code is out of scope
        assert!(run("tests/integration.rs", src).is_empty());
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        // test regions inside library files are exempt
        let test_mod = "#[cfg(test)]\nmod tests {\n fn g() { let _ = 1usize as f64; }\n}\n";
        assert!(run("crates/sparse/src/csr.rs", test_mod).is_empty());
        // the line escape silences exactly this rule
        let escaped =
            "fn f(n: usize) -> f64 { n as f64 } // sc-analyze: allow(precision-discipline)\n";
        assert!(run("crates/core/src/schedule.rs", escaped).is_empty());
    }

    #[test]
    fn unit_discipline_flags_cross_unit_ops() {
        let bad = "fn f(a_seconds: f64, b_bytes: f64) -> f64 { a_seconds + b_bytes }\n";
        let d = run("crates/core/src/batch.rs", bad);
        assert!(d.iter().any(|d| d.rule == "unit-discipline"));
        let ok = "fn f(a_seconds: f64, b_seconds: f64) -> f64 { a_seconds + b_seconds }\n";
        assert!(run("src/lib.rs", ok)
            .iter()
            .all(|d| d.rule != "unit-discipline"));
        let mul = "fn f(a_flops: f64, b_seconds: f64) -> f64 { a_flops / b_seconds }\n";
        assert!(run("src/lib.rs", mul)
            .iter()
            .all(|d| d.rule != "unit-discipline"));
    }

    #[test]
    fn deprecation_budget_respects_allowlist() {
        let src = "#[allow(deprecated)]\nfn f() {}\n";
        assert_eq!(run("crates/order/src/graph.rs", src).len(), 1);
        assert!(run("crates/feti/src/compat.rs", src).is_empty());
        assert!(run("src/lib.rs", src).is_empty());
        let unrelated = "#[allow(dead_code)]\nfn f() {}\n";
        assert!(run("crates/order/src/graph.rs", unrelated).is_empty());
    }

    #[test]
    fn pub_doc_requires_doc_comment_on_core_surface() {
        let bad = "pub fn undocumented() {}\n";
        assert_eq!(run("crates/core/src/x.rs", bad).len(), 1);
        assert!(run("crates/sparse/src/csr.rs", bad).is_empty());
        let good = "/// Documented.\npub fn documented() {}\n";
        assert!(run("crates/core/src/x.rs", good).is_empty());
        let attr = "/// Documented.\n#[inline]\npub fn documented() {}\n";
        assert!(run("crates/core/src/x.rs", attr).is_empty());
        let crate_vis = "pub(crate) fn internal() {}\n";
        assert!(run("crates/core/src/x.rs", crate_vis).is_empty());
        let enum_item = "pub enum E { A }\n";
        assert!(run("crates/core/src/x.rs", enum_item).is_empty());
    }

    #[test]
    fn suppression_silences_exactly_one_rule() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // sc-analyze: allow(panic-surface)\n";
        assert!(run("crates/sparse/src/csr.rs", src).is_empty());
        let wrong = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // sc-analyze: allow(float-eq)\n";
        assert_eq!(run("crates/sparse/src/csr.rs", wrong).len(), 1);
    }

    #[test]
    fn violations_inside_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str { \"call .unwrap() and panic!\" } // .unwrap() here\n";
        assert!(run("crates/sparse/src/csr.rs", src).is_empty());
    }
}
