//! `sc_analyze` — static analysis for the workspace.
//!
//! Two analyzers live here:
//!
//! 1. A **source lint engine** ([`analyze_tree`] / [`analyze_source`]):
//!    a dependency-free Rust [`lexer`] feeding a small set of [`rules`]
//!    tuned to this codebase's invariants — panic-free library crates,
//!    no accidental float equality, unit-suffix discipline, a deprecation
//!    budget, and doc coverage of the public core/gpusim surface.
//!    Per-line opt-outs use `// sc-analyze: allow(<rule>, …)` comments,
//!    which silence the named rules on that line and the next.
//!
//! 2. A **kernel-trace hazard sanitizer** ([`trace::validate`]): checks
//!    the [`sc_gpu::Trace`] produced by the batched replay engines for
//!    use-after-free, double-free, cross-stream data races without
//!    ordering edges, impossible per-stream overlap, and arena
//!    oversubscription.
//!
//! The `sc_analyze` binary runs the lint engine over the repository tree
//! and exits non-zero on any diagnostic; the `trace_audit` bench binary
//! runs the sanitizer over the recorded schedules of the benchmark
//! workloads.

pub mod lexer;
pub mod rules;
pub mod trace;

use lexer::{lex, TokKind, Token};
use rules::{Diagnostic, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A lexed source file plus the derived line-level metadata rules need:
/// suppression directives and `#[test]`/`#[cfg(test)]` regions.
pub struct SourceFile {
    /// Repository-relative path with `/` separators (e.g.
    /// `crates/core/src/batch.rs`).
    pub rel: String,
    /// Every token including comment trivia, in source order.
    pub tokens: Vec<Token>,
    /// Indices into [`Self::tokens`] of the significant (non-comment)
    /// tokens, in source order. Rules that reason about adjacency use
    /// this so comments never split an expression.
    pub sig: Vec<usize>,
    /// `(rule-name, line)` pairs silenced by `sc-analyze: allow(…)`.
    suppressed: BTreeSet<(String, u32)>,
    /// Half-open line ranges `[start, end)` lexically inside items marked
    /// `#[test]` / `#[cfg(test)]` (functions or whole `mod tests`).
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex `text` and derive suppression and test-region metadata.
    pub fn parse(rel: &str, text: &str) -> Self {
        let tokens = lex(text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let suppressed = collect_suppressions(&tokens);
        let test_regions = collect_test_regions(&tokens, &sig);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            sig,
            suppressed,
            test_regions,
        }
    }

    /// True when `rule` is suppressed on `line` by an allow directive.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed.contains(&(rule.to_string(), line))
    }

    /// True when `line` falls inside a `#[test]`/`#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| line >= s && line < e)
    }

    /// The significant token at sig-position `si`, if in range.
    pub fn sig_tok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).map(|&i| &self.tokens[i])
    }
}

/// Parse `sc-analyze: allow(rule, rule…)` directives out of comments.
/// A directive silences the listed rules on its own line and the next,
/// so both trailing (`stmt; // sc-analyze: allow(x)`) and preceding
/// (`// sc-analyze: allow(x)` above the statement) placements work.
fn collect_suppressions(tokens: &[Token]) -> BTreeSet<(String, u32)> {
    let mut out = BTreeSet::new();
    for t in tokens {
        if !t.is_trivia() {
            continue;
        }
        let Some(pos) = t.text.find("sc-analyze:") else {
            continue;
        };
        let rest = &t.text[pos + "sc-analyze:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        let list = &rest[open + "allow(".len()..open + close];
        for rule in list.split(',') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            out.insert((rule.to_string(), t.line));
            out.insert((rule.to_string(), t.line + 1));
        }
    }
    out
}

/// Find line ranges covered by items annotated `#[test]`, `#[cfg(test)]`,
/// `#[tokio::test]`, etc. The heuristic: an attribute group whose idents
/// include one containing `test` (and not `not`) starts a test item; the
/// item extends to the end of its brace-matched body (or the terminating
/// `;` for braceless items).
fn collect_test_regions(tokens: &[Token], sig: &[usize]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut si = 0usize;
    while si < sig.len() {
        let t = &tokens[sig[si]];
        if t.kind == TokKind::Punct && t.text == "#" {
            // attribute group: `#` `[` … `]` (possibly `#!`)
            let mut sj = si + 1;
            if sig.get(sj).map(|&i| tokens[i].text.as_str()) == Some("!") {
                sj += 1;
            }
            if sig.get(sj).map(|&i| tokens[i].text.as_str()) == Some("[") {
                // scan the bracket group; `#[cfg(not(test))]` has `not`
                // and `test` as separate tokens, so track both
                let mut depth = 0usize;
                let mut saw_test = false;
                let mut saw_not = false;
                let mut sk = sj;
                while sk < sig.len() {
                    let tk = &tokens[sig[sk]];
                    match tk.text.as_str() {
                        "[" if tk.kind == TokKind::Punct => depth += 1,
                        "]" if tk.kind == TokKind::Punct => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ if tk.kind == TokKind::Ident => {
                            if tk.text.contains("test") {
                                saw_test = true;
                            }
                            if tk.text == "not" {
                                saw_not = true;
                            }
                        }
                        _ => {}
                    }
                    sk += 1;
                }
                let is_test_attr = saw_test && !saw_not;
                if is_test_attr && sk < sig.len() {
                    // skip any further attribute groups, then find the body
                    let start_line = t.line;
                    let mut sm = sk + 1;
                    while sig.get(sm).map(|&i| tokens[i].text.as_str()) == Some("#") {
                        // skip this whole attribute group
                        let mut depth = 0usize;
                        let mut sn = sm + 1;
                        if sig.get(sn).map(|&i| tokens[i].text.as_str()) == Some("!") {
                            sn += 1;
                        }
                        while sn < sig.len() {
                            let tn = &tokens[sig[sn]];
                            match tn.text.as_str() {
                                "[" if tn.kind == TokKind::Punct => depth += 1,
                                "]" if tn.kind == TokKind::Punct => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            sn += 1;
                        }
                        sm = sn + 1;
                    }
                    // walk to first `{` or `;` at depth 0
                    let mut brace = 0i64;
                    let mut end_line = start_line + 1;
                    let mut entered = false;
                    while sm < sig.len() {
                        let tm = &tokens[sig[sm]];
                        if tm.kind == TokKind::Punct {
                            match tm.text.as_str() {
                                "{" => {
                                    brace += 1;
                                    entered = true;
                                }
                                "}" => {
                                    brace -= 1;
                                    if entered && brace == 0 {
                                        end_line = tm.line + 1;
                                        break;
                                    }
                                }
                                ";" if !entered => {
                                    end_line = tm.line + 1;
                                    break;
                                }
                                _ => {}
                            }
                        }
                        sm += 1;
                    }
                    if sm >= sig.len() {
                        end_line = tokens.last().map(|t| t.line + 1).unwrap_or(end_line);
                    }
                    regions.push((start_line, end_line));
                    si = sm + 1;
                    continue;
                }
            }
        }
        si += 1;
    }
    regions
}

/// Run every applicable rule over one file's source text. Suppressions
/// are applied centrally so individual rules never need to know about
/// the directive syntax.
pub fn analyze_source(rel: &str, text: &str, rules: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let applicable: Vec<&Box<dyn Rule>> = rules.iter().filter(|r| r.applies(rel)).collect();
    if applicable.is_empty() {
        return Vec::new();
    }
    let file = SourceFile::parse(rel, text);
    let mut out = Vec::new();
    for rule in applicable {
        rule.check(&file, &mut out);
    }
    out.retain(|d| !file.is_suppressed(&d.rule, d.line));
    out
}

/// Walk the repository tree under `root` and run the full default rule
/// set over every `.rs` file in `src/`, `crates/`, `tests/`, and
/// `examples/`. Diagnostics come back sorted by `(file, line, rule)`.
///
/// Skipped: any directory named `target`, and the lint-engine fixture
/// corpus under `crates/analyze/fixtures` (those files contain seeded
/// violations on purpose).
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let rules = rules::default_rules();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut found_any_root = false;
    for sub in ["src", "crates", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            found_any_root = true;
            collect_rs_files(&dir, &mut files)?;
        }
    }
    if !found_any_root {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no src/, crates/, tests/, or examples/ under {}",
                root.display()
            ),
        ));
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/analyze/fixtures") {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        out.extend(analyze_source(&rel, &text, &rules));
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "// sc-analyze: allow(panic-surface)\nlet x = y.unwrap();\nlet z = w.unwrap();\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(file.is_suppressed("panic-surface", 1));
        assert!(file.is_suppressed("panic-surface", 2));
        assert!(!file.is_suppressed("panic-surface", 3));
        assert!(!file.is_suppressed("float-eq", 2));
    }

    #[test]
    fn trailing_suppression_with_multiple_rules() {
        let src = "let x = a == 0.5; // sc-analyze: allow(float-eq, unit-discipline)\n";
        let file = SourceFile::parse("src/x.rs", src);
        assert!(file.is_suppressed("float-eq", 1));
        assert!(file.is_suppressed("unit-discipline", 1));
        assert!(!file.is_suppressed("panic-surface", 1));
    }

    #[test]
    fn test_regions_cover_test_fn_and_cfg_test_mod() {
        let src = "\
pub fn library() {}           // line 1

#[test]
fn unit() {
    let x = opt.unwrap();
}                             // line 6

pub fn more_library() {}      // line 8

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn inner() {}
}                             // line 15
";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!file.in_test_region(1));
        assert!(file.in_test_region(4));
        assert!(file.in_test_region(5));
        assert!(!file.in_test_region(8));
        assert!(file.in_test_region(12));
        assert!(file.in_test_region(14));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!file.in_test_region(2));
    }
}
