//! Reverse Cuthill-McKee ordering.

use crate::graph::Graph;
use sc_sparse::Perm;

/// Reverse Cuthill-McKee over the whole graph (all components).
pub fn rcm(g: &Graph) -> Perm {
    let order = rcm_order_subset(g, &vec![true; g.n()]);
    Perm::from_old_of_new(order)
}

/// Cuthill-McKee BFS order of the vertices of `in_set`, reversed. Exposed for
/// the nested-dissection leaves.
pub fn rcm_order_subset(g: &Graph, in_set: &[bool]) -> Vec<usize> {
    let n = g.n();
    let mut visited: Vec<bool> = in_set.iter().map(|&b| !b).collect();
    let mut order = Vec::with_capacity(in_set.iter().filter(|&&b| b).count());
    let mut nbrs: Vec<usize> = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let start = g.pseudo_peripheral(s, in_set);
        // BFS with neighbors sorted by increasing degree (Cuthill-McKee).
        let first = order.len();
        order.push(start);
        visited[start] = true;
        let mut head = first;
        while head < order.len() {
            let v = order[head];
            head += 1;
            nbrs.clear();
            nbrs.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| !visited[w] && in_set[w]),
            );
            nbrs.sort_unstable_by_key(|&w| g.degree(w));
            for &w in &nbrs {
                if !visited[w] {
                    visited[w] = true;
                    order.push(w);
                }
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn rcm_on_path_gives_monotone_order() {
        // On a path graph CM order is one sweep end-to-end; RCM the reverse.
        let lists: Vec<Vec<usize>> = (0..6)
            .map(|i| {
                let mut l = Vec::new();
                if i > 0 {
                    l.push(i - 1);
                }
                if i + 1 < 6 {
                    l.push(i + 1);
                }
                l
            })
            .collect();
        let g = Graph::from_adjacency(&lists);
        let p = rcm(&g);
        // consecutive in new order => adjacent in graph: bandwidth 1
        for k in 0..5 {
            let a = p.old_of_new(k);
            let b = p.old_of_new(k + 1);
            assert_eq!(a.abs_diff(b), 1, "bandwidth not 1");
        }
    }

    #[test]
    fn rcm_covers_disconnected_graphs() {
        let lists = vec![vec![1], vec![0], vec![3], vec![2], vec![]];
        let g = Graph::from_adjacency(&lists);
        let p = rcm(&g);
        assert_eq!(p.len(), 5);
    }
}
