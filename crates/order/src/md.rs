//! Plain minimum-degree ordering on a quotient graph.
//!
//! Deliberately simple (no supervariables, no degree approximation): each
//! elimination replaces a vertex by a clique element; the degree of a vertex
//! is the size of its boundary through adjacent elements plus its remaining
//! plain neighbors. Complexity is fine for the subdomain sizes used in the
//! ablation benches; nested dissection remains the production default.

use crate::graph::Graph;
use sc_sparse::Perm;
use std::collections::BinaryHeap;

/// Minimum-degree elimination ordering of `g`.
pub fn minimum_degree(g: &Graph) -> Perm {
    let n = g.n();
    // Plain adjacency sets and element lists per vertex.
    let mut plain: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n]; // element ids per vertex
    let mut elem_verts: Vec<Vec<usize>> = Vec::new(); // vertices of each element
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // (Reverse-ordered) priority heap on current degree; stale entries are
    // skipped on pop (lazy deletion).
    let mut heap: BinaryHeap<std::cmp::Reverse<(usize, usize)>> = BinaryHeap::new();
    let degree = |v: usize,
                  plain: &Vec<Vec<usize>>,
                  elems: &Vec<Vec<usize>>,
                  elem_verts: &Vec<Vec<usize>>,
                  eliminated: &Vec<bool>| {
        let mut seen = std::collections::HashSet::new();
        for &w in &plain[v] {
            if !eliminated[w] && w != v {
                seen.insert(w);
            }
        }
        for &e in &elems[v] {
            for &w in &elem_verts[e] {
                if !eliminated[w] && w != v {
                    seen.insert(w);
                }
            }
        }
        seen.len()
    };
    for v in 0..n {
        heap.push(std::cmp::Reverse((g.degree(v), v)));
    }
    while order.len() < n {
        let v = loop {
            let std::cmp::Reverse((d, v)) = heap.pop().expect("heap exhausted early");
            if eliminated[v] {
                continue;
            }
            let cur = degree(v, &plain, &elems, &elem_verts, &eliminated);
            if cur == d {
                break v;
            }
            heap.push(std::cmp::Reverse((cur, v)));
        };
        eliminated[v] = true;
        order.push(v);
        // Form the new element: v's live boundary.
        let mut boundary: Vec<usize> = {
            let mut seen = std::collections::HashSet::new();
            for &w in &plain[v] {
                if !eliminated[w] {
                    seen.insert(w);
                }
            }
            for &e in &elems[v] {
                for &w in &elem_verts[e] {
                    if !eliminated[w] {
                        seen.insert(w);
                    }
                }
            }
            seen.into_iter().collect()
        };
        boundary.sort_unstable();
        let eid = elem_verts.len();
        // Absorb v's elements (they are now subsumed by the new element).
        let absorbed: Vec<usize> = elems[v].clone();
        elem_verts.push(boundary.clone());
        for &w in &boundary {
            elems[w].retain(|e| !absorbed.contains(e));
            elems[w].push(eid);
            plain[w].retain(|&u| u != v && !eliminated[u]);
            let d = degree(w, &plain, &elems, &elem_verts, &eliminated);
            heap.push(std::cmp::Reverse((d, w)));
        }
    }
    Perm::from_old_of_new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn star_graph_eliminates_leaves_first() {
        // star: 0 is the hub
        let n = 6;
        let mut lists = vec![Vec::new(); n];
        for v in 1..n {
            lists[0].push(v);
            lists[v].push(0);
        }
        let g = Graph::from_adjacency(&lists);
        let p = minimum_degree(&g);
        // hub keeps maximal degree until only one leaf is left, so it can be
        // eliminated at the earliest amongst the final two vertices
        assert!(p.new_of_old(0) >= n - 2, "hub eliminated too early");
        // the very first eliminated vertex is a leaf
        assert_ne!(p.old_of_new(0), 0);
    }

    #[test]
    fn orders_whole_graph() {
        let lists = vec![vec![1, 2], vec![0, 2], vec![0, 1, 3], vec![2]];
        let g = Graph::from_adjacency(&lists);
        let p = minimum_degree(&g);
        assert_eq!(p.len(), 4);
    }
}
