//! Undirected adjacency structure extracted from a symmetric sparse matrix.

use sc_dense::Scalar;
use sc_sparse::CscOf;

/// Compressed adjacency of an undirected graph (no self loops).
#[derive(Clone, Debug)]
pub struct Graph {
    ptr: Vec<usize>,
    adj: Vec<usize>,
}

impl Graph {
    /// Build from a structurally symmetric CSC matrix (both triangles
    /// stored); the diagonal is ignored. Only the pattern is read, so any
    /// element scalar is accepted.
    pub fn from_symmetric_csc<S: Scalar>(a: &CscOf<S>) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "graph needs a square matrix");
        let n = a.ncols();
        let mut ptr = vec![0usize; n + 1];
        for j in 0..n {
            let (rows, _) = a.col(j);
            ptr[j + 1] = ptr[j] + rows.iter().filter(|&&i| i != j).count();
        }
        let mut adj = vec![0usize; ptr[n]];
        let mut pos = ptr.clone();
        for j in 0..n {
            let (rows, _) = a.col(j);
            for &i in rows {
                if i != j {
                    adj[pos[j]] = i;
                    pos[j] += 1;
                }
            }
        }
        Graph { ptr, adj }
    }

    /// Build directly from adjacency lists (used by tests and generators).
    pub fn from_adjacency(lists: &[Vec<usize>]) -> Self {
        let n = lists.len();
        let mut ptr = vec![0usize; n + 1];
        for (i, l) in lists.iter().enumerate() {
            ptr[i + 1] = ptr[i] + l.len();
        }
        let mut adj = Vec::with_capacity(ptr[n]);
        for l in lists {
            adj.extend_from_slice(l);
        }
        Graph { ptr, adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[self.ptr[v]..self.ptr[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.ptr[v + 1] - self.ptr[v]
    }

    /// BFS levels from `start`, restricted to vertices where `in_set` is
    /// true. Returns `(levels, order)` where `levels[v] == usize::MAX` for
    /// unreached vertices and `order` lists reached vertices in BFS order.
    pub fn bfs_levels(&self, start: usize, in_set: &[bool]) -> (Vec<usize>, Vec<usize>) {
        let n = self.n();
        let mut levels = vec![usize::MAX; n];
        let mut order = Vec::new();
        debug_assert!(in_set[start]);
        levels[start] = 0;
        order.push(start);
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &w in self.neighbors(v) {
                if in_set[w] && levels[w] == usize::MAX {
                    levels[w] = levels[v] + 1;
                    order.push(w);
                }
            }
        }
        (levels, order)
    }

    /// Heuristic pseudo-peripheral vertex within the subset containing
    /// `start`: repeated BFS to the farthest, smallest-degree vertex until
    /// the eccentricity stops growing (George & Liu).
    pub fn pseudo_peripheral(&self, start: usize, in_set: &[bool]) -> usize {
        let (mut levels, mut order) = self.bfs_levels(start, in_set);
        let mut ecc = levels[*order.last().expect("BFS order contains at least `start`")];
        loop {
            let last_level = ecc;
            // candidates: vertices in the last level, pick min degree
            let u = order
                .iter()
                .rev()
                .take_while(|&&w| levels[w] == last_level)
                .copied()
                .min_by_key(|&w| self.degree(w))
                .expect("last BFS level is non-empty by construction");
            let (l2, o2) = self.bfs_levels(u, in_set);
            let ecc2 = l2[*o2.last().expect("BFS order contains at least `u`")];
            if ecc2 > ecc {
                levels = l2;
                order = o2;
                ecc = ecc2;
            } else {
                return u;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::Coo;

    fn path(n: usize) -> Graph {
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut l = Vec::new();
                if i > 0 {
                    l.push(i - 1);
                }
                if i + 1 < n {
                    l.push(i + 1);
                }
                l
            })
            .collect();
        Graph::from_adjacency(&lists)
    }

    #[test]
    fn csc_adjacency_excludes_diagonal() {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        c.push(2, 2, 1.0);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let g = Graph::from_symmetric_csc(&c.to_csc());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[usize]);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path(5);
        let in_set = vec![true; 5];
        let (levels, order) = g.bfs_levels(0, &in_set);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn bfs_respects_subset() {
        let g = path(5);
        let mut in_set = vec![true; 5];
        in_set[2] = false; // cut the path
        let (levels, order) = g.bfs_levels(0, &in_set);
        assert_eq!(order.len(), 2);
        assert_eq!(levels[3], usize::MAX);
    }

    #[test]
    fn pseudo_peripheral_of_path_is_an_end() {
        let g = path(9);
        let in_set = vec![true; 9];
        let v = g.pseudo_peripheral(4, &in_set);
        assert!(v == 0 || v == 8, "got {v}");
    }
}
