//! Recursive-bisection nested dissection (METIS stand-in).
//!
//! The graph is split by a BFS level-set bisection from a pseudo-peripheral
//! vertex; the vertex separator is taken on the boundary of the two halves
//! and ordered **last**, the halves recursively before it. Leaves below
//! `leaf_size` are ordered with Cuthill-McKee.
//!
//! On mesh graphs this yields separators of size `O(√n)` (2D) / `O(n^{2/3})`
//! (3D) and the roughly uniform pivot spread the stepped shape needs.

use crate::graph::Graph;
use crate::rcm::rcm_order_subset;
use sc_sparse::Perm;

/// Nested dissection options.
#[derive(Clone, Debug)]
pub struct NdOptions {
    /// Subgraphs of at most this many vertices are ordered directly.
    pub leaf_size: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions { leaf_size: 32 }
    }
}

/// Compute a nested-dissection ordering of `g`.
pub fn nested_dissection(g: &Graph, opts: &NdOptions) -> Perm {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let in_set = vec![true; n];
    dissect(g, in_set, opts, &mut order);
    debug_assert_eq!(order.len(), n);
    Perm::from_old_of_new(order)
}

fn subset_vertices(in_set: &[bool]) -> Vec<usize> {
    in_set
        .iter()
        .enumerate()
        .filter_map(|(v, &b)| if b { Some(v) } else { None })
        .collect()
}

fn dissect(g: &Graph, in_set: Vec<bool>, opts: &NdOptions, order: &mut Vec<usize>) {
    let verts = subset_vertices(&in_set);
    if verts.is_empty() {
        return;
    }
    if verts.len() <= opts.leaf_size {
        order.extend(rcm_order_subset(g, &in_set));
        return;
    }
    // Level-set bisection of the component containing a pseudo-peripheral
    // vertex; other components are lumped into side A and handled by the
    // recursion (they will be bisected on their own once they dominate).
    let start = g.pseudo_peripheral(verts[0], &in_set);
    let (levels, reached) = g.bfs_levels(start, &in_set);
    let reached_count = reached.len();
    // cut level: median position of the reached vertices
    let cut = levels[reached[reached_count / 2]].max(1);

    let mut side_a = vec![false; g.n()]; // levels < cut, plus unreached
    let mut side_b = vec![false; g.n()]; // levels >= cut
    for &v in &verts {
        if levels[v] == usize::MAX || levels[v] < cut {
            side_a[v] = true;
        } else {
            side_b[v] = true;
        }
    }
    // Vertex separator: vertices of side B adjacent to side A. Moving them
    // out of B leaves A and B\S disconnected.
    let mut sep = Vec::new();
    for &v in &verts {
        if side_b[v] && g.neighbors(v).iter().any(|&w| side_a[w]) {
            sep.push(v);
        }
    }
    for &v in &sep {
        side_b[v] = false;
    }
    // Degenerate split (e.g. a clique): separator swallowed a whole side —
    // fall back to direct ordering to guarantee termination.
    let a_count = side_a.iter().filter(|&&b| b).count();
    let b_count = side_b.iter().filter(|&&b| b).count();
    if a_count == 0 || (a_count + sep.len() == verts.len() && b_count == 0) {
        order.extend(rcm_order_subset(g, &in_set));
        return;
    }
    dissect(g, side_a, opts, order);
    dissect(g, side_b, opts, order);
    order.extend_from_slice(&sep);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2D grid graph helper.
    fn grid(nx: usize, ny: usize) -> Graph {
        let idx = |x: usize, y: usize| y * nx + x;
        let mut lists = vec![Vec::new(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let v = idx(x, y);
                if x > 0 {
                    lists[v].push(idx(x - 1, y));
                }
                if x + 1 < nx {
                    lists[v].push(idx(x + 1, y));
                }
                if y > 0 {
                    lists[v].push(idx(x, y - 1));
                }
                if y + 1 < ny {
                    lists[v].push(idx(x, y + 1));
                }
            }
        }
        Graph::from_adjacency(&lists)
    }

    #[test]
    fn produces_full_permutation_on_grid() {
        let g = grid(17, 13);
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 17 * 13);
    }

    #[test]
    fn handles_disconnected_graph() {
        let lists = vec![vec![1], vec![0], vec![3], vec![2], vec![], vec![]];
        let g = Graph::from_adjacency(&lists);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 1 });
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn handles_clique() {
        let n = 40;
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let g = Graph::from_adjacency(&lists);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 4 });
        assert_eq!(p.len(), n);
    }

    #[test]
    fn last_vertices_form_a_separator_on_grid() {
        // The tail of the ordering (top-level separator) must disconnect the
        // grid: removing it leaves no edge between the two remaining parts
        // ordered before it. We verify the weaker but meaningful property
        // that the vertices ordered before the top separator split into >= 2
        // connected components after separator removal.
        let nx = 16;
        let ny = 16;
        let g = grid(nx, ny);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 8 });
        // take the last 5% as "separator"
        let n = nx * ny;
        let sep_start = n - (n / 16).max(1);
        let mut in_set = vec![false; n];
        for k in 0..sep_start {
            in_set[p.old_of_new(k)] = true;
        }
        // count components of in_set
        let mut visited: Vec<bool> = in_set.iter().map(|&b| !b).collect();
        let mut comps = 0;
        for v in 0..n {
            if !visited[v] {
                comps += 1;
                let (_, order) = g.bfs_levels(v, &in_set);
                for w in order {
                    visited[w] = true;
                }
            }
        }
        assert!(
            comps >= 2,
            "expected a separating tail, got {comps} component(s)"
        );
    }
}
