//! Fill-reducing orderings for sparse Cholesky.
//!
//! The paper relies on METIS nested dissection: it both reduces factor
//! fill-in and — crucially for the stepped shape — spreads the column pivots
//! of `B̃ᵀ` approximately uniformly across the rows (§3: "this shape can be
//! easily achieved if the column pivots of `B̃ᵀ` are approximately uniformly
//! distributed across the rows, which holds, e.g., for permutation provided
//! by Metis"). This crate provides:
//!
//! - [`nested_dissection`] — recursive BFS-bisection nested dissection (the
//!   METIS stand-in and the default everywhere);
//! - [`rcm()`](rcm::rcm) — reverse Cuthill-McKee (bandwidth reducer; used for leaf blocks
//!   and as an ablation ordering);
//! - [`minimum_degree`] — a plain quotient-graph minimum-degree (ablation /
//!   small problems);
//! - [`natural`] — the identity ordering (ablation baseline).

pub mod graph;
pub mod md;
pub mod nd;
pub mod rcm;

pub use graph::Graph;
pub use md::minimum_degree;
pub use nd::{nested_dissection, NdOptions};
pub use rcm::rcm;

use sc_dense::Scalar;
use sc_sparse::{CscOf, Perm};

/// Identity (natural) ordering.
pub fn natural(n: usize) -> Perm {
    Perm::identity(n)
}

/// Ordering algorithm selector, used by the FETI pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Identity ordering.
    Natural,
    /// Reverse Cuthill-McKee.
    Rcm,
    /// Minimum degree.
    MinimumDegree,
    /// Nested dissection (default; METIS stand-in).
    NestedDissection,
}

impl Ordering {
    /// Compute the selected ordering for the symmetric matrix `a` (full
    /// symmetric storage; only the pattern is used, so any element scalar
    /// is accepted).
    pub fn compute<S: Scalar>(self, a: &CscOf<S>) -> Perm {
        let g = Graph::from_symmetric_csc(a);
        match self {
            Ordering::Natural => natural(a.ncols()),
            Ordering::Rcm => rcm(&g),
            Ordering::MinimumDegree => minimum_degree(&g),
            Ordering::NestedDissection => nested_dissection(&g, &NdOptions::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::{Coo, Csc};

    fn path_graph_csc(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        c.to_csc()
    }

    #[test]
    fn all_orderings_are_permutations() {
        let a = path_graph_csc(30);
        for o in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinimumDegree,
            Ordering::NestedDissection,
        ] {
            let p = o.compute(&a);
            assert_eq!(p.len(), 30);
            let mut seen = [false; 30];
            for i in 0..30 {
                seen[p.old_of_new(i)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
