//! Shared infrastructure for the experiment drivers that regenerate the
//! paper's tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Key conventions:
//!
//! - **CPU series are measured wall time** of the real Rust kernels;
//! - **GPU series are simulated time** from the `sc-gpu` cost model (the
//!   kernels may run in cost-only mode during large sweeps — the timeline is
//!   identical either way);
//! - subdomain-size ladders follow the paper's (cubes `k³` in 3D, squares in
//!   2D) but default to smaller maxima so the host-executed kernels finish in
//!   minutes; pass `--full` to extend, `--max-dofs N` to override.

pub mod json;
pub mod report;
pub mod runner;
pub mod timing;
pub mod workloads;

pub use json::{
    bench_record, bench_record_at, bench_record_on, bench_record_with_report, git_describe,
    report_json, trace_json, write_json, Json, BENCH_SCHEMA, TRACE_SCHEMA,
};
pub use report::{ms, write_csv, Table};
pub use runner::{
    time_assembly_cpu, time_assembly_gpu, time_syrk_cpu, time_syrk_gpu, time_trsm_cpu,
    time_trsm_gpu, KernelInputs,
};
pub use timing::{time_min, time_once};
pub use workloads::{ladder_2d, ladder_3d, BatchWorkload, BenchArgs, KernelWorkload};
