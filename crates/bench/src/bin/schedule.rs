//! Batch-scheduler experiment (paper §4.4): round-robin vs the memory-aware,
//! cost-model-driven LPT scheduler on a size-skewed heterogeneous cluster,
//! including a memory-constrained run where arena admission ("wait") binds.
//!
//! Doubles as the CI smoke test for the scheduler: it **fails** (non-zero
//! exit) if the scheduled makespan regresses to or past round-robin on the
//! skewed workload, so scheduling regressions break CI rather than only the
//! criterion run.
//!
//! Usage: `cargo run -p sc_bench --release --bin schedule [--max-dofs N]`

use sc_bench::{BatchWorkload, BenchArgs, Table};
use sc_core::{AssemblyResult, AssemblySession, Backend, ScConfig, ScheduleOptions, StreamPolicy};
use sc_gpu::{Device, DeviceSpec};
use std::sync::Arc;

fn run(
    items: &[sc_core::BatchItem<'_>],
    cfg: &ScConfig,
    policy: StreamPolicy,
    spec: DeviceSpec,
    n_streams: usize,
) -> (AssemblyResult, f64, f64) {
    let device: Arc<Device> = Device::new(spec, n_streams);
    let session = AssemblySession::new(
        Backend::gpu_with(
            Arc::clone(&device),
            ScheduleOptions::default().with_policy(policy),
        ),
        *cfg,
    );
    let res = session.assemble(items);
    let makespan = device.synchronize();
    let busy = device.busy_seconds();
    (res, makespan, busy)
}

fn main() {
    let args = BenchArgs::parse();
    // skewed ladder scaled loosely by --max-dofs; the default sizes are
    // large enough that kernel cost scales with the subdomain (launch
    // overhead alone would make every subdomain cost the same and no
    // scheduler could beat any other)
    let cells: Vec<usize> = if args.max_dofs_gpu < 2_000 {
        vec![12, 4, 6, 3]
    } else {
        vec![40, 10, 16, 6]
    };
    let w = BatchWorkload::build_skewed(2, &cells);
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);
    let n_streams = 4;

    let mut table = Table::new(
        &format!(
            "Batch scheduling on a skewed cluster ({} subdomains, {:.1}x dof spread, {n_streams} streams)",
            w.n_subdomains(),
            w.size_spread()
        ),
        &[
            "configuration",
            "sim makespan [ms]",
            "sim busy [ms]",
            "arena peak [KiB]",
            "host wall [ms]",
        ],
    );

    let fmt_row = |name: &str, res: &AssemblyResult, makespan: f64, busy: f64| {
        vec![
            name.to_string(),
            format!("{:.3}", makespan * 1e3),
            format!("{:.3}", busy * 1e3),
            format!("{:.1}", res.report.temp_high_water() as f64 / 1024.0),
            format!("{:.3}", res.report.total_seconds * 1e3),
        ]
    };

    let (rr, rr_makespan, rr_busy) = run(
        &items,
        &cfg,
        StreamPolicy::RoundRobin,
        DeviceSpec::a100(),
        n_streams,
    );
    table.row(fmt_row("round-robin (replay)", &rr, rr_makespan, rr_busy));

    let (lpt, lpt_makespan, lpt_busy) = run(
        &items,
        &cfg,
        StreamPolicy::LptLeastLoaded,
        DeviceSpec::a100(),
        n_streams,
    );
    table.row(fmt_row("scheduled (LPT)", &lpt, lpt_makespan, lpt_busy));

    // memory-constrained arena sized to ~2.5 heavy subdomains' temporaries:
    // admission ("wait") binds and serializes part of the batch
    let spec = DeviceSpec::a100();
    let max_temp = items
        .iter()
        .map(|it| {
            let params = cfg.resolve(true, it.l, it.bt);
            sc_core::estimate_cost(&spec, it.l, it.bt, &params, 0).temp_bytes
        })
        .max()
        .unwrap_or(1);
    let tight = DeviceSpec {
        memory_bytes: 5 * max_temp,
        ..spec
    };
    let (lpt_tight, tight_makespan, tight_busy) =
        run(&items, &cfg, StreamPolicy::LptLeastLoaded, tight, n_streams);
    table.row(fmt_row(
        &format!("scheduled (LPT, {} KiB arena)", 5 * max_temp / 2048),
        &lpt_tight,
        tight_makespan,
        tight_busy,
    ));

    table.emit("schedule");
    println!(
        "LPT vs round-robin makespan: {:.2}x better; per-stream est loads balanced by the cost model.",
        rr_makespan / lpt_makespan
    );

    if let Some(path) = &args.json {
        let record = sc_bench::bench_record_with_report(
            "schedule",
            sc_bench::Json::obj()
                .field("name", "skewed_batch")
                .field("n_subdomains", w.n_subdomains())
                .field("size_spread", w.size_spread())
                .field("n_streams", n_streams),
            sc_bench::Json::obj()
                .field("round_robin_makespan_s", rr_makespan)
                .field("lpt_makespan_s", lpt_makespan)
                .field("lpt_speedup", rr_makespan / lpt_makespan)
                .field("tight_arena_makespan_s", tight_makespan)
                .field("lpt_busy_s", lpt_busy)
                .field(
                    "tight_arena_high_water_bytes",
                    lpt_tight.report.temp_high_water(),
                ),
            sc_bench::report_json(&lpt.report),
        );
        if let Err(err) = sc_bench::write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // numerics must agree across policies
    for i in 0..items.len() {
        assert_eq!(
            rr.f[i], lpt.f[i],
            "policy changed numerics at subdomain {i}"
        );
    }
    // smoke gate: the scheduler must strictly beat round-robin here
    if lpt_makespan >= rr_makespan {
        eprintln!("FAIL: scheduled makespan {lpt_makespan} did not beat round-robin {rr_makespan}");
        std::process::exit(1);
    }
}
