//! Figure 8: time and speedup of the assembly of the dual operator over all
//! subdomains of a cluster, in two configurations:
//!
//! - `sep` — factors precomputed, only the SC assembly measured;
//! - `mix` — numerical factorization and SC assembly together; on the GPU
//!   the device work of a subdomain can only start once its factorization
//!   finishes (modeled by flooring each stream at the host pipeline time),
//!   which reproduces the paper's "delayed start of GPU computations".
//!
//! Usage: `cargo run -p sc-bench --release --bin fig8 [--full] [--reps N]`

use rayon::prelude::*;
use sc_bench::{ladder_2d, ladder_3d, time_once, BenchArgs, Table};
use sc_core::{assemble_sc, CpuExec, FactorStorage, GpuExec, ScConfig};
use sc_factor::Engine;
use sc_fem::{Gluing, HeatProblem};
use sc_feti::SubdomainFactors;
use sc_gpu::{Device, DeviceSpec, GpuKernels};
use sc_order::Ordering;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let n_streams = 4;
    let device = Device::new(DeviceSpec::a100(), n_streams);

    for dim in [2usize, 3] {
        let ladder = if dim == 2 {
            ladder_2d(args.max_dofs_cpu)
        } else {
            ladder_3d(args.max_dofs_cpu)
        };
        let mut table = Table::new(
            &format!(
                "Fig 8: whole SC assembly, {dim}D [ms per subdomain] \
                 (sep = assembly only, mix = incl. factorization)"
            ),
            &[
                "dofs",
                "cpu_sep_orig",
                "cpu_sep_opt",
                "cpu_mix_orig",
                "cpu_mix_opt",
                "gpu_sep_orig",
                "gpu_sep_opt",
                "gpu_mix_orig",
                "gpu_mix_opt",
                "su_gpu_sep",
                "su_gpu_mix",
            ],
        );

        for &c in &ladder {
            let problem = if dim == 2 {
                HeatProblem::build_2d(c, (3, 3), Gluing::Redundant)
            } else {
                HeatProblem::build_3d(c, (2, 2, 2), Gluing::Redundant)
            };
            let nsub = problem.subdomains.len() as f64;
            let three_d = dim == 3;
            let orig = ScConfig::original(if three_d {
                FactorStorage::Dense
            } else {
                FactorStorage::Sparse
            });
            let opt_cpu = ScConfig::optimized(false, three_d);
            let opt_gpu = ScConfig::optimized(true, three_d);

            // prebuilt factors for the `sep` configuration + per-subdomain
            // factorization times for the `mix` pipeline model
            let fact_times: Vec<f64> = problem
                .subdomains
                .iter()
                .map(|sd| {
                    time_once(|| {
                        std::hint::black_box(SubdomainFactors::build(
                            sd,
                            Engine::Simplicial,
                            Ordering::NestedDissection,
                        ));
                    })
                })
                .collect();
            let factors: Vec<SubdomainFactors> = problem
                .subdomains
                .par_iter()
                .map(|sd| {
                    SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection)
                })
                .collect();

            // --- CPU ---
            let cpu_sep = |cfg: &ScConfig| {
                let t = Instant::now();
                factors.par_iter().for_each(|f| {
                    let l = f.chol.factor_csc();
                    std::hint::black_box(assemble_sc(&mut CpuExec, &l, &f.bt_perm, cfg));
                });
                t.elapsed().as_secs_f64()
            };
            let cpu_mix = |cfg: &ScConfig| {
                let t = Instant::now();
                problem.subdomains.par_iter().for_each(|sd| {
                    let f =
                        SubdomainFactors::build(sd, Engine::Simplicial, Ordering::NestedDissection);
                    let l = f.chol.factor_csc();
                    std::hint::black_box(assemble_sc(&mut CpuExec, &l, &f.bt_perm, cfg));
                });
                t.elapsed().as_secs_f64()
            };
            let cpu_sep_orig = cpu_sep(&orig);
            let cpu_sep_opt = cpu_sep(&opt_cpu);
            let cpu_mix_orig = cpu_mix(&orig);
            let cpu_mix_opt = cpu_mix(&opt_cpu);

            // --- GPU (simulated; cost-only kernels) ---
            let gpu_run = |cfg: &ScConfig, with_fact_floor: bool| -> f64 {
                device.reset();
                let mut host_clock = vec![0.0f64; n_streams];
                for (i, f) in factors.iter().enumerate() {
                    let s = i % n_streams;
                    let stream = device.stream(s);
                    if with_fact_floor {
                        host_clock[s] += fact_times[i];
                        stream.advance_to(host_clock[s]);
                    }
                    let kernels = GpuKernels::new_cost_only(stream);
                    let l = f.chol.factor_csc();
                    kernels.upload_bytes(16 * l.nnz() + 16 * f.bt_perm.nnz());
                    let mut exec = GpuExec::new(&kernels);
                    std::hint::black_box(assemble_sc(&mut exec, &l, &f.bt_perm, cfg));
                }
                let host_tail = host_clock.iter().copied().fold(0.0, f64::max);
                device.synchronize().max(host_tail)
            };
            let gpu_sep_orig = gpu_run(&orig, false);
            let gpu_sep_opt = gpu_run(&opt_gpu, false);
            let gpu_mix_orig = gpu_run(&orig, true);
            let gpu_mix_opt = gpu_run(&opt_gpu, true);

            let ms = |s: f64| format!("{:.4}", s / nsub * 1e3);
            table.row(vec![
                problem.dofs_per_subdomain().to_string(),
                ms(cpu_sep_orig),
                ms(cpu_sep_opt),
                ms(cpu_mix_orig),
                ms(cpu_mix_opt),
                ms(gpu_sep_orig),
                ms(gpu_sep_opt),
                ms(gpu_mix_orig),
                ms(gpu_mix_opt),
                format!("{:.2}", gpu_sep_orig / gpu_sep_opt),
                format!("{:.2}", gpu_mix_orig / gpu_mix_opt),
            ]);
        }
        table.emit(&format!("fig8_{dim}d"));
    }
    println!("su_gpu_sep / su_gpu_mix: orig/opt speedups. The paper reports up to 5.1 (sep)");
    println!("and 3.3 (mix) for large 3D subdomains; the mix speedup is diluted by the");
    println!("factorization time, and large-subdomain `mix` additionally pays the delayed");
    println!("GPU start after the first factorizations.");
}
