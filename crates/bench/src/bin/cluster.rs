//! Cluster-level sharding experiment: the skewed 32-subdomain batch on
//! device pools of 1, 2, and 4 simulated A100s (the paper's production
//! setting runs 8 GPUs per Karolina node), plus a heterogeneous A100+H100
//! pool. Reports per-pool simulated makespan, scaling efficiency vs the
//! single device, and per-device utilization/arena peaks.
//!
//! Doubles as the CI smoke test for the cluster planner: it **fails**
//! (non-zero exit) if the 4-device makespan is not at least 2.5× better
//! than the 1-device makespan, or if sharding changes the numerics.
//!
//! Usage: `cargo run -p sc_bench --release --bin cluster [-- --devices a100,h100]`
//! (`--devices` picks the heterogeneous row's specs by registry name).

use sc_bench::{BatchWorkload, Table};
use sc_core::{AssemblyResult, AssemblySession, Backend, ScConfig};
use sc_gpu::{DevicePool, DeviceSpec};
use std::sync::Arc;

const N_STREAMS: usize = 4;

fn run(items: &[sc_core::BatchItem<'_>], cfg: &ScConfig, pool: &Arc<DevicePool>) -> AssemblyResult {
    AssemblySession::new(Backend::cluster(Arc::clone(pool)), *cfg).assemble(items)
}

/// Parse `--devices a100,h100` (the heterogeneous pool's specs by registry
/// name, `DeviceSpec::from_name`; defaults to `a100,h100`) and
/// `--json PATH`.
fn parse_args() -> (Vec<DeviceSpec>, Option<std::path::PathBuf>) {
    let mut names = "a100,h100".to_string();
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => names = it.next().expect("--devices needs a value"),
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    let specs = names
        .split(',')
        .map(|n| {
            DeviceSpec::from_name(n.trim()).unwrap_or_else(|| {
                panic!(
                    "unknown device '{n}' — the registry knows {:?}",
                    DeviceSpec::registry()
                )
            })
        })
        .collect();
    (specs, json)
}

fn main() {
    let (specs, json_path) = parse_args();
    let w = BatchWorkload::build_cluster32();
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);
    let mut pool_metrics: Vec<(String, f64)> = Vec::new();

    let mut table = Table::new(
        &format!(
            "Cluster sharding of the skewed batch ({} subdomains, {:.1}x dof spread, {N_STREAMS} streams/device)",
            w.n_subdomains(),
            w.size_spread()
        ),
        &[
            "pool",
            "sim makespan [ms]",
            "speedup vs 1 dev",
            "efficiency",
            "min/max device util",
            "arena peak [KiB]",
        ],
    );

    let mut baseline: Option<f64> = None;
    let mut row = |name: &str, res: &AssemblyResult, n_devices: usize| -> f64 {
        let makespan = res.report.makespan;
        let base = *baseline.get_or_insert(makespan);
        let speedup = base / makespan;
        let util_min = res
            .report
            .devices
            .iter()
            .map(|d| d.utilization)
            .fold(f64::INFINITY, f64::min);
        let util_max = res
            .report
            .devices
            .iter()
            .map(|d| d.utilization)
            .fold(0.0, f64::max);
        table.row(vec![
            name.to_string(),
            format!("{:.3}", makespan * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / n_devices as f64),
            format!("{:.0}%/{:.0}%", 100.0 * util_min, 100.0 * util_max),
            format!("{:.1}", res.report.temp_high_water() as f64 / 1024.0),
        ]);
        speedup
    };

    let mut reference: Option<AssemblyResult> = None;
    let mut speedup4 = 0.0;
    for n_devices in [1usize, 2, 4] {
        let pool = DevicePool::uniform(DeviceSpec::a100(), n_devices, N_STREAMS);
        let res = run(&items, &cfg, &pool);
        pool_metrics.push((format!("{n_devices}x_a100"), res.report.makespan));
        let speedup = row(&format!("{n_devices}x A100"), &res, n_devices);
        if n_devices == 4 {
            speedup4 = speedup;
        }
        match &reference {
            None => reference = Some(res),
            Some(r) => {
                for i in 0..items.len() {
                    assert_eq!(
                        r.f[i], res.f[i],
                        "sharding changed numerics at subdomain {i} ({n_devices} devices)"
                    );
                }
            }
        }
    }

    // heterogeneous mix (`--devices`, default A100+H100): the planner
    // prices every recorded kernel sequence under each device's own
    // duration model, so faster cards absorb proportionally larger shares
    let mix_name = specs
        .iter()
        .map(|s| s.name.trim_start_matches("sim-"))
        .collect::<Vec<_>>()
        .join(" + ");
    let pool = DevicePool::heterogeneous(&specs, N_STREAMS);
    let res = run(&items, &cfg, &pool);
    let last_share = res.report.devices.last().map_or(0, |d| d.subdomains.len());
    row(&mix_name, &res, specs.len());
    let reference = reference.expect("1-device run recorded");
    for i in 0..items.len() {
        assert_eq!(
            reference.f[i], res.f[i],
            "heterogeneous sharding changed numerics at subdomain {i}"
        );
    }

    pool_metrics.push((mix_name.replace(" + ", "_"), res.report.makespan));
    table.emit("cluster");
    println!(
        "4-device speedup: {speedup4:.2}x; heterogeneous pool sent {last_share}/{} subdomains to its last device.",
        items.len()
    );

    if let Some(path) = &json_path {
        let mut metrics = sc_bench::Json::obj().field("speedup_4dev", speedup4);
        for (name, makespan) in &pool_metrics {
            metrics = metrics.field(&format!("makespan_{name}_s"), *makespan);
        }
        metrics = metrics.field("heterogeneous_last_device_share", last_share);
        let record = sc_bench::bench_record_with_report(
            "cluster",
            sc_bench::Json::obj()
                .field("name", "cluster32")
                .field("n_subdomains", w.n_subdomains())
                .field("size_spread", w.size_spread())
                .field("n_streams", N_STREAMS),
            metrics,
            sc_bench::report_json(&res.report),
        );
        if let Err(err) = sc_bench::write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // smoke gate: 4 devices must be >= 2.5x better than 1 device
    if speedup4 < 2.5 {
        eprintln!("FAIL: 4-device cluster speedup {speedup4:.2}x is below the 2.5x gate");
        std::process::exit(1);
    }
}
