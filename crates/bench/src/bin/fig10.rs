//! Figure 10: overall time spent in the FETI dual operator as a function of
//! the iteration count — `step_time(iters) = preprocessing/iters + apply` per
//! subdomain — and the resulting **amortization points** (the iteration count
//! where an explicit approach overtakes the best implicit one).
//!
//! Usage: `cargo run -p sc-bench --release --bin fig10 [--full]`

use sc_bench::{ladder_2d, ladder_3d, BenchArgs, Table};
use sc_fem::{Gluing, HeatProblem};
use sc_feti::{measure_apply_cost, preprocess_approach, DualOpApproach};
use sc_gpu::{Device, DeviceSpec};

const ITERS: [usize; 5] = [1, 10, 100, 1000, 10000];

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 4);

    for dim in [2usize, 3] {
        let ladder = if dim == 2 {
            ladder_2d(args.max_dofs_cpu)
        } else {
            ladder_3d(args.max_dofs_cpu)
        };
        // the paper plots impl_mkl/expl_mkl/expl_hybrid in 2D and
        // impl_mkl/impl_cholmod/expl_hybrid/expl_gpu_opt in 3D
        let approaches: Vec<DualOpApproach> = if dim == 2 {
            vec![
                DualOpApproach::ImplMkl,
                DualOpApproach::ExplMkl,
                DualOpApproach::ExplHybrid,
            ]
        } else {
            vec![
                DualOpApproach::ImplMkl,
                DualOpApproach::ImplCholmod,
                DualOpApproach::ExplHybrid,
                DualOpApproach::ExplGpuOpt,
            ]
        };

        let mut headers: Vec<String> = vec!["dofs".into(), "iters".into()];
        headers.extend(approaches.iter().map(|a| a.paper_name().to_string()));
        headers.push("best".into());
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            &format!("Fig 10: step time per subdomain vs iterations, {dim}D [ms]"),
            &header_refs,
        );
        let mut amort = Table::new(
            &format!("Fig 10 ({dim}D): amortization points (explicit vs best implicit)"),
            &["dofs", "approach", "amortization_iters"],
        );

        for &c in &ladder {
            let problem = if dim == 2 {
                HeatProblem::build_2d(c, (3, 3), Gluing::Redundant)
            } else {
                HeatProblem::build_3d(c, (2, 2, 2), Gluing::Redundant)
            };
            let nsub = problem.subdomains.len() as f64;
            // preprocess + apply cost per approach (per subdomain)
            let costs: Vec<(f64, f64)> = approaches
                .iter()
                .map(|&a| {
                    let prepared = preprocess_approach(&problem, a, Some(&device));
                    let apply = measure_apply_cost(&problem, &prepared, a, Some(&device), 3);
                    (
                        prepared.report.total_s() / nsub,
                        apply.per_iteration_s / nsub,
                    )
                })
                .collect();

            for &iters in &ITERS {
                let mut row = vec![problem.dofs_per_subdomain().to_string(), iters.to_string()];
                let mut best = (f64::INFINITY, "");
                for (&a, &(pre, app)) in approaches.iter().zip(&costs) {
                    let step = pre / iters as f64 + app;
                    if step < best.0 {
                        best = (step, a.paper_name());
                    }
                    row.push(format!("{:.4}", step * 1e3));
                }
                row.push(best.1.to_string());
                table.row(row);
            }

            // amortization: first iteration count where the explicit total
            // (pre + k*apply) beats the best implicit total
            let implicit_best: Option<(f64, f64)> = approaches
                .iter()
                .zip(&costs)
                .filter(|(a, _)| matches!(a, DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod))
                .map(|(_, &c)| c)
                .min_by(|a, b| {
                    (a.0 + 100.0 * a.1)
                        .partial_cmp(&(b.0 + 100.0 * b.1))
                        .unwrap()
                });
            if let Some((ipre, iapp)) = implicit_best {
                for (&a, &(pre, app)) in approaches.iter().zip(&costs) {
                    if matches!(a, DualOpApproach::ImplMkl | DualOpApproach::ImplCholmod) {
                        continue;
                    }
                    let label = if app < iapp {
                        let k = (pre - ipre) / (iapp - app);
                        if k <= 0.0 {
                            "always better".to_string()
                        } else {
                            format!("{:.0}", k.ceil())
                        }
                    } else {
                        "never (apply not faster)".to_string()
                    };
                    amort.row(vec![
                        problem.dofs_per_subdomain().to_string(),
                        a.paper_name().to_string(),
                        label,
                    ]);
                }
            }
        }
        table.emit(&format!("fig10_{dim}d"));
        amort.emit(&format!("fig10_amortization_{dim}d"));
    }
    println!("paper shape to check (3D): expl_gpu_opt amortizes at ~10 iterations across");
    println!("subdomain sizes 1k-70k; implicit wins only for very few iterations.");
}
