//! `trace-audit` CI stage: replay the benchmark workloads through
//! their production backends, collect the per-device hazard traces the
//! replay engines record ([`sc_gpu::Trace`]), and statically validate
//! them with `sc_analyze::trace::validate` — use-after-free, double
//! free, cross-stream RAW/WAR/WAW races without ordering edges,
//! per-stream overlap, and arena oversubscription.
//!
//! One JSON artifact per workload (`<out>/<name>.trace.json`, schema
//! `sc-trace/v1`) so perf-gate legs can upload the audited schedules.
//!
//! Exit codes: `0` all workloads hazard-free, `1` violations (or a
//! workload that produced no trace), `2` usage error.
//!
//! Usage: `cargo run -p sc_bench --release --bin trace_audit
//! [--only <headline|schedule|cluster|hybrid|precision|multinode|kernels|serve>]
//! [--out <dir>]`

use sc_analyze::trace::validate;
use sc_bench::{trace_json, write_json, BatchWorkload, Json};
use sc_core::{AssemblyReport, AssemblySession, Backend, ScConfig, ScheduleOptions};
use sc_gpu::{Device, DevicePool, DeviceSpec, Interconnect, NodePool, Trace};
use std::path::PathBuf;

const WORKLOADS: &[&str] = &[
    "headline",
    "schedule",
    "cluster",
    "hybrid",
    "precision",
    "multinode",
    "kernels",
    "serve",
];

fn usage() -> ! {
    eprintln!(
        "usage: trace_audit [--only <{}>] [--out <dir>]",
        WORKLOADS.join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> (Option<String>, PathBuf) {
    let mut only = None;
    let mut out = PathBuf::from("target/bench-json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--only" => match it.next() {
                Some(name) if WORKLOADS.contains(&name.as_str()) => only = Some(name),
                Some(name) => {
                    eprintln!("trace_audit: unknown workload `{name}`");
                    usage();
                }
                None => {
                    eprintln!("trace_audit: `--only` requires a workload name");
                    usage();
                }
            },
            "--out" => match it.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("trace_audit: `--out` requires a directory operand");
                    usage();
                }
            },
            other => {
                eprintln!("trace_audit: unknown argument `{other}`");
                usage();
            }
        }
    }
    (only, out)
}

/// Assemble one named workload through its production backend and return
/// the report carrying the per-device traces.
fn run_workload(name: &str) -> AssemblyReport {
    let cfg = ScConfig::optimized(true, false);
    match name {
        // the headline bin's full-decomposition batch on one scheduled device
        "headline" => {
            let w = BatchWorkload::build(3, 4);
            let device = Device::new(DeviceSpec::a100(), 4);
            AssemblySession::new(Backend::gpu_with(device, ScheduleOptions::default()), cfg)
                .assemble(w.items())
                .report
        }
        // the schedule bin's skewed batch under the LPT stream scheduler
        "schedule" => {
            let w = BatchWorkload::build_skewed(2, &[12, 4, 6, 3]);
            let device = Device::new(DeviceSpec::a100(), 4);
            AssemblySession::new(Backend::gpu_with(device, ScheduleOptions::default()), cfg)
                .assemble(w.items())
                .report
        }
        // the cluster bin's 32-subdomain shard across a 4-device pool
        "cluster" => {
            let w = BatchWorkload::build_cluster32();
            let pool = DevicePool::uniform(DeviceSpec::a100(), 4, 4);
            AssemblySession::new(Backend::cluster(pool), cfg)
                .assemble(w.items())
                .report
        }
        // the hybrid bin's mixed-fit batch on an arena-constrained pool
        // with host fail-over for the over-arena quarter
        "hybrid" => {
            let w = BatchWorkload::build_mixed_fit();
            let items = w.items();
            // size the arena between the footprint quartiles exactly like
            // the hybrid bin, so the top quarter of the batch spills
            let mut temps: Vec<usize> = items
                .iter()
                .enumerate()
                .map(|(i, it)| {
                    let params = cfg.resolve(true, it.l, it.bt);
                    sc_core::estimate_cost(&DeviceSpec::a100(), it.l, it.bt, &params, i).temp_bytes
                })
                .collect();
            temps.sort_unstable();
            let q = temps.len() - temps.len() / 4;
            let arena = (temps[q - 1] + temps[q]) / 2;
            let spec = DeviceSpec {
                memory_bytes: 2 * arena,
                ..DeviceSpec::a100()
            };
            let pool = DevicePool::uniform(spec, 2, 4);
            AssemblySession::new(Backend::hybrid(pool), cfg)
                .assemble(&items)
                .report
        }
        // the precision bin's mixed-fit batch replayed at the f32 working
        // precision, so the audited traces carry 4-byte element payloads
        // (arena accounting, slot lifetimes, and ordering edges must stay
        // hazard-free at the halved widths too)
        "precision" => {
            let w = BatchWorkload::build_mixed_fit();
            let device = Device::new(DeviceSpec::a100(), 4);
            AssemblySession::new(
                Backend::gpu_with(device, ScheduleOptions::default())
                    .precision(sc_core::Precision::f32_refined()),
                cfg,
            )
            .assemble(w.items())
            .report
        }
        // the multinode bin's replicated weak-scaling batch sharded across
        // a 4-node cluster (the traces carry inter-node exchange events on
        // top of the kernels — the sanitizer's exchange-overlap class)
        "multinode" => {
            let w = BatchWorkload::build_skewed(2, &[14, 10, 12, 8]);
            let base = w.items();
            let items: Vec<_> = (0..4).flat_map(|_| base.clone()).collect();
            let pool = NodePool::uniform(DeviceSpec::a100(), 4, 1, 4, Interconnect::infiniband());
            AssemblySession::new(Backend::multi_node(pool), cfg)
                .assemble(&items)
                .report
        }
        // the serve bin's traffic: one warm cluster job exactly as the
        // multi-tenant service dispatches it — prepared bundle built by
        // `sc_serve::prepare` (the cross-session cache's cold path),
        // Arc-shared factors into the solver build, explicit assembly on
        // the shared pool (the serve bin's bravo tenant, its coarsest
        // granularity)
        "serve" => {
            let opts = sc_feti::FetiOptions::default();
            let spec = sc_serve::MeshSpec {
                dim: 3,
                cells: 6,
                subs: (2, 2, 2),
                gluing: sc_serve::GluingTag::Redundant,
            };
            let prep = sc_serve::prepare(&spec, &opts);
            let pool = DevicePool::uniform(DeviceSpec::a100(), 2, 2);
            let solver = sc_feti::FetiSolverBuilder::new()
                .options(opts)
                .backend(Backend::cluster(pool))
                .formulation(sc_feti::FormulationChoice::Explicit)
                .assembly(ScConfig::Auto)
                .factors(std::sync::Arc::clone(&prep.factors))
                .build(&prep.problem);
            solver
                .report()
                .cloned()
                .expect("an explicit cluster build records an assembly report")
        }
        // the kernels bin's calibration batch (the headline decomposition),
        // replayed through the scheduled GPU backend so the audited traces
        // carry the kernel sequence the microkernel work feeds
        "kernels" => {
            let w = BatchWorkload::build(3, 4);
            let device = Device::new(DeviceSpec::a100(), 2);
            AssemblySession::new(Backend::gpu_with(device, ScheduleOptions::default()), cfg)
                .assemble(w.items())
                .report
        }
        other => unreachable!("workload names are validated in parse_args: {other}"),
    }
}

fn main() {
    let (only, out_dir) = parse_args();
    let names: Vec<&str> = match &only {
        Some(one) => vec![one.as_str()],
        None => WORKLOADS.to_vec(),
    };

    let mut total_violations = 0usize;
    for name in names {
        let report = run_workload(name);
        let traces: Vec<(usize, &Trace)> = report
            .devices
            .iter()
            .filter_map(|d| d.trace.as_ref().map(|t| (d.device, t)))
            .collect();
        if traces.is_empty() {
            eprintln!("FAIL: workload `{name}` produced no hazard trace");
            total_violations += 1;
            continue;
        }
        let mut workload_violations = 0usize;
        let mut device_docs: Vec<Json> = Vec::new();
        for (device, trace) in &traces {
            let violations = validate(trace);
            for v in &violations {
                eprintln!("FAIL [{name} device {device}]: {v}");
            }
            workload_violations += violations.len();
            device_docs.push(
                Json::obj()
                    .field("device", *device)
                    .field("n_events", trace.events.len())
                    .field("n_kernels", trace.n_kernels())
                    .field("n_violations", violations.len())
                    .field("trace", trace_json(trace)),
            );
        }
        let doc = Json::obj()
            .field("schema", sc_bench::TRACE_SCHEMA)
            .field("workload", name)
            .field("n_devices", traces.len())
            .field("n_violations", workload_violations)
            .field("devices", device_docs);
        let path = out_dir.join(format!("{name}.trace.json"));
        if let Err(err) = write_json(&path, &doc) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
        let n_kernels: usize = traces.iter().map(|(_, t)| t.n_kernels()).sum();
        println!(
            "trace-audit {name}: {} device trace(s), {n_kernels} kernels, {} violation(s)",
            traces.len(),
            workload_violations
        );
        total_violations += workload_violations;
    }

    if total_violations > 0 {
        eprintln!("trace-audit: {total_violations} violation(s)");
        std::process::exit(1);
    }
    println!("trace-audit: clean");
}
