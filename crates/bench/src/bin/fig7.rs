//! Figure 7: time and speedup of the **pure TRSM and SYRK kernels** —
//! original (non-stepped) vs. optimized (stepped), on CPU and simulated GPU,
//! plus the solver-provided forward-substitution baseline (the CHOLMOD /
//! PARDISO lines of the paper: full multi-RHS forward solves through the
//! solver API, oblivious to RHS sparsity).
//!
//! Usage: `cargo run -p sc-bench --release --bin fig7 [--full] [--reps N]`

use sc_bench::{
    ladder_2d, ladder_3d, time_min, time_syrk_cpu, time_syrk_gpu, time_trsm_cpu, time_trsm_gpu,
    BenchArgs, KernelInputs, KernelWorkload, Table,
};
use sc_core::{FactorStorage, ScParams, SyrkVariant, TrsmVariant};
use sc_gpu::{Device, DeviceSpec};

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 1);

    for dim in [2usize, 3] {
        let (ladder, storage) = if dim == 2 {
            (ladder_2d(args.max_dofs_cpu), FactorStorage::Sparse)
        } else {
            (ladder_3d(args.max_dofs_cpu), FactorStorage::Dense)
        };
        let mut trsm = Table::new(
            &format!("Fig 7 (TRSM, {dim}D) [ms per subdomain]"),
            &[
                "dofs",
                "m",
                "cpu_orig",
                "cpu_opt",
                "solver_fwd",
                "gpu_orig",
                "gpu_opt",
                "su_cpu",
                "su_gpu",
            ],
        );
        let mut syrk = Table::new(
            &format!("Fig 7 (SYRK, {dim}D) [ms per subdomain]"),
            &[
                "dofs", "m", "cpu_orig", "cpu_opt", "gpu_orig", "gpu_opt", "su_cpu", "su_gpu",
            ],
        );

        for &c in &ladder {
            let w = KernelWorkload::build(dim, c);
            let inputs = KernelInputs::new(&w);
            let three_d = dim == 3;
            let opt = ScParams::optimized(false, three_d);
            let opt_gpu = ScParams::optimized(true, three_d);

            // TRSM: original = plain over the full factor
            let cpu_orig = time_trsm_cpu(&w, &inputs, storage, TrsmVariant::Plain, args.reps);
            let cpu_opt = time_trsm_cpu(&w, &inputs, storage, opt.trsm, args.reps);
            // solver forward substitution: the whole RHS through the sparse
            // solve ("solving the full RHS matrix independently to sparsity",
            // paper §4.3)
            let solver_fwd = time_min(args.reps, || {
                let mut y = inputs.y0.clone();
                sc_sparse::csc_lower_solve_mat(&w.l, y.as_mut());
                std::hint::black_box(&y);
            });
            let gpu_orig = time_trsm_gpu(&w, &inputs, storage, TrsmVariant::Plain, &device);
            let gpu_opt = time_trsm_gpu(&w, &inputs, storage, opt_gpu.trsm, &device);
            trsm.row(vec![
                w.n.to_string(),
                w.m.to_string(),
                ms(cpu_orig),
                ms(cpu_opt),
                ms(solver_fwd),
                ms(gpu_orig),
                ms(gpu_opt),
                ratio(cpu_orig, cpu_opt),
                ratio(gpu_orig, gpu_opt),
            ]);

            // SYRK
            let s_cpu_orig = time_syrk_cpu(&inputs, SyrkVariant::Plain, args.reps);
            let s_cpu_opt = time_syrk_cpu(&inputs, opt.syrk, args.reps);
            let s_gpu_orig = time_syrk_gpu(&inputs, SyrkVariant::Plain, &device);
            let s_gpu_opt = time_syrk_gpu(&inputs, opt_gpu.syrk, &device);
            syrk.row(vec![
                w.n.to_string(),
                w.m.to_string(),
                ms(s_cpu_orig),
                ms(s_cpu_opt),
                ms(s_gpu_orig),
                ms(s_gpu_opt),
                ratio(s_cpu_orig, s_cpu_opt),
                ratio(s_gpu_orig, s_gpu_opt),
            ]);
        }
        trsm.emit(&format!("fig7_trsm_{dim}d"));
        syrk.emit(&format!("fig7_syrk_{dim}d"));
    }
    println!("su_* columns: speedup orig/opt (the paper reports up to ~3 for dense");
    println!("kernels, matching the triangle-in-prism volume argument of §4.3).");
}

fn ms(s: f64) -> String {
    format!("{:.4}", s * 1e3)
}

fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}", a / b)
}
