//! Figure 5: dependency of the SC assembly time on the partition parameter
//! for a 3D problem on the (simulated) GPU with factor splitting — the
//! U-shaped curve showing the trade-off between work saved by omitting zeros
//! (large blocks waste work) and kernel-launch overhead (small blocks pay
//! per-launch costs). Two partitioning modes: fixed block *count* vs. fixed
//! block *size*, at a small (~3k dof) and a large subdomain.
//!
//! Usage: `cargo run -p sc-bench --release --bin fig5 [--full]`

use sc_bench::{time_assembly_gpu, BenchArgs, KernelWorkload, Table};
use sc_core::{BlockParam, FactorStorage, ScConfig, ScParams, SyrkVariant, TrsmVariant};
use sc_gpu::{Device, DeviceSpec};

fn config(block: BlockParam) -> ScConfig {
    ScConfig::Fixed(ScParams {
        trsm: TrsmVariant::FactorSplit { block, prune: true },
        syrk: SyrkVariant::InputSplit(block),
        factor_storage: FactorStorage::Dense,
        stepped_permutation: true,
    })
}

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 1);

    // paper: 2,744 ("3k") and 35,937 ("35k") unknowns; we default to 2,744
    // and the largest cube fitting --max-dofs (9,261 by default)
    let small = KernelWorkload::build(3, 13); // 14³ = 2744
    let large_c = [32usize, 25, 20, 16, 13]
        .into_iter()
        .find(|&c| (c + 1).pow(3) <= args.max_dofs_gpu.max(4096))
        .unwrap_or(13);
    let large = KernelWorkload::build(3, large_c);

    let params: Vec<usize> = vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000];

    let mut table = Table::new(
        &format!(
            "Fig 5: GPU SC assembly time vs partition parameter (3D, factor splitting)\n\
             small = {} dofs, large = {} dofs [simulated ms per subdomain]",
            small.n, large.n
        ),
        &[
            "param",
            "small_count",
            "small_size",
            "large_count",
            "large_size",
        ],
    );

    for &p in &params {
        let sc = time_assembly_gpu(&small, &config(BlockParam::Count(p)), &device);
        let ss = time_assembly_gpu(&small, &config(BlockParam::Size(p)), &device);
        let lc = time_assembly_gpu(&large, &config(BlockParam::Count(p)), &device);
        let ls = time_assembly_gpu(&large, &config(BlockParam::Size(p)), &device);
        table.row(vec![
            p.to_string(),
            format!("{:.4}", sc * 1e3),
            format!("{:.4}", ss * 1e3),
            format!("{:.4}", lc * 1e3),
            format!("{:.4}", ls * 1e3),
        ]);
    }
    table.emit("fig5");

    // the paper's punchline: the optimal block size transfers across
    // subdomain sizes, the optimal count does not — report both optima
    let best = |col: &dyn Fn(usize) -> f64| {
        params
            .iter()
            .map(|&p| (p, col(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    };
    let (p1, _) = best(&|p| time_assembly_gpu(&small, &config(BlockParam::Size(p)), &device));
    let (p2, _) = best(&|p| time_assembly_gpu(&large, &config(BlockParam::Size(p)), &device));
    let (c1, _) = best(&|p| time_assembly_gpu(&small, &config(BlockParam::Count(p)), &device));
    let (c2, _) = best(&|p| time_assembly_gpu(&large, &config(BlockParam::Count(p)), &device));
    println!("optimal block SIZE : small {p1}, large {p2}  (paper: ~500 for both)");
    println!("optimal block COUNT: small {c1}, large {c2}  (paper: grows with the subdomain)");
}
