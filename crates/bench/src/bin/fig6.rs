//! Figure 6: comparison of TRSM splitting variants (RHS split, factor split,
//! factor split + pruning) and SYRK splitting variants (input split, output
//! split), on CPU and simulated GPU, for 2D and 3D subdomain ladders.
//!
//! Usage: `cargo run -p sc-bench --release --bin fig6 [--full] [--reps N]`

use sc_bench::{
    ladder_2d, ladder_3d, time_syrk_cpu, time_syrk_gpu, time_trsm_cpu, time_trsm_gpu, BenchArgs,
    KernelInputs, KernelWorkload, Table,
};
use sc_core::tune::table1_defaults as t1;
use sc_core::{FactorStorage, SyrkVariant, TrsmVariant};
use sc_gpu::{Device, DeviceSpec};

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 1);

    for dim in [2usize, 3] {
        let (ladder, storage) = if dim == 2 {
            (ladder_2d(args.max_dofs_cpu), FactorStorage::Sparse)
        } else {
            (ladder_3d(args.max_dofs_cpu), FactorStorage::Dense)
        };
        let (trsm_rhs_cpu, trsm_f_cpu) = if dim == 2 {
            (t1::TRSM_RHS_CPU_2D, t1::TRSM_FACTOR_CPU_2D)
        } else {
            (t1::TRSM_RHS_CPU_3D, t1::TRSM_FACTOR_CPU_3D)
        };
        let (trsm_rhs_gpu, trsm_f_gpu) = if dim == 2 {
            (t1::TRSM_RHS_GPU_2D, t1::TRSM_FACTOR_GPU_2D)
        } else {
            (t1::TRSM_RHS_GPU_3D, t1::TRSM_FACTOR_GPU_3D)
        };
        let (syrk_in_cpu, syrk_out_cpu) = if dim == 2 {
            (t1::SYRK_INPUT_CPU_2D, t1::SYRK_OUTPUT_CPU_2D)
        } else {
            (t1::SYRK_INPUT_CPU_3D, t1::SYRK_OUTPUT_CPU_3D)
        };
        let (syrk_in_gpu, syrk_out_gpu) = if dim == 2 {
            (t1::SYRK_INPUT_GPU_2D, t1::SYRK_OUTPUT_GPU_2D)
        } else {
            (t1::SYRK_INPUT_GPU_3D, t1::SYRK_OUTPUT_GPU_3D)
        };

        let mut trsm_table = Table::new(
            &format!("Fig 6 (top): TRSM splitting variants, {dim}D [ms per subdomain]"),
            &[
                "dofs",
                "m",
                "cpu_rhs",
                "cpu_f",
                "cpu_f+prune",
                "gpu_rhs",
                "gpu_f",
                "gpu_f+prune",
            ],
        );
        let mut syrk_table = Table::new(
            &format!("Fig 6 (bottom): SYRK splitting variants, {dim}D [ms per subdomain]"),
            &[
                "dofs",
                "m",
                "cpu_input",
                "cpu_output",
                "gpu_input",
                "gpu_output",
            ],
        );

        for &c in &ladder {
            let w = KernelWorkload::build(dim, c);
            let inputs = KernelInputs::new(&w);
            let rhs = TrsmVariant::RhsSplit(trsm_rhs_cpu);
            let f_noprune = TrsmVariant::FactorSplit {
                block: trsm_f_cpu,
                prune: false,
            };
            let f_prune = TrsmVariant::FactorSplit {
                block: trsm_f_cpu,
                prune: true,
            };
            let cpu_rhs = time_trsm_cpu(&w, &inputs, storage, rhs, args.reps);
            let cpu_f = time_trsm_cpu(&w, &inputs, storage, f_noprune, args.reps);
            let cpu_fp = time_trsm_cpu(&w, &inputs, storage, f_prune, args.reps);
            let gpu_rhs = time_trsm_gpu(
                &w,
                &inputs,
                storage,
                TrsmVariant::RhsSplit(trsm_rhs_gpu),
                &device,
            );
            let gpu_f = time_trsm_gpu(
                &w,
                &inputs,
                storage,
                TrsmVariant::FactorSplit {
                    block: trsm_f_gpu,
                    prune: false,
                },
                &device,
            );
            let gpu_fp = time_trsm_gpu(
                &w,
                &inputs,
                storage,
                TrsmVariant::FactorSplit {
                    block: trsm_f_gpu,
                    prune: true,
                },
                &device,
            );
            trsm_table.row(vec![
                w.n.to_string(),
                w.m.to_string(),
                fmt_ms(cpu_rhs),
                fmt_ms(cpu_f),
                fmt_ms(cpu_fp),
                fmt_ms(gpu_rhs),
                fmt_ms(gpu_f),
                fmt_ms(gpu_fp),
            ]);

            let cpu_in = time_syrk_cpu(&inputs, SyrkVariant::InputSplit(syrk_in_cpu), args.reps);
            let cpu_out = time_syrk_cpu(&inputs, SyrkVariant::OutputSplit(syrk_out_cpu), args.reps);
            let gpu_in = time_syrk_gpu(&inputs, SyrkVariant::InputSplit(syrk_in_gpu), &device);
            let gpu_out = time_syrk_gpu(&inputs, SyrkVariant::OutputSplit(syrk_out_gpu), &device);
            syrk_table.row(vec![
                w.n.to_string(),
                w.m.to_string(),
                fmt_ms(cpu_in),
                fmt_ms(cpu_out),
                fmt_ms(gpu_in),
                fmt_ms(gpu_out),
            ]);
        }
        trsm_table.emit(&format!("fig6_trsm_{dim}d"));
        syrk_table.emit(&format!("fig6_syrk_{dim}d"));
    }
    println!("note: cpu_* columns are measured wall time of the real kernels;");
    println!("      gpu_* columns are simulated A100 time from the sc-gpu cost model.");
}

fn fmt_ms(s: f64) -> String {
    format!("{:.4}", s * 1e3)
}
