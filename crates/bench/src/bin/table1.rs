//! Table 1: optimal splitting of the matrices — for each algorithm
//! (TRSM RHS / TRSM factor / SYRK input / SYRK output), platform (CPU / GPU)
//! and dimension (2D / 3D), sweep block-size and block-count parameters and
//! report the best one (`S <size>` or `C <count>`, as in the paper).
//!
//! Usage: `cargo run -p sc-bench --release --bin table1 [--full] [--reps N]`

use sc_bench::{
    time_syrk_cpu, time_syrk_gpu, time_trsm_cpu, time_trsm_gpu, BenchArgs, KernelInputs,
    KernelWorkload, Table,
};
use sc_core::{BlockParam, FactorStorage, SyrkVariant, TrsmVariant};
use sc_gpu::{Device, DeviceSpec};

const SIZES: [usize; 7] = [25, 50, 100, 200, 500, 1000, 2000];
const COUNTS: [usize; 5] = [1, 5, 10, 50, 100];

fn candidates() -> Vec<BlockParam> {
    SIZES
        .iter()
        .map(|&s| BlockParam::Size(s))
        .chain(COUNTS.iter().map(|&c| BlockParam::Count(c)))
        .collect()
}

fn label(p: BlockParam) -> String {
    match p {
        BlockParam::Size(s) => format!("S {s}"),
        BlockParam::Count(c) => format!("C {c}"),
        BlockParam::Balanced(c) => format!("B {c}"),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 1);
    let mut table = Table::new(
        "Table 1: optimal splitting of the matrices (S = block size, C = block count)",
        &["algorithm", "CPU 2D", "CPU 3D", "GPU 2D", "GPU 3D"],
    );

    // representative mid-size subdomains per dimension
    let w2 = KernelWorkload::build(2, usize::min(63, isqrt(args.max_dofs_cpu) - 1)); // up to 64² dofs
    let w3 = KernelWorkload::build(3, usize::min(13, icbrt(args.max_dofs_cpu) - 1)); // up to 14³ dofs
    let in2 = KernelInputs::new(&w2);
    let in3 = KernelInputs::new(&w3);

    let best = |f: &mut dyn FnMut(BlockParam) -> f64| -> String {
        let mut best_p = BlockParam::Size(SIZES[0]);
        let mut best_t = f64::INFINITY;
        for p in candidates() {
            let t = f(p);
            if t < best_t {
                best_t = t;
                best_p = p;
            }
        }
        label(best_p)
    };

    // --- TRSM, RHS splitting ---
    let row = vec![
        "TRSM, RHS splitting".to_string(),
        best(&mut |p| {
            time_trsm_cpu(
                &w2,
                &in2,
                FactorStorage::Sparse,
                TrsmVariant::RhsSplit(p),
                args.reps,
            )
        }),
        best(&mut |p| {
            time_trsm_cpu(
                &w3,
                &in3,
                FactorStorage::Sparse,
                TrsmVariant::RhsSplit(p),
                args.reps,
            )
        }),
        best(&mut |p| {
            time_trsm_gpu(
                &w2,
                &in2,
                FactorStorage::Sparse,
                TrsmVariant::RhsSplit(p),
                &device,
            )
        }),
        best(&mut |p| {
            time_trsm_gpu(
                &w3,
                &in3,
                FactorStorage::Sparse,
                TrsmVariant::RhsSplit(p),
                &device,
            )
        }),
    ];
    table.row(row);

    // --- TRSM, factor splitting (with pruning, the paper's §4.1 setting) ---
    let fs = |p: BlockParam| TrsmVariant::FactorSplit {
        block: p,
        prune: true,
    };
    let row = vec![
        "TRSM, factor splitting".to_string(),
        best(&mut |p| time_trsm_cpu(&w2, &in2, FactorStorage::Sparse, fs(p), args.reps)),
        best(&mut |p| time_trsm_cpu(&w3, &in3, FactorStorage::Dense, fs(p), args.reps)),
        best(&mut |p| time_trsm_gpu(&w2, &in2, FactorStorage::Sparse, fs(p), &device)),
        best(&mut |p| time_trsm_gpu(&w3, &in3, FactorStorage::Dense, fs(p), &device)),
    ];
    table.row(row);

    // --- SYRK, input splitting ---
    let row = vec![
        "SYRK, input splitting".to_string(),
        best(&mut |p| time_syrk_cpu(&in2, SyrkVariant::InputSplit(p), args.reps)),
        best(&mut |p| time_syrk_cpu(&in3, SyrkVariant::InputSplit(p), args.reps)),
        best(&mut |p| time_syrk_gpu(&in2, SyrkVariant::InputSplit(p), &device)),
        best(&mut |p| time_syrk_gpu(&in3, SyrkVariant::InputSplit(p), &device)),
    ];
    table.row(row);

    // --- SYRK, output splitting ---
    let row = vec![
        "SYRK, output splitting".to_string(),
        best(&mut |p| time_syrk_cpu(&in2, SyrkVariant::OutputSplit(p), args.reps)),
        best(&mut |p| time_syrk_cpu(&in3, SyrkVariant::OutputSplit(p), args.reps)),
        best(&mut |p| time_syrk_gpu(&in2, SyrkVariant::OutputSplit(p), &device)),
        best(&mut |p| time_syrk_gpu(&in3, SyrkVariant::OutputSplit(p), &device)),
    ];
    table.row(row);

    table.emit("table1");
    println!(
        "workloads: 2D {} dofs (m={}), 3D {} dofs (m={}); paper Table 1 for reference:",
        w2.n, w2.m, w3.n, w3.m
    );
    println!("  TRSM RHS:    S100 S100 C1 S1000 | TRSM factor: S200 S200 S1000 S500");
    println!("  SYRK input:  S200 C50 S2000 S1000 | SYRK output: S200 C10 S200 S1000");
}

fn isqrt(n: usize) -> usize {
    (n as f64).sqrt() as usize
}

fn icbrt(n: usize) -> usize {
    (n as f64).cbrt() as usize
}
