//! Headline numbers of the paper (§1, §5), paper-vs-measured:
//!
//! - speedup of the GPU section of the SC assembly (orig → opt): paper 5.1×;
//! - speedup of the whole assembly incl. factorization: paper 3.3×;
//! - `expl_gpu_opt` vs `expl_mkl` preprocessing: paper up to 9.8×;
//! - explicit-GPU amortization point on 3D subdomains: paper ≈ 10 iterations.
//!
//! Usage: `cargo run -p sc-bench --release --bin headline [--full]`

use sc_bench::{ladder_3d, time_assembly_gpu, BatchWorkload, BenchArgs, KernelWorkload, Table};
use sc_core::{AssemblySession, Backend, FactorStorage, ScConfig, ScheduleOptions, StreamPolicy};
use sc_fem::{Gluing, HeatProblem};
use sc_feti::{
    measure_apply_cost, preprocess_approach, DualOpApproach, FetiSolverBuilder, FormulationChoice,
};
use sc_gpu::{Device, DevicePool, DeviceSpec};
use std::time::Instant;

/// Hard gate of the multi-RHS reuse row: one preprocessed handle over
/// [`N_RHS`] load cases must beat re-preprocessing per case by this factor.
const RHS_REUSE_GATE: f64 = 5.0;
/// Load cases of the multi-RHS reuse row.
const N_RHS: usize = 8;

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 4);
    let mut table = Table::new(
        "Headline numbers (3D, largest benched subdomain)",
        &["quantity", "paper", "measured"],
    );

    // --- kernel-level GPU speedup on the largest 3D subdomain ---
    let c = *ladder_3d(args.max_dofs_gpu).last().expect("ladder empty");
    let w = KernelWorkload::build(3, c);
    let orig = time_assembly_gpu(&w, &ScConfig::original(FactorStorage::Dense), &device);
    let opt = time_assembly_gpu(&w, &ScConfig::optimized(true, true), &device);
    table.row(vec![
        format!("GPU-section SC assembly speedup ({} dofs)", w.n),
        "up to 5.1x".into(),
        format!("{:.2}x", orig / opt),
    ]);

    // --- whole-preprocessing comparison via the approaches machinery ---
    let c_feti = *ladder_3d(args.max_dofs_cpu).last().expect("ladder empty");
    let problem = HeatProblem::build_3d(c_feti, (2, 2, 2), Gluing::Redundant);
    let nsub = problem.subdomains.len() as f64;
    let report = |a: DualOpApproach| {
        let prepared = preprocess_approach(&problem, a, Some(&device));
        let apply = measure_apply_cost(&problem, &prepared, a, Some(&device), 3);
        (
            prepared.report.total_s() / nsub,
            apply.per_iteration_s / nsub,
        )
    };
    let (cuda_pre, _) = report(DualOpApproach::ExplCuda);
    let (gpuopt_pre, gpuopt_app) = report(DualOpApproach::ExplGpuOpt);
    let (mkl_pre, _) = report(DualOpApproach::ExplMkl);
    let (impl_pre, impl_app) = report(DualOpApproach::ImplCholmod);
    table.row(vec![
        format!(
            "whole assembly speedup vs expl_cuda ({} dofs)",
            problem.dofs_per_subdomain()
        ),
        "up to 3.3x".into(),
        format!("{:.2}x", cuda_pre / gpuopt_pre),
    ]);
    table.row(vec![
        "expl_gpu_opt vs expl_mkl preprocessing".into(),
        "up to 9.8x".into(),
        format!("{:.2}x", mkl_pre / gpuopt_pre),
    ]);
    table.row(vec![
        "explicit preprocessing slowdown vs implicit".into(),
        "2.3x (large 3D)".into(),
        format!("{:.2}x", gpuopt_pre / impl_pre),
    ]);
    let amort = if gpuopt_app < impl_app {
        ((gpuopt_pre - impl_pre) / (impl_app - gpuopt_app))
            .ceil()
            .max(0.0)
    } else {
        f64::INFINITY
    };
    table.row(vec![
        "amortization point (iterations)".into(),
        "~10".into(),
        format!("{amort:.0}"),
    ]);

    // --- §4.4 batch scheduling: cost-model LPT vs blind round-robin -------
    // (no paper headline number: the paper fixes 16 streams and reports
    // configuration sweeps; the comparison target here is the naive driver)
    let skew = BatchWorkload::build_skewed(2, &[40, 10, 16, 6]);
    let skew_items = skew.items();
    let cfg = ScConfig::optimized(true, false);
    let makespan = |policy: StreamPolicy| {
        let dev = Device::new(DeviceSpec::a100(), 4);
        AssemblySession::new(
            Backend::gpu_with(
                std::sync::Arc::clone(&dev),
                ScheduleOptions::default().with_policy(policy),
            ),
            cfg,
        )
        .assemble(&skew_items);
        dev.synchronize()
    };
    let rr = makespan(StreamPolicy::RoundRobin);
    let lpt = makespan(StreamPolicy::LptLeastLoaded);
    table.row(vec![
        format!(
            "scheduled vs round-robin batch makespan ({} skewed subdomains)",
            skew.n_subdomains()
        ),
        "n/a (§4.4)".into(),
        format!("{:.2}x", rr / lpt),
    ]);

    // --- cluster sharding: 4-device pool vs a single device ---------------
    // (the paper's production node runs 8 GPUs; the `cluster` bin sweeps
    // 1/2/4 devices and gates CI on this ratio)
    let cl = BatchWorkload::build_cluster32();
    let cl_items = cl.items();
    let cluster_makespan = |n_devices: usize| {
        let pool = DevicePool::uniform(DeviceSpec::a100(), n_devices, 4);
        AssemblySession::new(Backend::cluster(pool), cfg)
            .assemble(&cl_items)
            .report
            .makespan
    };
    let one_dev = cluster_makespan(1);
    let four_dev = cluster_makespan(4);
    table.row(vec![
        format!(
            "4-device vs 1-device cluster makespan ({} skewed subdomains)",
            cl.n_subdomains()
        ),
        "n/a (8-GPU node)".into(),
        format!("{:.2}x", one_dev / four_dev),
    ]);
    // --- multi-RHS reuse: one preprocessed solver handle vs re-preprocessing
    // per load case (the new FetiSolverBuilder + solve_rhs path) ----------
    // large 2D subdomains: factorization + explicit assembly dominate a
    // single PCPG solve by an order of magnitude, which is what a
    // preprocessed handle amortizes
    let rhs_problem = HeatProblem::build_2d(64, (2, 2), Gluing::Redundant);
    let rhs_cases: Vec<Vec<Vec<f64>>> = (0..N_RHS)
        .map(|k| {
            rhs_problem
                .subdomains
                .iter()
                .map(|sd| sd.f.iter().map(|v| v * (1.0 + 0.07 * k as f64)).collect())
                .collect()
        })
        .collect();
    let build_solver = || {
        FetiSolverBuilder::new()
            .backend(Backend::cpu())
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, false))
            .build(&rhs_problem)
    };
    let t0 = Instant::now();
    let handle = build_solver();
    for f in &rhs_cases {
        assert!(handle.solve_rhs(f).stats.converged);
    }
    let reuse_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for f in &rhs_cases {
        let fresh = build_solver();
        assert!(fresh.solve_rhs(f).stats.converged);
    }
    let naive_s = t1.elapsed().as_secs_f64();
    let rhs_speedup = naive_s / reuse_s;
    table.row(vec![
        format!(
            "multi-RHS reuse over {N_RHS} load cases ({} subdomains, explicit CPU)",
            rhs_problem.subdomains.len()
        ),
        "n/a (API)".into(),
        format!("{rhs_speedup:.2}x"),
    ]);

    table.emit("headline");
    println!("caveats: CPU quantities are measured on this host (not a 64-core EPYC),");
    println!("GPU quantities are simulated A100 time; ratios mixing the two regimes");
    println!("(e.g. amortization of simulated-GPU apply vs measured-CPU implicit apply)");
    println!("reproduce the paper's *shape*, not its absolute scale. See EXPERIMENTS.md.");

    if let Some(path) = &args.json {
        let record = sc_bench::bench_record(
            "headline",
            sc_bench::Json::obj()
                .field("name", "headline_3d")
                .field("gpu_kernel_dofs", w.n)
                .field("feti_dofs_per_subdomain", problem.dofs_per_subdomain())
                .field("sched_subdomains", skew.n_subdomains())
                .field("cluster_subdomains", cl.n_subdomains()),
            sc_bench::Json::obj()
                .field("gpu_section_speedup", orig / opt)
                .field("whole_assembly_speedup_vs_cuda", cuda_pre / gpuopt_pre)
                .field("gpu_opt_vs_mkl_speedup", mkl_pre / gpuopt_pre)
                .field("explicit_vs_implicit_preprocessing", gpuopt_pre / impl_pre)
                .field("amortization_iters", amort)
                .field("sched_vs_round_robin", rr / lpt)
                .field("cluster_4dev_speedup", one_dev / four_dev)
                .field("multi_rhs_cases", N_RHS)
                .field("multi_rhs_reuse_speedup", rhs_speedup)
                .field("multi_rhs_reuse_gate", RHS_REUSE_GATE),
        );
        if let Err(err) = sc_bench::write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // hard gate: the preprocessed handle must amortize — reuse across N_RHS
    // load cases beats naive re-preprocessing by >= RHS_REUSE_GATE
    if rhs_speedup < RHS_REUSE_GATE {
        eprintln!(
            "FAIL: multi-RHS reuse speedup {rhs_speedup:.2}x is below the              {RHS_REUSE_GATE}x gate (reuse {reuse_s:.3}s vs naive {naive_s:.3}s)"
        );
        std::process::exit(1);
    }
}
