//! `kernels` perf gate: the cache-blocked microkernels against their scalar
//! references, and the measured-rate calibration against the nominal host
//! cost model.
//!
//! Two hard gates (non-zero exit on regression):
//!
//! 1. **blocked gemm ≥ [`GEMM_GATE`]× scalar** at `n = 512` (best-of-N
//!    wall clock on both sides, so one noisy scalar run cannot flip the
//!    verdict) — the register-tiled packed-panel path must actually beat
//!    the reference it shadows;
//! 2. **calibrated predictions beat nominal ones**: pricing the headline
//!    batch's host assembly with [`MicrokernelRates::probe`] must land
//!    closer to the realized CPU wall time than the nominal
//!    [`DeviceSpec::host`] constants do (relative-gap comparison). The
//!    nominal host claims server-class 250 GFLOP/s; the probe measures
//!    this machine.
//!
//! The remaining kernel classes (TRSM, SYRK, partial Cholesky, binned
//! SpMV) are reported for the record without hard gates — their blocked
//! variants bottom out in the same gemm microkernel, and their
//! correctness is pinned by the `sc_dense`/`sc_sparse` test suites.
//!
//! Usage: `cargo run -p sc_bench --release --bin kernels [--n N] [--json PATH]`

use sc_bench::{bench_record, ms, time_min, write_json, BatchWorkload, Json, Table};
use sc_core::{estimate_cost, AssemblySession, Backend, MicrokernelRates, ScConfig};
use sc_dense::{Mat, Trans};
use sc_gpu::DeviceSpec;
use sc_sparse::{binned_spmv, BinnedPlan, Coo};

/// Minimum admissible blocked/scalar gemm speedup at the gate size.
const GEMM_GATE: f64 = 3.0;

/// Gate size for the gemm comparison (both paths well past the blocked
/// routing threshold).
const DEFAULT_N: usize = 512;

fn parse_args() -> (usize, Option<std::path::PathBuf>) {
    let mut n = DEFAULT_N;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                n = it
                    .next()
                    .expect("--n needs a value")
                    .parse()
                    .expect("--n value");
            }
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (n, json)
}

fn fill(m: usize, n: usize, seed: u64) -> Mat {
    let mut s = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // sc-analyze: allow(precision-discipline)
    })
}

/// One blocked-vs-scalar comparison row: kernel name, FLOP count, and the
/// two best-of-N times.
struct KernelRow {
    name: &'static str,
    flops: f64,
    scalar_s: f64,
    blocked_s: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.blocked_s
    }

    fn blocked_gflops(&self) -> f64 {
        self.flops / self.blocked_s / 1e9
    }
}

fn main() {
    let (n, json_path) = parse_args();
    let nf = n as f64; // sc-analyze: allow(precision-discipline)

    // ---- axis 1: blocked vs scalar kernel rates -------------------------
    let a = fill(n, n, 1);
    let b = fill(n, n, 2);
    let mut c = Mat::zeros(n, n);
    let gemm_scalar_s = time_min(3, || {
        sc_dense::gemm_scalar(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
    });
    let gemm_blocked_s = time_min(5, || {
        sc_dense::gemm_blocked(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        );
    });
    let gemm = KernelRow {
        name: "gemm",
        flops: 2.0 * nf * nf * nf,
        scalar_s: gemm_scalar_s,
        blocked_s: gemm_blocked_s,
    };

    let nrhs = n / 4;
    let l = Mat::from_fn(n, n, |i, j| {
        if i == j {
            2.0
        } else if i > j {
            0.01
        } else {
            0.0
        }
    });
    let x0 = fill(n, nrhs, 3);
    let mut x = x0.clone();
    let trsm_scalar_s = time_min(3, || {
        x.as_mut().copy_from(x0.as_ref());
        sc_dense::trsm_lower_left_scalar(l.as_ref(), x.as_mut());
    });
    let trsm_blocked_s = time_min(3, || {
        x.as_mut().copy_from(x0.as_ref());
        sc_dense::trsm_lower_left_blocked(l.as_ref(), x.as_mut());
    });
    let trsm = KernelRow {
        name: "trsm",
        flops: nf * nf * nrhs as f64, // sc-analyze: allow(precision-discipline)
        scalar_s: trsm_scalar_s,
        blocked_s: trsm_blocked_s,
    };

    let ncols = n / 2;
    let at = fill(n, ncols, 4);
    let mut cs = Mat::zeros(ncols, ncols);
    let syrk_scalar_s = time_min(3, || {
        sc_dense::syrk_t_scalar(1.0, at.as_ref(), 0.0, cs.as_mut());
    });
    let syrk_blocked_s = time_min(3, || {
        sc_dense::syrk_t_blocked(1.0, at.as_ref(), 0.0, cs.as_mut());
    });
    let syrk = KernelRow {
        name: "syrk",
        flops: nf * (ncols * ncols) as f64, // sc-analyze: allow(precision-discipline)
        scalar_s: syrk_scalar_s,
        blocked_s: syrk_blocked_s,
    };

    let mut spd = Mat::zeros(ncols, ncols);
    sc_dense::syrk_t(1.0, at.as_ref(), 0.0, spd.as_mut());
    for i in 0..ncols {
        spd[(i, i)] += 2.0 * nf;
    }
    spd.symmetrize_from_lower();
    let mut f = spd.clone();
    let chol_scalar_s = time_min(3, || {
        f.as_mut().copy_from(spd.as_ref());
        sc_dense::partial_cholesky_scalar(f.as_mut(), ncols).expect("probe matrix is SPD");
    });
    let chol_blocked_s = time_min(3, || {
        f.as_mut().copy_from(spd.as_ref());
        sc_dense::partial_cholesky_blocked(f.as_mut(), ncols).expect("probe matrix is SPD");
    });
    let ncf = ncols as f64; // sc-analyze: allow(precision-discipline)
    let chol = KernelRow {
        name: "cholesky",
        flops: ncf * ncf * ncf / 3.0,
        scalar_s: chol_scalar_s,
        blocked_s: chol_blocked_s,
    };

    // binned vs plain CSR SpMV on an irregular-row-length matrix (the
    // boundary-map shape: mostly tiny rows of varying length)
    let rows = 40_000;
    let mut coo = Coo::new(rows, rows);
    let mut s = 11u64;
    for i in 0..rows {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let len = ((s >> 33) % 4 + 1) as usize;
        for d in 0..len {
            coo.push(i, (i + d * 7) % rows, 1.0 + d as f64); // sc-analyze: allow(precision-discipline)
        }
    }
    let m = coo.to_csr();
    let plan = BinnedPlan::of(&m);
    let xv: Vec<f64> = (0..rows).map(|i| (i % 17) as f64 - 8.0).collect(); // sc-analyze: allow(precision-discipline)
    let mut yv = vec![0.0; rows];
    let spmv_plain_s = time_min(5, || {
        m.spmv(1.0, &xv, 0.0, &mut yv);
    });
    let spmv_binned_s = time_min(5, || {
        binned_spmv(&plan, &m, 1.0, &xv, 0.0, &mut yv);
    });
    let spmv = KernelRow {
        name: "spmv",
        flops: 2.0 * m.nnz() as f64, // sc-analyze: allow(precision-discipline)
        scalar_s: spmv_plain_s,
        blocked_s: spmv_binned_s,
    };

    // ---- axis 2: nominal vs calibrated cost-model predictions -----------
    let rates = MicrokernelRates::probe();
    let nominal_host = DeviceSpec::host();
    let w = BatchWorkload::build(3, 4);
    let items = w.items();
    let cfg = ScConfig::optimized(false, false);
    let ests: Vec<_> = items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let params = cfg.resolve(false, it.l, it.bt);
            estimate_cost(&nominal_host, it.l, it.bt, &params, i)
        })
        .collect();
    let predicted_nominal: f64 = ests.iter().map(|e| e.seconds_on(&nominal_host)).sum();
    let predicted_calibrated: f64 = ests.iter().map(|e| rates.assembly_seconds(e)).sum();
    let result = AssemblySession::new(Backend::cpu(), cfg).assemble(&items);
    let realized = result.report.total_seconds;
    let gap = |predicted: f64| (predicted - realized).abs() / realized;
    let gap_nominal = gap(predicted_nominal);
    let gap_calibrated = gap(predicted_calibrated);

    // ---- report ---------------------------------------------------------
    let mut table = Table::new(
        &format!("Cache-blocked kernels vs scalar references (n = {n}, best-of-N wall clock)"),
        &["kernel", "scalar", "blocked", "speedup", "blocked GF/s"],
    );
    let kernels = [&gemm, &trsm, &syrk, &chol, &spmv];
    for k in kernels {
        table.row(vec![
            k.name.to_string(),
            ms(k.scalar_s),
            ms(k.blocked_s),
            format!("{:.2}x", k.speedup()),
            format!("{:.2}", k.blocked_gflops()),
        ]);
    }
    table.emit("kernels");
    println!(
        "calibration: host assembly of the headline batch realized {} — predicted {} nominal \
         (gap {:.1}%) vs {} calibrated (gap {:.1}%); probe rates: gemm {:.1} / trsm {:.1} / \
         syrk {:.1} / chol {:.1} GF/s, spmv {:.1} GB/s.",
        ms(realized),
        ms(predicted_nominal),
        100.0 * gap_nominal,
        ms(predicted_calibrated),
        100.0 * gap_calibrated,
        rates.gemm_gflops,
        rates.trsm_gflops,
        rates.syrk_gflops,
        rates.chol_gflops,
        rates.spmv_gbps,
    );

    if let Some(path) = &json_path {
        let mut kernel_rows = Json::obj();
        for k in kernels {
            kernel_rows = kernel_rows.field(
                k.name,
                Json::obj()
                    .field("scalar_s", k.scalar_s)
                    .field("blocked_s", k.blocked_s)
                    .field("speedup", k.speedup())
                    .field("blocked_gflops", k.blocked_gflops()),
            );
        }
        let record = bench_record(
            "kernels",
            Json::obj()
                .field("name", "blocked_kernels")
                .field("n", n)
                .field("calibration_batch", "headline")
                .field("n_subdomains", w.n_subdomains()),
            Json::obj()
                .field("kernels", kernel_rows)
                .field("gemm_gate", GEMM_GATE)
                .field("probe_gemm_gflops", rates.gemm_gflops)
                .field("probe_trsm_gflops", rates.trsm_gflops)
                .field("probe_syrk_gflops", rates.syrk_gflops)
                .field("probe_chol_gflops", rates.chol_gflops)
                .field("probe_spmv_gbps", rates.spmv_gbps)
                .field("realized_host_s", realized)
                .field("predicted_nominal_s", predicted_nominal)
                .field("predicted_calibrated_s", predicted_calibrated)
                .field("gap_nominal", gap_nominal)
                .field("gap_calibrated", gap_calibrated),
        );
        if let Err(err) = write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // ---- hard gates ------------------------------------------------------
    let mut failed = false;
    if gemm.speedup() < GEMM_GATE {
        eprintln!(
            "FAIL: blocked gemm at n = {n} is {:.2}x scalar (gate >= {GEMM_GATE}x): \
             blocked {} vs scalar {}",
            gemm.speedup(),
            ms(gemm.blocked_s),
            ms(gemm.scalar_s),
        );
        failed = true;
    }
    if gap_calibrated >= gap_nominal {
        eprintln!(
            "FAIL: calibrated host predictions must track realized assembly time more closely \
             than nominal ones (nominal gap {:.1}%, calibrated gap {:.1}%)",
            100.0 * gap_nominal,
            100.0 * gap_calibrated,
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
