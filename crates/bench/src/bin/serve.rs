//! `serve` perf gate: the persistent multi-tenant solver service under a
//! 4-tenant mixed workload, cold then warm, through the real JSON-lines
//! intake (`sc_serve::encode_request` → `ServeHandle::request`).
//!
//! Three hard gates (non-zero exit on regression):
//!
//! 1. **warm runs entirely from cache** — resubmitting the whole mixed
//!    workload after the cold drain must hit the prepared-state cache on
//!    every job (one keying bug, or a budget that silently evicts live
//!    entries, and this trips);
//! 2. **warm-cache preprocessing throughput ≥ [`PREP_GATE`]× cold** — the
//!    preprocessing seconds paid per job in the warm phase must be at
//!    least 3× smaller than the cold phase's (cold pays the symbolic +
//!    numeric factorizations once per distinct spec; warm pays none);
//! 3. **fairness under contention ≤ [`FAIR_GATE`]** — re-running the warm
//!    workload under a device-second budget that cuts the drain roughly in
//!    half, the realized device-seconds served per tenant (all weights
//!    equal) must stay within a [`FAIR_GATE`] max/min ratio: the deficit
//!    round-robin may not starve a tenant whose jobs are coarser or whose
//!    queue is deeper.
//!
//! End-to-end wall throughput (jobs/s, cold vs warm) is reported for the
//! record without a hard gate — on the warm path the remaining cost is the
//! real assembly/PCPG compute, which the cache deliberately does not skip.
//!
//! Usage: `cargo run -p sc_bench --release --bin serve [--json PATH]`

use sc_bench::{bench_record, ms, write_json, Json, Table};
use sc_serve::{
    encode_request, BackendTag, GluingTag, JobKind, JobRequest, MeshSpec, PrecisionTag, Request,
    ServeHandle, ServeOptions, TenantStats,
};
use std::time::Instant;

/// Minimum admissible cold/warm per-job preprocessing ratio.
const PREP_GATE: f64 = 3.0;

/// Maximum admissible max/min per-tenant realized device-seconds ratio
/// under the contended (budgeted) warm run, at equal weights.
const FAIR_GATE: f64 = 1.5;

/// Fraction of the cold drain's realized device-seconds granted as the
/// contended run's budget — low enough that every tenant is still
/// backlogged at the cutoff, so the shares measure the scheduler, not
/// queue exhaustion.
const BUDGET_FRAC: f64 = 0.5;

/// One tenant of the mixed workload: a uniform job spec, repeated.
struct TenantLoad {
    name: &'static str,
    kind: JobKind,
    dim: u8,
    cells: usize,
    subs: (usize, usize, usize),
    jobs: usize,
}

/// The 4-tenant mix: small-2D-heavy, coarse-3D, assembly-only, and a
/// mid-size 2D solver — four distinct content keys, four distinct job
/// granularities, equal scheduler weights.
const TENANTS: &[TenantLoad] = &[
    TenantLoad {
        name: "alpha",
        kind: JobKind::Solve,
        dim: 2,
        cells: 8,
        subs: (2, 2, 1),
        jobs: 24,
    },
    TenantLoad {
        name: "bravo",
        kind: JobKind::Solve,
        dim: 3,
        cells: 6,
        subs: (2, 2, 2),
        jobs: 10,
    },
    TenantLoad {
        name: "charlie",
        kind: JobKind::Assemble,
        dim: 2,
        cells: 16,
        subs: (2, 2, 1),
        jobs: 24,
    },
    TenantLoad {
        name: "delta",
        kind: JobKind::Solve,
        dim: 2,
        cells: 12,
        subs: (3, 3, 1),
        jobs: 10,
    },
];

fn parse_args() -> Option<std::path::PathBuf> {
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    json
}

fn submit_line(t: &TenantLoad, phase: &str, i: usize) -> String {
    encode_request(&Request::Submit(JobRequest {
        kind: t.kind,
        tenant: t.name.to_string(),
        job: format!("{phase}-{i}"),
        spec: MeshSpec {
            dim: t.dim,
            cells: t.cells,
            subs: t.subs,
            gluing: GluingTag::Redundant,
        },
        precision: PrecisionTag::F64,
        backend: BackendTag::Cluster,
        scale: 1.0,
        weight: None, // equal weights: the fairness gate's precondition
        timeout_s: None,
    }))
}

/// Submit one phase's full mixed workload through the wire protocol,
/// asserting every job is admitted.
fn submit_all(svc: &mut ServeHandle, phase: &str) -> usize {
    let mut n = 0;
    for t in TENANTS {
        for i in 0..t.jobs {
            let reply = svc.request(&submit_line(t, phase, i));
            assert!(
                reply[0].contains("\"event\":\"accepted\""),
                "perf-gate submissions must be admitted: {}",
                reply[0]
            );
            n += 1;
        }
    }
    n
}

fn run(svc: &mut ServeHandle, budget_s: Option<f64>) {
    svc.request(&encode_request(&Request::Run { budget_s }));
}

/// Per-tenant roll-up snapshot, keyed by tenant name in `TENANTS` order.
fn snapshot(svc: &ServeHandle) -> Vec<TenantStats> {
    let stats = svc.tenant_stats();
    TENANTS
        .iter()
        .map(|t| {
            stats
                .iter()
                .find(|(n, _)| n == t.name)
                .map(|(_, s)| s.clone())
                .unwrap_or_default()
        })
        .collect()
}

fn main() {
    let json_path = parse_args();
    let mut svc = ServeHandle::new(ServeOptions::default());
    let n_jobs = TENANTS.iter().map(|t| t.jobs).sum::<usize>();

    // ---- phase 1: cold drain (empty cache, full budget) -----------------
    let t0 = Instant::now();
    submit_all(&mut svc, "cold");
    run(&mut svc, None);
    let cold_wall = t0.elapsed().as_secs_f64();
    let cold = snapshot(&svc);
    let cold_cache = svc.cache_stats();
    let cold_prep: f64 = cold.iter().map(|s| s.prep_s).sum();
    let cold_device: f64 = cold.iter().map(|s| s.device_s).sum();
    assert_eq!(
        cold.iter().map(|s| s.jobs_done).sum::<usize>(),
        n_jobs,
        "cold phase must drain the whole workload"
    );

    // ---- phase 2a: warm, contended (device-second budget) ---------------
    let budget = BUDGET_FRAC * cold_device;
    let t1 = Instant::now();
    submit_all(&mut svc, "warm");
    run(&mut svc, Some(budget));
    let contended = snapshot(&svc);
    let shares: Vec<f64> = contended
        .iter()
        .zip(&cold)
        .map(|(now, before)| now.device_s - before.device_s)
        .collect();
    let share_max = shares.iter().cloned().fold(f64::MIN, f64::max);
    let share_min = shares.iter().cloned().fold(f64::MAX, f64::min);
    let fairness = share_max / share_min.max(1e-300);

    // ---- phase 2b: drain the warm remainder ------------------------------
    run(&mut svc, None);
    let warm_wall = t1.elapsed().as_secs_f64();
    let warm = snapshot(&svc);
    let warm_cache = svc.cache_stats();
    let warm_prep: f64 = warm.iter().map(|s| s.prep_s).sum::<f64>() - cold_prep;
    let warm_hits = warm_cache.hits - cold_cache.hits;
    let warm_misses = warm_cache.misses - cold_cache.misses;
    assert_eq!(
        warm.iter().map(|s| s.jobs_done).sum::<usize>(),
        2 * n_jobs,
        "warm phase must drain the whole workload"
    );

    // warm prep per job can be exactly 0.0 (every hit skips preprocessing
    // entirely); report the ratio against a floor so the table stays finite
    let cold_prep_per_job = cold_prep / n_jobs as f64; // sc-analyze: allow(precision-discipline)
    let warm_prep_per_job = warm_prep / n_jobs as f64; // sc-analyze: allow(precision-discipline)
    let prep_speedup = cold_prep_per_job / warm_prep_per_job.max(1e-12);

    // ---- report ----------------------------------------------------------
    let mut table = Table::new(
        &format!(
            "sc_serve 4-tenant mixed workload ({n_jobs} jobs/phase, equal weights, \
             budgeted warm run at {BUDGET_FRAC:.2}x cold device-seconds)"
        ),
        &[
            "tenant",
            "jobs",
            "cold prep",
            "cold device",
            "contended share",
            "warm hit ratio",
        ],
    );
    for (i, t) in TENANTS.iter().enumerate() {
        let warm_hit_ratio = warm[i].hit_ratio();
        table.row(vec![
            t.name.to_string(),
            t.jobs.to_string(),
            ms(cold[i].prep_s),
            ms(cold[i].device_s),
            ms(shares[i]),
            format!("{warm_hit_ratio:.2}"),
        ]);
    }
    table.emit("serve");
    println!(
        "serve: cold drain {} wall ({} preprocessing, {} device) vs warm {} wall \
         ({} preprocessing); warm cache {warm_hits} hits / {warm_misses} misses; \
         per-job prep speedup {prep_speedup:.1}x; contended fairness max/min {fairness:.3} \
         (budget {}).",
        ms(cold_wall),
        ms(cold_prep),
        ms(cold_device),
        ms(warm_wall),
        ms(warm_prep),
        ms(budget),
    );

    if let Some(path) = &json_path {
        let mut tenants_json = Json::obj();
        for (i, t) in TENANTS.iter().enumerate() {
            tenants_json = tenants_json.field(
                t.name,
                Json::obj()
                    .field("jobs", t.jobs)
                    .field("cold_prep_s", cold[i].prep_s)
                    .field("cold_device_s", cold[i].device_s)
                    .field("contended_device_s", shares[i])
                    .field("warm_cache_hits", warm[i].cache_hits - cold[i].cache_hits)
                    .field("queue_wait_s", warm[i].queue_wait_s),
            );
        }
        let record = bench_record(
            "serve",
            Json::obj()
                .field("name", "serve_multi_tenant")
                .field("n_tenants", TENANTS.len())
                .field("n_jobs_per_phase", n_jobs)
                .field("budget_frac", BUDGET_FRAC),
            Json::obj()
                .field("tenants", tenants_json)
                .field("cold_wall_s", cold_wall)
                .field("warm_wall_s", warm_wall)
                .field("cold_prep_s", cold_prep)
                .field("warm_prep_s", warm_prep)
                .field("prep_speedup", prep_speedup)
                .field("prep_gate", PREP_GATE)
                .field("fairness_ratio", fairness)
                .field("fairness_gate", FAIR_GATE)
                .field("cache_hits", warm_cache.hits)
                .field("cache_misses", warm_cache.misses)
                .field("cache_evictions", warm_cache.evictions)
                .field("cache_bytes", warm_cache.bytes)
                .field("cache_budget_bytes", warm_cache.budget_bytes),
        );
        if let Err(err) = write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // ---- hard gates ------------------------------------------------------
    let mut failed = false;
    if warm_hits != n_jobs || warm_misses != 0 {
        eprintln!(
            "FAIL: the warm phase must run entirely from cache \
             ({warm_hits} hits / {warm_misses} misses over {n_jobs} jobs)"
        );
        failed = true;
    }
    if PREP_GATE * warm_prep > cold_prep {
        eprintln!(
            "FAIL: warm-cache preprocessing throughput is {prep_speedup:.2}x cold \
             (gate >= {PREP_GATE}x): warm {} vs cold {}",
            ms(warm_prep),
            ms(cold_prep),
        );
        failed = true;
    }
    if fairness > FAIR_GATE {
        eprintln!(
            "FAIL: contended per-tenant device-seconds ratio {fairness:.3} exceeds \
             {FAIR_GATE} at equal weights (shares: {})",
            TENANTS
                .iter()
                .zip(&shares)
                .map(|(t, s)| format!("{} {}", t.name, ms(*s)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
