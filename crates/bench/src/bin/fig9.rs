//! Figure 9: preprocessing time of the eight dual-operator approaches of
//! Table 2 (implicit/explicit × library/algorithm), per subdomain, over the
//! subdomain-size ladder.
//!
//! Usage: `cargo run -p sc-bench --release --bin fig9 [--full]`

use sc_bench::{ladder_2d, ladder_3d, BenchArgs, Table};
use sc_fem::{Gluing, HeatProblem};
use sc_feti::{preprocess_approach, DualOpApproach};
use sc_gpu::{Device, DeviceSpec};

fn main() {
    let args = BenchArgs::parse();
    let device = Device::new(DeviceSpec::a100(), 4);

    for dim in [2usize, 3] {
        let ladder = if dim == 2 {
            ladder_2d(args.max_dofs_cpu)
        } else {
            ladder_3d(args.max_dofs_cpu)
        };
        let mut headers: Vec<&str> = vec!["dofs"];
        headers.extend(DualOpApproach::ALL.iter().map(|a| a.paper_name()));
        let mut table = Table::new(
            &format!("Fig 9: dual-operator preprocessing, {dim}D [ms per subdomain]"),
            &headers,
        );

        for &c in &ladder {
            let problem = if dim == 2 {
                HeatProblem::build_2d(c, (3, 3), Gluing::Redundant)
            } else {
                HeatProblem::build_3d(c, (2, 2, 2), Gluing::Redundant)
            };
            let nsub = problem.subdomains.len() as f64;
            let mut row = vec![problem.dofs_per_subdomain().to_string()];
            for approach in DualOpApproach::ALL {
                let prepared = preprocess_approach(&problem, approach, Some(&device));
                row.push(format!("{:.3}", prepared.report.total_s() / nsub * 1e3));
            }
            table.row(row);
        }
        table.emit(&format!("fig9_{dim}d"));
    }
    println!("totals = measured factorization wall + measured CPU assembly wall +");
    println!("simulated GPU assembly makespan (GPU columns mix measured and simulated");
    println!("time; see EXPERIMENTS.md). Paper shape to check: expl_mkl fastest explicit");
    println!("in 2D; expl_gpu_opt fastest explicit for large 3D subdomains, up to 9.8x");
    println!("faster than expl_mkl and only ~2.3x slower than implicit preprocessing.");
}
