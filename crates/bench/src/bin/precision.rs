//! Mixed-precision perf gate: what the `f32` working precision buys on the
//! mixed-fit workload, measured on the two axes where the paper's memory
//! argument lives:
//!
//! - **arena footprint** — the same batch assembled through the scheduled
//!   GPU backend at `Precision::F64` and `Precision::f32_refined()`; the
//!   f32 arena high water must come in at ≤ [`MEMORY_GATE`] × the f64 one
//!   (the ideal ratio is 0.5 — element payloads halve while index arrays
//!   stay the same size, and the gate leaves headroom above it);
//! - **planner admissions** — the hybrid planner priced at f32
//!   (`estimate_cost_of::<f32>`) must admit **strictly more** subdomains
//!   explicitly than the f64 pricing at the *same* arena capacity, i.e.
//!   halving the element width really converts spilled subdomains into
//!   explicit residents.
//!
//! Doubles as the CI perf-gate for the precision subsystem: it **fails**
//! (non-zero exit) when either axis regresses.
//!
//! Usage: `cargo run -p sc_bench --release --bin precision [--iters N] [--json PATH]`

use sc_bench::{bench_record_at, write_json, BatchWorkload, Json, Table};
use sc_core::{
    estimate_apply_of, estimate_cost_of, plan_hybrid, ApplyEstimate, AssemblySession, Backend,
    CostEstimate, DeviceSlot, Formulation, HybridForce, HybridPlan, HybridPlanOptions, Precision,
    ScConfig, ScheduleOptions,
};
use sc_gpu::{Device, DevicePool, DeviceSpec};

/// Maximum admissible f32/f64 arena high-water ratio.
const MEMORY_GATE: f64 = 0.55;

fn parse_args() -> (f64, Option<std::path::PathBuf>) {
    let mut iters = 40.0f64;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters value");
            }
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (iters, json)
}

fn main() {
    let (iters, json_path) = parse_args();
    let w = BatchWorkload::build_mixed_fit();
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);

    // ---- axis 1: realized arena high water at both precisions -----------
    // One scheduled device with an ample arena, so the high water reflects
    // the workload's concurrent temporary footprint, not admission gating.
    let run_at = |precision: Precision| {
        let device = Device::new(DeviceSpec::a100(), 4);
        AssemblySession::new(
            Backend::gpu_with(device, ScheduleOptions::default()).precision(precision),
            cfg,
        )
        .assemble(&items)
    };
    let res64 = run_at(Precision::F64);
    let res32 = run_at(Precision::f32_refined());
    assert_eq!(res64.report.precision, Precision::F64);
    assert!(
        res32.report.precision.is_f32(),
        "f32 session must stamp its precision into the report"
    );
    let hw64 = res64.report.temp_high_water();
    let hw32 = res32.report.temp_high_water();
    assert!(hw64 > 0, "scheduled assembly must record temp high water");
    let ratio = hw32 as f64 / hw64 as f64;

    // ---- axis 2: hybrid admissions at a fixed arena capacity ------------
    let ref_spec = DeviceSpec::a100();
    let price = |f32_width: bool| -> (Vec<CostEstimate>, Vec<ApplyEstimate>) {
        items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let params = cfg.resolve(true, it.l, it.bt);
                if f32_width {
                    let (l, bt) = (it.l.cast::<f32>(), it.bt.cast::<f32>());
                    (
                        estimate_cost_of::<f32>(&ref_spec, &l, &bt, &params, i),
                        estimate_apply_of::<f32>(&l, &bt, i),
                    )
                } else {
                    (
                        estimate_cost_of::<f64>(&ref_spec, it.l, it.bt, &params, i),
                        estimate_apply_of::<f64>(it.l, it.bt, i),
                    )
                }
            })
            .unzip()
    };
    let (costs64, applies64) = price(false);
    let (costs32, applies32) = price(true);

    // size the arena between the f64 footprint quartiles (exactly like the
    // hybrid bin) so the top quarter cannot be admitted at f64 width
    let mut temps: Vec<usize> = costs64.iter().map(|c| c.temp_bytes).collect();
    temps.sort_unstable();
    let q = temps.len() - temps.len() / 4;
    let arena = (temps[q - 1] + temps[q]) / 2;
    let spec = DeviceSpec {
        memory_bytes: 2 * arena,
        ..ref_spec
    };
    let pool = DevicePool::uniform(spec, 2, 4);
    let slots: Vec<DeviceSlot> = pool.devices().iter().map(|d| DeviceSlot::of(d)).collect();

    let plan_with =
        |costs: &[CostEstimate], applies: &[ApplyEstimate], force: HybridForce| -> HybridPlan {
            plan_hybrid(
                costs,
                applies,
                &slots,
                &HybridPlanOptions::default()
                    .with_iters(iters)
                    .with_force(force),
            )
        };
    // AllExplicit isolates pure admissibility: admitted = not spilled
    let expl64 = plan_with(&costs64, &applies64, HybridForce::AllExplicit);
    let expl32 = plan_with(&costs32, &applies32, HybridForce::AllExplicit);
    let admitted64 = w.n_subdomains() - expl64.spilled.len();
    let admitted32 = w.n_subdomains() - expl32.spilled.len();
    assert_eq!(
        expl64.spilled.len(),
        w.n_subdomains() / 4,
        "the f64 pricing must spill exactly the top quarter, got {:?}",
        expl64.spilled
    );
    // the free-choice plans, for the record (what the planner does with
    // the extra headroom, not part of the hard gate)
    let auto64 = plan_with(&costs64, &applies64, HybridForce::Auto);
    let auto32 = plan_with(&costs32, &applies32, HybridForce::Auto);

    let mut table = Table::new(
        &format!(
            "Mixed precision on the mixed-fit batch ({} subdomains, arena {arena} B, {iters:.0} expected iterations)",
            w.n_subdomains()
        ),
        &[
            "precision",
            "arena high water [B]",
            "explicit admitted",
            "auto expl-gpu",
            "auto implicit",
        ],
    );
    let mut row = |p: Precision, hw: usize, admitted: usize, auto: &HybridPlan| {
        table.row(vec![
            p.name().to_string(),
            hw.to_string(),
            format!("{admitted}/{}", w.n_subdomains()),
            auto.count_of(Formulation::ExplicitGpu).to_string(),
            auto.count_of(Formulation::Implicit).to_string(),
        ]);
    };
    row(Precision::F64, hw64, admitted64, &auto64);
    row(Precision::f32_refined(), hw32, admitted32, &auto32);
    table.emit("precision");
    println!(
        "arena high water: f32 {hw32} B / f64 {hw64} B = {ratio:.3} (gate <= {MEMORY_GATE}); \
         explicit admissions at {arena} B: f64 {admitted64} -> f32 {admitted32}."
    );

    if let Some(path) = &json_path {
        let record = bench_record_at(
            "precision",
            &format!(
                "{}-vs-{}",
                Precision::F64.name(),
                Precision::f32_refined().name()
            ),
            Json::obj()
                .field("name", "mixed_fit")
                .field("n_subdomains", w.n_subdomains())
                .field("arena_bytes", arena)
                .field("n_devices", pool.n_devices())
                .field("expected_iters", iters),
            Json::obj()
                .field("arena_high_water_f64_bytes", hw64)
                .field("arena_high_water_f32_bytes", hw32)
                .field("arena_ratio", ratio)
                .field("explicit_admitted_f64", admitted64)
                .field("explicit_admitted_f32", admitted32)
                .field(
                    "auto_explicit_gpu_f64",
                    auto64.count_of(Formulation::ExplicitGpu),
                )
                .field(
                    "auto_explicit_gpu_f32",
                    auto32.count_of(Formulation::ExplicitGpu),
                )
                .field("memory_gate", MEMORY_GATE),
        );
        if let Err(err) = write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // hard gates: the memory ratio and the strict admission win
    let mut failed = false;
    if ratio > MEMORY_GATE {
        eprintln!(
            "FAIL: f32 arena high water {hw32} B is {ratio:.3}x the f64 {hw64} B \
             (gate <= {MEMORY_GATE})"
        );
        failed = true;
    }
    if admitted32 <= admitted64 {
        eprintln!(
            "FAIL: f32 pricing must admit strictly more explicit subdomains than f64 \
             at arena {arena} B (f64 {admitted64}, f32 {admitted32})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
