//! Multi-node **weak-scaling** experiment: a fixed 16-subdomain per-node
//! batch replicated onto simulated clusters of 1, 2, and 4 single-A100
//! nodes behind an InfiniBand-class interconnect. Per node the work is
//! constant, so the ideal makespan is flat across cluster sizes — what the
//! table reports is how much of that ideal the hierarchical partitioner
//! plus the priced inter-node lambda exchange preserves
//! (`efficiency(N) = makespan(1 node) / makespan(N nodes)`).
//!
//! Doubles as the CI smoke test for the multi-node backend: it **fails**
//! (non-zero exit) if the 4-node weak-scaling efficiency drops below 0.8,
//! or if sharding across nodes changes the numerics (every replica must be
//! bitwise the CPU reference assembly).
//!
//! Usage: `cargo run -p sc_bench --release --bin multinode [-- --json PATH]`

use sc_bench::{BatchWorkload, Table};
use sc_core::{AssemblySession, Backend, ScConfig};
use sc_gpu::{DeviceSpec, Interconnect, NodePool};

const N_STREAMS: usize = 4;
const DEVICES_PER_NODE: usize = 1;
const NODE_COUNTS: [usize; 3] = [1, 2, 4];
const EFFICIENCY_GATE: f64 = 0.8;

fn parse_args() -> Option<std::path::PathBuf> {
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    json
}

fn main() {
    let json_path = parse_args();
    let base = BatchWorkload::build_skewed(2, &[14, 10, 12, 8]);
    let base_items = base.items();
    let cfg = ScConfig::optimized(true, false);

    // sequential CPU reference: the replicas alias the same factors, so one
    // replica's worth of reference assemblies covers every cluster size
    let cpu = AssemblySession::new(Backend::cpu(), cfg).assemble(&base_items);

    let mut table = Table::new(
        &format!(
            "Weak scaling of the multi-node backend ({} subdomains/node, {DEVICES_PER_NODE}x A100/node, {N_STREAMS} streams, InfiniBand link)",
            base.n_subdomains()
        ),
        &[
            "nodes",
            "subdomains",
            "sim makespan [ms]",
            "weak efficiency",
            "exchange [KiB]",
            "max exchange [us]",
        ],
    );

    let mut baseline: Option<f64> = None;
    let mut efficiency4 = 0.0;
    let mut node_metrics: Vec<(usize, f64, f64)> = Vec::new();
    let mut last = None;
    for n_nodes in NODE_COUNTS {
        let items: Vec<_> = (0..n_nodes).flat_map(|_| base_items.clone()).collect();
        let pool = NodePool::uniform(
            DeviceSpec::a100(),
            n_nodes,
            DEVICES_PER_NODE,
            N_STREAMS,
            Interconnect::infiniband(),
        );
        let res = AssemblySession::new(Backend::multi_node(pool), cfg).assemble(&items);

        // numerics: every replica bitwise equal to the CPU reference
        for i in 0..items.len() {
            assert_eq!(
                res.f[i],
                cpu.f[i % base_items.len()],
                "multi-node sharding changed numerics at subdomain {i} ({n_nodes} nodes)"
            );
        }

        let makespan = res.report.makespan;
        let base_t = *baseline.get_or_insert(makespan);
        let efficiency = base_t / makespan;
        let exchange_bytes: f64 = res.report.nodes.iter().map(|n| n.exchange_bytes).sum();
        let exchange_max = res
            .report
            .nodes
            .iter()
            .map(|n| n.exchange_seconds)
            .fold(0.0, f64::max);
        table.row(vec![
            format!("{n_nodes}"),
            format!("{}", items.len()),
            format!("{:.3}", makespan * 1e3),
            format!("{:.0}%", 100.0 * efficiency),
            format!("{:.1}", exchange_bytes / 1024.0),
            format!("{:.1}", exchange_max * 1e6),
        ]);
        node_metrics.push((n_nodes, makespan, efficiency));
        if n_nodes == NODE_COUNTS[NODE_COUNTS.len() - 1] {
            efficiency4 = efficiency;
            last = Some(res);
        }
    }

    let last = last.expect("largest cluster size ran");
    table.emit("multinode");
    let shares: Vec<usize> = last
        .report
        .nodes
        .iter()
        .map(|n| n.subdomains.len())
        .collect();
    println!(
        "4-node weak-scaling efficiency: {:.0}% (per-node shares {shares:?})",
        100.0 * efficiency4
    );

    if let Some(path) = &json_path {
        let mut metrics = sc_bench::Json::obj().field("weak_efficiency_4node", efficiency4);
        for (n, makespan, efficiency) in &node_metrics {
            metrics = metrics
                .field(&format!("makespan_{n}node_s"), *makespan)
                .field(&format!("weak_efficiency_{n}node"), *efficiency);
        }
        metrics = metrics.field(
            "exchange_bytes_4node",
            last.report
                .nodes
                .iter()
                .map(|n| n.exchange_bytes)
                .sum::<f64>(),
        );
        let record = sc_bench::bench_record_on(
            "multinode",
            sc_core::Precision::F64.name(),
            &format!(
                "{}x{DEVICES_PER_NODE}xa100",
                NODE_COUNTS[NODE_COUNTS.len() - 1]
            ),
            sc_bench::Json::obj()
                .field("name", "weak16")
                .field("subdomains_per_node", base.n_subdomains())
                .field("size_spread", base.size_spread())
                .field("n_streams", N_STREAMS)
                .field("link", "infiniband"),
            metrics,
        )
        .field("assembly_report", sc_bench::report_json(&last.report));
        if let Err(err) = sc_bench::write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // smoke gate: fixed per-node work must keep >= 80% of the 1-node
    // throughput at 4 nodes (partition balance + priced exchange overhead)
    if efficiency4 < EFFICIENCY_GATE {
        eprintln!(
            "FAIL: 4-node weak-scaling efficiency {:.0}% is below the {:.0}% gate",
            100.0 * efficiency4,
            100.0 * EFFICIENCY_GATE
        );
        std::process::exit(1);
    }
}
