//! Hybrid explicit/implicit dual-operator experiment: the per-subdomain
//! formulation decision (`sc_core::plan_hybrid`) on the mixed-fit workload,
//! where ~¼ of the subdomains exceed the device arena and must spill.
//!
//! Compares, at the same expected PCPG iteration count, the predicted
//! simulated cost-to-solution (Σ assembly + iters × apply) of:
//!
//! - **hybrid** — per-subdomain minimum under arena admissibility;
//! - **all-explicit** — the forced-explicit collapse, whose oversized
//!   subdomains *must* fail over to explicit-CPU assembly (the spill);
//! - **all-implicit** — no assembly, every application a solve pipeline.
//!
//! The explicit-GPU share is then actually assembled through the cluster
//! driver to report the realized makespan/arena high water and to verify
//! the numerics stay bitwise identical to the CPU reference.
//!
//! Doubles as the CI perf-gate for the hybrid planner: it **fails**
//! (non-zero exit) unless hybrid beats both uniform strategies by ≥ 1.3×,
//! the all-explicit baseline really spilled, and the sharded numerics match.
//!
//! Usage: `cargo run -p sc_bench --release --bin hybrid [--iters N] [--json PATH]`

use sc_bench::{bench_record, write_json, BatchWorkload, Json, Table};
use sc_core::{
    assemble_sc, estimate_apply, estimate_cost, plan_hybrid, ApplyEstimate, AssemblySession,
    Backend, CostEstimate, CpuExec, DeviceSlot, Formulation, HybridForce, HybridPlan,
    HybridPlanOptions, ScConfig,
};
use sc_gpu::{DevicePool, DeviceSpec};

const GATE: f64 = 1.3;

fn parse_args() -> (f64, Option<std::path::PathBuf>, bool) {
    let mut iters = 40.0f64;
    let mut json = None;
    let mut verbose = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters value");
            }
            "--json" => json = Some(it.next().expect("--json needs a path").into()),
            "--verbose" => verbose = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (iters, json, verbose)
}

fn main() {
    let (iters, json_path, verbose) = parse_args();
    let w = BatchWorkload::build_mixed_fit();
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);

    // per-subdomain estimates under the reference spec
    let ref_spec = DeviceSpec::a100();
    let (costs, applies): (Vec<CostEstimate>, Vec<ApplyEstimate>) = items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let params = cfg.resolve(true, it.l, it.bt);
            (
                estimate_cost(&ref_spec, it.l, it.bt, &params, i),
                estimate_apply(it.l, it.bt, i),
            )
        })
        .unzip();

    // size the arena between the workload's footprint quartiles so the top
    // quarter of the batch cannot be admitted explicitly
    let mut temps: Vec<usize> = costs.iter().map(|c| c.temp_bytes).collect();
    temps.sort_unstable();
    let q = temps.len() - temps.len() / 4; // first index of the top quarter
    let arena = (temps[q - 1] + temps[q]) / 2;
    assert!(
        temps[q - 1] < arena && arena < temps[q],
        "mixed-fit workload must straddle the arena: {temps:?}"
    );
    let spec = DeviceSpec {
        memory_bytes: 2 * arena, // the arena is half of device memory
        ..ref_spec
    };
    let pool = DevicePool::uniform(spec, 2, 4);
    assert_eq!(
        pool.max_arena_capacity(),
        arena,
        "pool arena sizing must match the planner's spill threshold"
    );
    let slots: Vec<DeviceSlot> = pool.devices().iter().map(|d| DeviceSlot::of(d)).collect();

    let plan_with = |force: HybridForce| -> HybridPlan {
        plan_hybrid(
            &costs,
            &applies,
            &slots,
            &HybridPlanOptions::default()
                .with_iters(iters)
                .with_force(force),
        )
    };
    let hybrid = plan_with(HybridForce::Auto);
    let all_expl = plan_with(HybridForce::AllExplicit);
    let all_impl = plan_with(HybridForce::AllImplicit);

    if verbose {
        let host = DeviceSpec::host();
        println!(
            "pool: {} devices x {} streams, arenas {:?} B",
            pool.n_devices(),
            pool.total_streams() / pool.n_devices().max(1),
            pool.arena_capacities()
        );
        println!("per-subdomain candidate costs (seconds):");
        for (c, a) in costs.iter().zip(&applies) {
            println!(
                "  #{:<2} n={:<5} m={:<4} temp={:>9}B | gpu asm {:.3e} apply {:.3e} | \
                 cpu asm {:.3e} apply {:.3e} | impl apply {:.3e} | chose {:?}",
                c.index,
                c.n_dofs,
                c.n_lambda,
                c.temp_bytes,
                c.seconds_on(&ref_spec),
                a.explicit_seconds_on(&ref_spec),
                c.seconds_on(&host),
                a.explicit_seconds_on(&host),
                a.implicit_seconds_on(&host),
                hybrid.choices[c.index].formulation,
            );
        }
    }

    // the all-explicit baseline must really have spilled: its oversized
    // quarter failed over off the pool
    let n_spilled = all_expl.spilled.len();
    assert_eq!(
        n_spilled,
        temps.len() / 4,
        "exactly the top quarter must spill, got {:?}",
        all_expl.spilled
    );

    // realize the hybrid plan's explicit-GPU share through the cluster
    // driver: realized makespan, arena high water, bitwise verification
    let gpu_idx = hybrid.indices_of(Formulation::ExplicitGpu);
    let (realized_makespan, arena_high_water) = if gpu_idx.is_empty() {
        (0.0, 0)
    } else {
        let share: Vec<sc_core::BatchItem<'_>> = gpu_idx.iter().map(|&g| items[g]).collect();
        let res = AssemblySession::new(Backend::cluster(std::sync::Arc::clone(&pool)), cfg)
            .assemble(&share);
        for (local, &g) in gpu_idx.iter().enumerate() {
            let reference = assemble_sc(&mut CpuExec, items[g].l, items[g].bt, &cfg);
            assert_eq!(
                res.f[local], reference,
                "hybrid GPU share diverged from the CPU reference at subdomain {g}"
            );
        }
        (res.report.makespan, res.report.temp_high_water())
    };
    assert!(arena_high_water <= arena, "arena oversubscribed");

    let mut table = Table::new(
        &format!(
            "Hybrid dual operator on the mixed-fit batch ({} subdomains, {n_spilled} over-arena, {iters:.0} expected iterations)",
            w.n_subdomains()
        ),
        &[
            "strategy",
            "expl-gpu",
            "expl-cpu",
            "implicit",
            "assembly [ms]",
            "apply/iter [ms]",
            "cost-to-solution [ms]",
        ],
    );
    let mut row = |name: &str, p: &HybridPlan| {
        let assembly: f64 = p.choices.iter().map(|c| c.assembly_seconds).sum();
        let apply: f64 = p.choices.iter().map(|c| c.apply_seconds).sum();
        table.row(vec![
            name.to_string(),
            p.count_of(Formulation::ExplicitGpu).to_string(),
            p.count_of(Formulation::ExplicitCpu).to_string(),
            p.count_of(Formulation::Implicit).to_string(),
            format!("{:.3}", assembly * 1e3),
            format!("{:.3}", apply * 1e3),
            format!("{:.3}", p.cost_at(iters) * 1e3),
        ]);
    };
    row("hybrid (auto)", &hybrid);
    row("all-explicit (spill→cpu)", &all_expl);
    row("all-implicit", &all_impl);
    table.emit("hybrid");

    let h = hybrid.cost_at(iters);
    let e = all_expl.cost_at(iters);
    let i = all_impl.cost_at(iters);
    println!(
        "hybrid {h:.6}s vs all-explicit {e:.6}s ({:.2}x) and all-implicit {i:.6}s ({:.2}x); \
         realized GPU-share makespan {realized_makespan:.6}s, arena peak {arena_high_water} B of {arena} B.",
        e / h,
        i / h
    );

    if let Some(path) = &json_path {
        let record = bench_record(
            "hybrid",
            Json::obj()
                .field("name", "mixed_fit")
                .field("n_subdomains", w.n_subdomains())
                .field("n_over_arena", n_spilled)
                .field("arena_bytes", arena)
                .field("n_devices", pool.n_devices())
                .field("total_streams", pool.total_streams())
                .field("expected_iters", iters),
            Json::obj()
                .field("hybrid_cost_s", h)
                .field("all_explicit_cost_s", e)
                .field("all_implicit_cost_s", i)
                .field("speedup_vs_all_explicit", e / h)
                .field("speedup_vs_all_implicit", i / h)
                .field("n_explicit_gpu", hybrid.count_of(Formulation::ExplicitGpu))
                .field("n_explicit_cpu", hybrid.count_of(Formulation::ExplicitCpu))
                .field("n_implicit", hybrid.count_of(Formulation::Implicit))
                .field("realized_gpu_makespan_s", realized_makespan)
                .field("arena_high_water_bytes", arena_high_water)
                .field("gate", GATE),
        );
        if let Err(err) = write_json(path, &record) {
            eprintln!("warning: failed to write {}: {err}", path.display());
        }
    }

    // smoke gate: hybrid must beat both uniform strategies by >= GATE
    if e / h < GATE || i / h < GATE {
        eprintln!(
            "FAIL: hybrid cost {h:.6}s must beat all-explicit {e:.6}s and \
             all-implicit {i:.6}s by >= {GATE}x (got {:.2}x / {:.2}x)",
            e / h,
            i / h
        );
        std::process::exit(1);
    }
}
