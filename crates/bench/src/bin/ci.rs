//! Local CI parity: run the exact build/test/clippy/fmt/doc/perf-gate
//! sequence the GitHub workflow runs, in one command, so contributors
//! reproduce CI without guessing which flags the workflow passes. The
//! workflow's perf-gate job calls this same bin (`--stage perf-gate
//! --only <bin>`), which is what keeps the two from drifting.
//!
//! Usage:
//!   cargo run -p sc_bench --bin ci                      # everything
//!   cargo run -p sc_bench --bin ci -- --stage perf-gate # just the bench gates
//!   cargo run -p sc_bench --bin ci -- --stage perf-gate --only hybrid
//!
//! The perf-gate stage runs every `sc_bench` bin with `--json`, writing the
//! per-bin records under `--out` (default `target/bench-json`); a full
//! (non-`--only`) perf-gate run additionally merges them into
//! `results/bench.json`, the committed machine-readable bench trajectory.
//!
//! Scope note: the **hard** perf gates (the bins' exit codes) and the
//! record emission run identically here and in CI. The *warn-only* drift
//! diff against the committed `results/bench.json` currently lives only in
//! the workflow (a tolerant numeric comparison needs a JSON parser, which
//! this offline crate deliberately does not carry) — locally, regenerate
//! and `git diff results/bench.json` for the same signal.

use sc_bench::{git_describe, write_json, Json, BENCH_SCHEMA};
use std::path::PathBuf;
use std::process::Command;

/// The perf-gate bins, in run order. `headline` carries no exit gate of its
/// own (it reports paper-vs-measured ratios); the other three exit non-zero
/// when their speedup gates regress.
const PERF_BINS: &[&str] = &["headline", "schedule", "cluster", "hybrid"];

const STAGES: &[&str] = &[
    "fmt",
    "clippy",
    "deprecation-budget",
    "build",
    "test",
    "doc",
    "examples",
    "perf-gate",
];

/// Every example of the facade crate, built and run by the `examples`
/// stage (the workflow's examples matrix leg drives one each).
const EXAMPLES: &[&str] = &[
    "quickstart",
    "heat2d_feti",
    "heat3d_gpu_assembly",
    "amortization",
    "tuning",
];

/// Files allowed to contain an `allow` of `deprecated`: the legacy re-export
/// sites, the DualMode translation shim, and the old-vs-new bitwise
/// equivalence test. Everything else must be migrated, not silenced.
const DEPRECATION_ALLOWLIST: &[&str] = &[
    "src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/feti/src/compat.rs",
    "tests/api_surface.rs",
];

struct Args {
    stage: String,
    only: Option<String>,
    only_example: Option<String>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        stage: "all".to_string(),
        only: None,
        only_example: None,
        out: PathBuf::from("target/bench-json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stage" => args.stage = it.next().expect("--stage needs a value"),
            "--only" => args.only = Some(it.next().expect("--only needs a bin name")),
            "--only-example" => {
                args.only_example = Some(it.next().expect("--only-example needs a name"))
            }
            "--out" => args.out = it.next().expect("--out needs a path").into(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    if args.stage != "all" && !STAGES.contains(&args.stage.as_str()) {
        eprintln!("unknown stage '{}' — stages: all, {STAGES:?}", args.stage);
        std::process::exit(2);
    }
    if let Some(only) = &args.only {
        if !PERF_BINS.contains(&only.as_str()) {
            eprintln!("unknown perf-gate bin '{only}' — bins: {PERF_BINS:?}");
            std::process::exit(2);
        }
    }
    if let Some(ex) = &args.only_example {
        if !EXAMPLES.contains(&ex.as_str()) {
            eprintln!("unknown example '{ex}' — examples: {EXAMPLES:?}");
            std::process::exit(2);
        }
    }
    args
}

/// The deprecation budget: scan every workspace `.rs` file for an `allow`
/// (or `expect`) of the `deprecated` lint and fail when one appears outside
/// the shim allowlist — deprecated API uses must be migrated, not silenced.
fn deprecation_budget() {
    println!("\n== ci step: deprecation-budget ==");
    // needles assembled at runtime so this scanner does not flag itself;
    // no closing paren so multi-lint attributes still match
    let needles = [
        format!("allow({}", "deprecated"),
        format!("expect({}", "deprecated"),
    ];
    // anchor at the workspace root regardless of the invocation cwd
    // (CARGO_MANIFEST_DIR is crates/bench)
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut stack = Vec::new();
    for dir in ["src", "crates", "tests", "examples"] {
        let path = root.join(dir);
        assert!(
            path.is_dir(),
            "deprecation-budget: workspace directory {} not found — refusing \
             to report a clean budget over nothing",
            path.display()
        );
        stack.push(path);
    }
    let mut violations = Vec::new();
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("deprecation-budget: cannot read {}: {e}", dir.display()));
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                if needles.iter().any(|n| text.contains(n)) {
                    let rel = path
                        .strip_prefix(&root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .into_owned();
                    if !DEPRECATION_ALLOWLIST.iter().any(|a| rel == *a) {
                        violations.push(rel);
                    }
                }
            }
        }
    }
    if !violations.is_empty() {
        violations.sort();
        eprintln!(
            "FAIL [deprecation-budget]: allow/expect of the deprecated lint \
             outside the shim allowlist {DEPRECATION_ALLOWLIST:?}:"
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("deprecation budget clean (allowlist: {DEPRECATION_ALLOWLIST:?})");
}

/// Run one command with inherited stdio; exit the whole driver on failure
/// (mirroring a failing CI step).
fn step(name: &str, mut cmd: Command) {
    println!("\n== ci step: {name} ==");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("FAIL [{name}]: could not launch {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("FAIL [{name}]: exit {status}");
        std::process::exit(1);
    }
}

fn cargo(args: &[&str]) -> Command {
    let mut c = Command::new("cargo");
    c.args(args);
    c
}

fn main() {
    let args = parse_args();
    let run = |s: &str| args.stage == "all" || args.stage == s;

    // the same commands the workflow jobs run, in the same order
    if run("fmt") {
        step("fmt", cargo(&["fmt", "--all", "--check"]));
    }
    if run("clippy") {
        step(
            "clippy",
            cargo(&[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ]),
        );
    }
    if run("deprecation-budget") {
        deprecation_budget();
    }
    if run("build") {
        step(
            "build",
            cargo(&["build", "--release", "--workspace", "--all-targets"]),
        );
    }
    if run("test") {
        step("test", cargo(&["test", "-q", "--workspace"]));
    }
    if run("doc") {
        let mut doc = cargo(&["doc", "--workspace", "--no-deps"]);
        doc.env("RUSTDOCFLAGS", "-D warnings");
        step("doc", doc);
    }
    if run("examples") {
        step(
            "examples:build",
            cargo(&["build", "--release", "--examples"]),
        );
        let examples: Vec<&str> = match &args.only_example {
            Some(ex) => vec![ex.as_str()],
            None => EXAMPLES.to_vec(),
        };
        for ex in examples {
            step(
                &format!("examples:run:{ex}"),
                cargo(&["run", "--release", "--example", ex]),
            );
        }
    }
    if run("perf-gate") {
        let bins: Vec<&str> = match &args.only {
            Some(only) => vec![only.as_str()],
            None => PERF_BINS.to_vec(),
        };
        for bin in &bins {
            let json = args.out.join(format!("{bin}.json"));
            step(
                &format!("perf-gate:{bin}"),
                cargo(&[
                    "run",
                    "--release",
                    "-p",
                    "sc_bench",
                    "--bin",
                    bin,
                    "--",
                    "--json",
                    json.to_str().expect("utf-8 path"),
                ]),
            );
        }
        // a full perf-gate run regenerates the committed trajectory file
        if args.only.is_none() {
            let mut bins_obj = Json::obj();
            for bin in PERF_BINS {
                let path = args.out.join(format!("{bin}.json"));
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("FAIL [merge]: cannot read {}: {e}", path.display());
                    std::process::exit(1);
                });
                bins_obj = bins_obj.field(bin, Json::Raw(text));
            }
            let merged = Json::obj()
                .field("schema", BENCH_SCHEMA)
                .field("git", git_describe())
                .field("bins", bins_obj);
            let out = PathBuf::from("results/bench.json");
            if let Err(e) = write_json(&out, &merged) {
                eprintln!("FAIL [merge]: cannot write {}: {e}", out.display());
                std::process::exit(1);
            }
            println!("\nwrote {}", out.display());
        }
    }
    println!("\nci: all requested stages passed");
}
