//! Local CI parity: run the exact build/test/clippy/fmt/doc/perf-gate
//! sequence the GitHub workflow runs, in one command, so contributors
//! reproduce CI without guessing which flags the workflow passes. The
//! workflow's perf-gate job calls this same bin (`--stage perf-gate
//! --only <bin>`), which is what keeps the two from drifting.
//!
//! Usage:
//!   cargo run -p sc_bench --bin ci                      # everything
//!   cargo run -p sc_bench --bin ci -- --stage perf-gate # just the bench gates
//!   cargo run -p sc_bench --bin ci -- --stage perf-gate --only hybrid
//!
//! The perf-gate stage runs every `sc_bench` bin with `--json`, writing the
//! per-bin records under `--out` (default `target/bench-json`); a full
//! (non-`--only`) perf-gate run additionally merges them into
//! `results/bench.json`, the committed machine-readable bench trajectory.
//!
//! The `analyze` stage runs the `sc_analyze` lint engine over the tree
//! (panic-surface, float-eq, precision-discipline, unit-discipline,
//! deprecation-budget, pub-doc — the old inline deprecation scan is
//! subsumed by the `deprecation-budget` rule). The `trace-audit` stage
//! replays the bench workloads and statically checks the recorded kernel
//! traces for memory and ordering hazards; `--only <bin>` narrows it to
//! one workload, matching the perf-gate matrix legs.
//!
//! Scope note: the **hard** perf gates (the bins' exit codes) and the
//! record emission run identically here and in CI. The *warn-only* drift
//! diff against the committed `results/bench.json` currently lives only in
//! the workflow (a tolerant numeric comparison needs a JSON parser, which
//! this offline crate deliberately does not carry) — locally, regenerate
//! and `git diff results/bench.json` for the same signal.

use sc_bench::{git_describe, write_json, Json, BENCH_SCHEMA};
use std::path::PathBuf;
use std::process::Command;

/// The perf-gate bins, in run order. `headline` carries no exit gate of its
/// own (it reports paper-vs-measured ratios); the others exit non-zero when
/// their gates regress (`precision` gates the f32 arena high water and the
/// planner's extra explicit admissions; `multinode` gates the 4-node
/// weak-scaling efficiency; `kernels` gates the blocked-vs-scalar gemm
/// speedup and the calibrated cost model; `serve` gates the multi-tenant
/// service's warm-cache preprocessing throughput and its contended
/// scheduling fairness). The same names select the `trace-audit`
/// workloads.
const PERF_BINS: &[&str] = &[
    "headline",
    "schedule",
    "cluster",
    "hybrid",
    "precision",
    "multinode",
    "kernels",
    "serve",
];

const STAGES: &[&str] = &[
    "fmt",
    "clippy",
    "analyze",
    "build",
    "test",
    "doctest",
    "doc",
    "examples",
    "perf-gate",
    "trace-audit",
];

/// Every example of the facade crate, built and run by the `examples`
/// stage (the workflow's examples matrix leg drives one each).
const EXAMPLES: &[&str] = &[
    "quickstart",
    "heat2d_feti",
    "heat3d_gpu_assembly",
    "amortization",
    "tuning",
    "multinode",
    "serve",
];

struct Args {
    stage: String,
    only: Option<String>,
    only_example: Option<String>,
    out: PathBuf,
}

/// Print the usage string and exit 2 (usage error).
fn usage() -> ! {
    eprintln!(
        "usage: ci [--stage <all|{}>] [--only <{}>] [--only-example <{}>] [--out <dir>]",
        STAGES.join("|"),
        PERF_BINS.join("|"),
        EXAMPLES.join("|"),
    );
    std::process::exit(2);
}

/// Fetch the operand of `--<flag>` or exit 2 with the usage string —
/// a bare trailing flag is a usage error, not a panic.
fn operand(it: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match it.next() {
        Some(v) => v,
        None => {
            eprintln!("ci: `{flag}` requires {what}");
            usage();
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        stage: "all".to_string(),
        only: None,
        only_example: None,
        out: PathBuf::from("target/bench-json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stage" => args.stage = operand(&mut it, "--stage", "a stage name"),
            "--only" => args.only = Some(operand(&mut it, "--only", "a bin name")),
            "--only-example" => {
                args.only_example = Some(operand(&mut it, "--only-example", "an example name"))
            }
            "--out" => args.out = operand(&mut it, "--out", "a directory path").into(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    if args.stage != "all" && !STAGES.contains(&args.stage.as_str()) {
        eprintln!("unknown stage '{}' — stages: all, {STAGES:?}", args.stage);
        std::process::exit(2);
    }
    if let Some(only) = &args.only {
        if !PERF_BINS.contains(&only.as_str()) {
            eprintln!("unknown perf-gate bin '{only}' — bins: {PERF_BINS:?}");
            std::process::exit(2);
        }
    }
    if let Some(ex) = &args.only_example {
        if !EXAMPLES.contains(&ex.as_str()) {
            eprintln!("unknown example '{ex}' — examples: {EXAMPLES:?}");
            std::process::exit(2);
        }
    }
    args
}

/// Run one command with inherited stdio; exit the whole driver on failure
/// (mirroring a failing CI step).
fn step(name: &str, mut cmd: Command) {
    println!("\n== ci step: {name} ==");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("FAIL [{name}]: could not launch {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("FAIL [{name}]: exit {status}");
        std::process::exit(1);
    }
}

fn cargo(args: &[&str]) -> Command {
    let mut c = Command::new("cargo");
    c.args(args);
    c
}

fn main() {
    let args = parse_args();
    let run = |s: &str| args.stage == "all" || args.stage == s;

    // the same commands the workflow jobs run, in the same order
    if run("fmt") {
        step("fmt", cargo(&["fmt", "--all", "--check"]));
    }
    if run("clippy") {
        step(
            "clippy",
            cargo(&[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ]),
        );
    }
    if run("analyze") {
        step("analyze", cargo(&["run", "--release", "-p", "sc_analyze"]));
    }
    if run("build") {
        step(
            "build",
            cargo(&["build", "--release", "--workspace", "--all-targets"]),
        );
    }
    if run("test") {
        step("test", cargo(&["test", "-q", "--workspace"]));
    }
    if run("doctest") {
        step("doctest", cargo(&["test", "-q", "--workspace", "--doc"]));
    }
    if run("doc") {
        let mut doc = cargo(&["doc", "--workspace", "--no-deps"]);
        doc.env("RUSTDOCFLAGS", "-D warnings");
        step("doc", doc);
    }
    if run("examples") {
        step(
            "examples:build",
            cargo(&["build", "--release", "--examples"]),
        );
        let examples: Vec<&str> = match &args.only_example {
            Some(ex) => vec![ex.as_str()],
            None => EXAMPLES.to_vec(),
        };
        for ex in examples {
            step(
                &format!("examples:run:{ex}"),
                cargo(&["run", "--release", "--example", ex]),
            );
        }
    }
    if run("perf-gate") {
        let bins: Vec<&str> = match &args.only {
            Some(only) => vec![only.as_str()],
            None => PERF_BINS.to_vec(),
        };
        for bin in &bins {
            let json = args.out.join(format!("{bin}.json"));
            step(
                &format!("perf-gate:{bin}"),
                cargo(&[
                    "run",
                    "--release",
                    "-p",
                    "sc_bench",
                    "--bin",
                    bin,
                    "--",
                    "--json",
                    json.to_str().expect("utf-8 path"),
                ]),
            );
        }
        // a full perf-gate run regenerates the committed trajectory file
        if args.only.is_none() {
            let mut bins_obj = Json::obj();
            for bin in PERF_BINS {
                let path = args.out.join(format!("{bin}.json"));
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("FAIL [merge]: cannot read {}: {e}", path.display());
                    std::process::exit(1);
                });
                bins_obj = bins_obj.field(bin, Json::Raw(text));
            }
            let merged = Json::obj()
                .field("schema", BENCH_SCHEMA)
                .field("git", git_describe())
                .field("bins", bins_obj);
            let out = PathBuf::from("results/bench.json");
            if let Err(e) = write_json(&out, &merged) {
                eprintln!("FAIL [merge]: cannot write {}: {e}", out.display());
                std::process::exit(1);
            }
            println!("\nwrote {}", out.display());
        }
    }
    if run("trace-audit") {
        let mut cmd_args: Vec<&str> = vec![
            "run",
            "--release",
            "-p",
            "sc_bench",
            "--bin",
            "trace_audit",
            "--",
            "--out",
        ];
        let out = args.out.to_str().expect("utf-8 path").to_string();
        cmd_args.push(&out);
        if let Some(only) = &args.only {
            cmd_args.push("--only");
            cmd_args.push(only.as_str());
        }
        step("trace-audit", cargo(&cmd_args));
    }
    println!("\nci: all requested stages passed");
}
