//! Minimal JSON emission for the machine-readable bench records — the
//! workspace is offline (no serde), so this is a small hand-rolled value
//! tree with stable (insertion-order) keys and proper string escaping.
//!
//! Every `sc_bench` bin accepts `--json <path>` and writes one
//! [`bench_record`] there: a schema-versioned object carrying the bin name,
//! `git describe` of the working tree, a workload description, and the
//! bin's headline metrics. The `ci` bin merges the per-bin records into
//! `results/bench.json`, the committed trajectory the CI perf-gate diffs
//! against (warn-only — the hard gates are the bins' own exit codes).

use sc_core::AssemblyReport;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Schema tag stamped into every record; bump on breaking shape changes.
/// v2: records may carry an `assembly_report` section rendered by
/// [`report_json`] — the unified [`AssemblyReport`] schema shared by every
/// execution target (CPU / GPU / cluster / hybrid).
/// v3: every record carries a `precision` field naming the working
/// precision its metrics were produced under (`"f64"`, `"f32+refine"`, or
/// `"f64-vs-f32+refine"` for cross-precision comparison bins).
/// v4: every record carries a `topology` field naming the execution
/// topology its metrics were produced under (`"single-node"` for every
/// historical bin; the multi-node bins stamp shapes like `"4x1xtiny"` —
/// nodes × devices-per-node × device name). Reports may carry a `nodes`
/// roll-up section with per-node exchange-byte accounting.
///
/// The `kernels` bin's record (same v4 schema) carries no
/// `assembly_report`; its metrics object instead holds a `kernels` map of
/// per-kernel rows (`{scalar_s, blocked_s, speedup, blocked_gflops}`
/// keyed by kernel name), the `gemm_gate` threshold, the probed
/// microkernel rates (`probe_*`), and the calibration comparison
/// (`realized_host_s`, `predicted_nominal_s`, `predicted_calibrated_s`,
/// `gap_nominal`, `gap_calibrated`).
/// v5: records may carry multi-tenant service fields — the `serve` bin's
/// metrics object holds a `tenants` map of per-tenant rows
/// (`{jobs, cold_prep_s, cold_device_s, contended_device_s,
/// warm_cache_hits, queue_wait_s}` keyed by tenant name), the
/// cross-session cache counters (`cache_hits`, `cache_misses`,
/// `cache_evictions`, `cache_bytes`, `cache_budget_bytes`), and the two
/// gate readings (`prep_speedup` vs `prep_gate`, `fairness_ratio` vs
/// `fairness_gate`).
pub const BENCH_SCHEMA: &str = "sc-bench/v5";

/// A JSON value with insertion-ordered object keys.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null` (also the rendering of non-finite numbers).
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (rendered `null` when not finite — JSON has no NaN/∞).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON text embedded verbatim (the `ci` bin uses this to
    /// merge per-bin record files without a parser). The caller guarantees
    /// the text is valid JSON.
    Raw(String),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Start an empty object (chain [`Json::field`]).
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects: builder misuse).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on a non-object Json value: {other:?}"),
        }
        self
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Raw(text) => {
                // re-indent the embedded document to the current depth; its
                // structural newlines are unambiguous because the renderer
                // escapes newlines inside strings
                let _ = write!(
                    out,
                    "{}",
                    text.trim_end().replace('\n', &format!("\n{close}"))
                );
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    item.render_into(out, indent + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `git describe --always --dirty --tags` of the working tree, or
/// `"unknown"` when git is unavailable (records stay well-formed either
/// way — the field is informational, never compared by the gate).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The stable per-bin record shape: schema, bin name, git describe,
/// working precision, workload description, and the bin's headline
/// metrics. Bins running the historical `f64` pipeline use this; bins
/// that measure another precision (or compare several) stamp it via
/// [`bench_record_at`].
pub fn bench_record(bin: &str, workload: Json, metrics: Json) -> Json {
    bench_record_at(bin, sc_core::Precision::F64.name(), workload, metrics)
}

/// [`bench_record`] with an explicit `precision` tag (use
/// [`Precision::name`](sc_core::Precision::name) for single-precision
/// records; comparison bins join the names with `-vs-`). The `topology`
/// tag stays `"single-node"` — multi-node bins use [`bench_record_on`].
pub fn bench_record_at(bin: &str, precision: &str, workload: Json, metrics: Json) -> Json {
    bench_record_on(bin, precision, "single-node", workload, metrics)
}

/// [`bench_record_at`] with an explicit `topology` tag describing the
/// simulated execution topology (e.g. `"4x1xtiny"` for four single-device
/// nodes). Every historical single-node bin stamps `"single-node"`.
pub fn bench_record_on(
    bin: &str,
    precision: &str,
    topology: &str,
    workload: Json,
    metrics: Json,
) -> Json {
    Json::obj()
        .field("schema", BENCH_SCHEMA)
        .field("bin", bin)
        .field("git", git_describe())
        .field("precision", precision)
        .field("topology", topology)
        .field("workload", workload)
        .field("metrics", metrics)
}

/// [`bench_record`] plus the unified `assembly_report` section (use
/// [`report_json`] to render it). One schema regardless of which backend
/// produced the report.
pub fn bench_record_with_report(bin: &str, workload: Json, metrics: Json, report: Json) -> Json {
    bench_record(bin, workload, metrics).field("assembly_report", report)
}

/// Render an [`AssemblyReport`] under the one nested v2 schema:
/// per-subdomain timings → per-stream spans → per-device roll-up → hybrid
/// decisions. Every execution target emits the same shape; sections that do
/// not apply are empty/absent, never renamed.
pub fn report_json(report: &AssemblyReport) -> Json {
    let subdomains: Vec<Json> = report
        .subdomains
        .iter()
        .map(|t| {
            let mut o = Json::obj()
                .field("index", t.index)
                .field("n_dofs", t.n_dofs)
                .field("n_lambda", t.n_lambda)
                .field("seconds", t.seconds)
                .field("host_seconds", t.host_seconds);
            if let Some(d) = t.device {
                o = o.field("device", d);
            }
            if let Some(s) = t.stream {
                o = o.field("stream", s);
            }
            if let Some(n) = t.node {
                o = o.field("node", n);
            }
            o
        })
        .collect();
    let devices: Vec<Json> = report
        .devices
        .iter()
        .map(|d| {
            let streams: Vec<Json> = d
                .stream_lanes()
                .iter()
                .map(|lane| {
                    let spans: Vec<Json> = lane
                        .spans
                        .iter()
                        .map(|e| {
                            Json::obj()
                                .field("index", e.index)
                                .field("admitted_at", e.admitted_at)
                                .field("start", e.span.start)
                                .field("end", e.span.end)
                                .field("temp_bytes", e.temp_bytes)
                        })
                        .collect();
                    Json::obj()
                        .field("stream", lane.stream)
                        .field("spans", spans)
                })
                .collect();
            Json::obj()
                .field("device", d.device)
                .field("n_subdomains", d.subdomains.len())
                .field("makespan_s", d.makespan)
                .field("utilization", d.utilization)
                .field("temp_high_water_bytes", d.temp_high_water)
                .field("streams", streams)
        })
        .collect();
    let mut out = Json::obj()
        .field("total_seconds", report.total_seconds)
        .field("makespan_s", report.makespan)
        .field("speedup", report.speedup())
        .field("cache_hits", report.cache_hits)
        .field("cache_misses", report.cache_misses)
        .field("subdomains", subdomains)
        .field("devices", devices);
    if !report.nodes.is_empty() {
        let nodes: Vec<Json> = report
            .nodes
            .iter()
            .map(|n| {
                Json::obj()
                    .field("node", n.node)
                    .field(
                        "devices",
                        n.devices.iter().map(|&d| Json::from(d)).collect::<Vec<_>>(),
                    )
                    .field("n_subdomains", n.subdomains.len())
                    .field("makespan_s", n.makespan)
                    .field("exchange_bytes", n.exchange_bytes)
                    .field("exchange_seconds", n.exchange_seconds)
            })
            .collect();
        out = out.field("nodes", nodes);
    }
    if let Some(h) = &report.hybrid {
        let formulation: Vec<Json> = h
            .formulation
            .iter()
            .map(|f| Json::Str(format!("{f:?}")))
            .collect();
        let spilled: Vec<Json> = h.spilled.iter().map(|&i| Json::from(i)).collect();
        out = out.field(
            "hybrid",
            Json::obj()
                .field("formulation", formulation)
                .field("spilled", spilled)
                .field("predicted_assembly_s", h.predicted_assembly_seconds)
                .field("realized_gpu_s", h.realized_gpu_seconds)
                .field("realized_cpu_s", h.realized_cpu_seconds)
                .field("arena_high_water_bytes", h.arena_high_water),
        );
    }
    out
}

/// Schema tag of the standalone hazard-trace artifacts the `trace_audit`
/// bin uploads per perf-gate leg; bump on breaking shape changes.
pub const TRACE_SCHEMA: &str = "sc-trace/v1";

/// Render one device's hazard-audit [`Trace`](sc_gpu::Trace) — the input
/// of `sc_analyze::trace::validate` — as a standalone JSON document.
pub fn trace_json(trace: &sc_gpu::Trace) -> Json {
    use sc_gpu::TraceEvent;
    let events: Vec<Json> = trace
        .events
        .iter()
        .map(|ev| match ev {
            TraceEvent::Alloc { slot, bytes, at } => Json::obj()
                .field("kind", "alloc")
                .field("slot", *slot)
                .field("bytes", *bytes)
                .field("at", *at),
            TraceEvent::Free { slot, at } => Json::obj()
                .field("kind", "free")
                .field("slot", *slot)
                .field("at", *at),
            TraceEvent::Kernel {
                label,
                stream,
                span,
                reads,
                writes,
            } => Json::obj()
                .field("kind", "kernel")
                .field("label", *label)
                .field("stream", *stream)
                .field("start", span.start)
                .field("end", span.end)
                .field(
                    "reads",
                    reads.iter().map(|&s| Json::from(s)).collect::<Vec<_>>(),
                )
                .field(
                    "writes",
                    writes.iter().map(|&s| Json::from(s)).collect::<Vec<_>>(),
                ),
            TraceEvent::Exchange {
                label,
                peer,
                bytes,
                span,
                writes,
            } => Json::obj()
                .field("kind", "exchange")
                .field("label", *label)
                .field("peer", *peer)
                .field("bytes", *bytes)
                .field("start", span.start)
                .field("end", span.end)
                .field(
                    "writes",
                    writes.iter().map(|&s| Json::from(s)).collect::<Vec<_>>(),
                ),
        })
        .collect();
    let span_log: Vec<Json> = trace
        .span_log
        .iter()
        .map(|(stream, span)| {
            Json::obj()
                .field("stream", *stream)
                .field("start", span.start)
                .field("end", span.end)
        })
        .collect();
    Json::obj()
        .field("schema", TRACE_SCHEMA)
        .field("arena_capacity_bytes", trace.arena_capacity)
        .field("n_streams", trace.n_streams)
        .field("concurrency", trace.concurrency)
        .field("events", events)
        .field("span_log", span_log)
}

/// Write a rendered value to `path`, creating parent directories.
pub fn write_json(path: &Path, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(value.render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_ordered_pretty_json() {
        let j = Json::obj()
            .field("b", 1.5)
            .field("a", "x\"y\n")
            .field("list", vec![Json::Num(1.0), Json::Bool(true), Json::Null])
            .field("nested", Json::obj().field("k", 2usize))
            .field("empty", Json::Arr(Vec::new()));
        let s = j.render();
        // insertion order preserved (b before a), escapes applied
        let bi = s.find("\"b\"").unwrap();
        let ai = s.find("\"a\"").unwrap();
        assert!(bi < ai, "keys must keep insertion order:\n{s}");
        assert!(s.contains("\"x\\\"y\\n\""), "escaping broken:\n{s}");
        assert!(s.contains("\"k\": 2"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        let s = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]).render();
        assert!(!s.contains("NaN") && !s.contains("inf"), "{s}");
        assert_eq!(s.matches("null").count(), 2);
    }

    #[test]
    fn raw_embeds_verbatim() {
        let inner = "{\n  \"x\": 1\n}\n";
        let j = Json::obj().field("bin", Json::Raw(inner.to_string()));
        let s = j.render();
        assert!(s.contains("\"x\": 1"), "{s}");
    }

    #[test]
    fn bench_record_has_the_stable_shape() {
        let r = bench_record(
            "demo",
            Json::obj().field("n", 4usize),
            Json::obj().field("speedup", 2.0),
        );
        let s = r.render();
        for key in [
            "schema",
            "bin",
            "git",
            "precision",
            "topology",
            "workload",
            "metrics",
        ] {
            assert!(s.contains(&format!("\"{key}\"")), "missing {key}:\n{s}");
        }
        assert!(s.contains(BENCH_SCHEMA));
        assert!(s.contains("\"precision\": \"f64\""), "default tag:\n{s}");
        assert!(s.contains("\"topology\": \"single-node\""), "default:\n{s}");
        let mixed = bench_record_at("demo", "f32+refine", Json::obj(), Json::obj()).render();
        assert!(mixed.contains("\"precision\": \"f32+refine\""), "{mixed}");
        let multi = bench_record_on("demo", "f64", "4x1xtiny", Json::obj(), Json::obj()).render();
        assert!(multi.contains("\"topology\": \"4x1xtiny\""), "{multi}");
    }

    #[test]
    fn git_describe_is_nonempty() {
        assert!(!git_describe().is_empty());
    }
}
