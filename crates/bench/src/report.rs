//! Result tables: aligned console output plus CSV files under `results/`.

use std::fmt::Write as _;
use std::io::Write as _;

/// A simple column-oriented result table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout and persist as `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = write_csv(name, &self.headers, &self.rows) {
            eprintln!("warning: failed to write results/{name}.csv: {e}");
        }
    }
}

/// Write a CSV file under `results/`.
pub fn write_csv(name: &str, headers: &[String], rows: &[Vec<String>]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create(format!("results/{name}.csv"))?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Format seconds as milliseconds with 3 significant decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
