//! Wall-clock timing helpers for the CPU-side measurements.

use std::time::Instant;

/// Wall-time one execution of `f`, in seconds.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Minimum wall time over `reps` executions (minimum is the standard
/// low-noise estimator for deterministic kernels).
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_is_positive() {
        let t = time_once(|| {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn time_min_runs_all_reps() {
        let mut count = 0;
        let _ = time_min(5, || count += 1);
        assert_eq!(count, 5);
    }
}
