//! Workload generation: the heat-transfer subdomain ladders of the paper's
//! §4 and single-subdomain kernel-bench extractions.

use sc_factor::{Engine, SparseCholesky};
use sc_fem::{Gluing, HeatProblem};
use sc_order::Ordering;
use sc_sparse::Csc;

/// Command-line knobs shared by all experiment drivers.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Largest subdomain size (dofs) for CPU-executed series.
    pub max_dofs_cpu: usize,
    /// Largest subdomain size (dofs) for simulated-GPU series (cost-only
    /// sweeps tolerate bigger sizes).
    pub max_dofs_gpu: usize,
    /// Repetitions per measured point.
    pub reps: usize,
    /// Where to write the machine-readable bench record (`--json <path>`);
    /// `None` skips the JSON emission.
    pub json: Option<std::path::PathBuf>,
}

impl BenchArgs {
    /// Parse from `std::env::args`: `--full`, `--max-dofs N`, `--reps N`,
    /// `--json PATH`.
    pub fn parse() -> Self {
        let mut args = BenchArgs {
            max_dofs_cpu: 3_000,
            max_dofs_gpu: 10_000,
            reps: 1,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => {
                    args.max_dofs_cpu = 10_000;
                    args.max_dofs_gpu = 36_000;
                }
                "--max-dofs" => {
                    let v: usize = it
                        .next()
                        .expect("--max-dofs needs a value")
                        .parse()
                        .expect("--max-dofs value");
                    args.max_dofs_cpu = v;
                    args.max_dofs_gpu = v;
                }
                "--reps" => {
                    args.reps = it
                        .next()
                        .expect("--reps needs a value")
                        .parse()
                        .expect("--reps value");
                }
                "--json" => {
                    args.json = Some(it.next().expect("--json needs a path").into());
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        args
    }
}

/// 2D ladder: cells-per-subdomain values whose dof counts `(c+1)²` roughly
/// double, capped at `max_dofs`.
pub fn ladder_2d(max_dofs: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut target = 100.0f64;
    loop {
        let c = (target.sqrt().round() as usize).saturating_sub(1).max(2);
        let dofs = (c + 1) * (c + 1);
        if dofs > max_dofs {
            break;
        }
        if out.last() != Some(&c) {
            out.push(c);
        }
        target *= 2.0;
    }
    out
}

/// 3D ladder: the paper's cube sizes `k³` (k nodes per edge), capped.
pub fn ladder_3d(max_dofs: usize) -> Vec<usize> {
    // paper: 64, 125, 216, 343, 729, 1331, 2744, 4913, 9261, 17576, 35937
    [4usize, 5, 6, 7, 9, 11, 14, 17, 21, 26, 33]
        .iter()
        .map(|&k| k - 1) // cells per subdomain
        .filter(|&c| (c + 1).pow(3) <= max_dofs)
        .collect()
}

/// One representative subdomain prepared for kernel benches: the factor `L`,
/// the row-permuted `B̃ᵀ`, and metadata.
pub struct KernelWorkload {
    /// Factor of the regularized subdomain matrix.
    pub l: Csc,
    /// Elimination tree of the factor.
    pub parent: Vec<usize>,
    /// `B̃ᵀ` with rows in factor space.
    pub bt_perm: Csc,
    /// Subdomain dof count.
    pub n: usize,
    /// Local multiplier count.
    pub m: usize,
}

impl KernelWorkload {
    /// Build the center subdomain of a small decomposition: 3×3 subdomains in
    /// 2D, 3×3×3 in 3D (the center one is floating and glued on every side,
    /// like a production interior subdomain).
    pub fn build(dim: usize, cells_per_sub: usize) -> Self {
        let (problem, center) = if dim == 2 {
            (
                HeatProblem::build_2d(cells_per_sub, (3, 3), Gluing::Redundant),
                4usize, // (1,1) of 3x3
            )
        } else {
            (
                HeatProblem::build_3d(cells_per_sub, (3, 3, 3), Gluing::Redundant),
                13usize, // (1,1,1) of 3x3x3
            )
        };
        let sd = &problem.subdomains[center];
        let kreg =
            sc_feti::regularize_fixing_node(&sd.k, sd.kernel.as_deref(), sd.fixing_dof, None);
        let perm = Ordering::NestedDissection.compute(&kreg);
        let chol = SparseCholesky::factorize_with_perm(&kreg, perm, Engine::Simplicial)
            .expect("kernel workload factorization");
        let bt_perm = sd.bt.permute_rows(chol.perm());
        KernelWorkload {
            parent: chol.symbolic().parent.clone(),
            l: chol.factor_csc(),
            n: sd.n_dofs(),
            m: sd.n_lambda(),
            bt_perm,
        }
    }
}

/// A whole cluster prepared for the batched-assembly benches: **every**
/// subdomain of a regular decomposition factorized, with its `B̃ᵀ` in factor
/// row order — the input of `sc_core::assemble_sc_batch`.
pub struct BatchWorkload {
    /// Per-subdomain `(L, B̃ᵀ_permuted)` pairs.
    pub factors: Vec<(Csc, Csc)>,
    /// Largest subdomain dof count in the batch (subdomains touching the
    /// Dirichlet boundary carry fewer dofs).
    pub n: usize,
}

impl BatchWorkload {
    /// Build a full decomposition: 3×3 subdomains in 2D (9 subdomains),
    /// 2×2×2 in 3D (8 subdomains) — enough to exercise every gluing shape
    /// (corner, edge, interior) in one batch.
    pub fn build(dim: usize, cells_per_sub: usize) -> Self {
        let problem = if dim == 2 {
            HeatProblem::build_2d(cells_per_sub, (3, 3), Gluing::Redundant)
        } else {
            HeatProblem::build_3d(cells_per_sub, (2, 2, 2), Gluing::Redundant)
        };
        // the exact production preparation pipeline, per subdomain
        let factors = problem
            .subdomains
            .iter()
            .map(|sd| {
                let f = sc_feti::SubdomainFactors::build(
                    sd,
                    Engine::Simplicial,
                    Ordering::NestedDissection,
                );
                (f.chol.factor_csc(), f.bt_perm)
            })
            .collect();
        let n = problem
            .subdomains
            .iter()
            .map(|sd| sd.n_dofs())
            .max()
            .unwrap_or(0);
        BatchWorkload { factors, n }
    }

    /// Build a **heterogeneous, size-skewed** cluster: one 2×2 decomposition
    /// per entry of `cells`, concatenated into a single batch. With cells
    /// like `[12, 4, 6, 3]` the subdomain dof counts spread well beyond the
    /// 4× ratio the scheduler benches need, and the heavy subdomains land at
    /// stride `cells.len()` — the adversarial layout for round-robin stream
    /// assignment.
    pub fn build_skewed(dim: usize, cells: &[usize]) -> Self {
        assert!(!cells.is_empty(), "skewed workload needs at least one size");
        let mut factors: Vec<(Csc, Csc)> = Vec::new();
        let problems: Vec<HeatProblem> = cells
            .iter()
            .map(|&c| {
                if dim == 2 {
                    HeatProblem::build_2d(c, (2, 2), Gluing::Redundant)
                } else {
                    HeatProblem::build_3d(c, (2, 2, 1), Gluing::Redundant)
                }
            })
            .collect();
        let nsub = problems[0].subdomains.len();
        // interleave across problems so consecutive batch indices alternate
        // between small and large subdomains
        for k in 0..nsub {
            for problem in &problems {
                let sd = &problem.subdomains[k];
                let f = sc_feti::SubdomainFactors::build(
                    sd,
                    Engine::Simplicial,
                    Ordering::NestedDissection,
                );
                factors.push((f.chol.factor_csc(), f.bt_perm));
            }
        }
        let n = factors.iter().map(|(l, _)| l.ncols()).max().unwrap_or(0);
        BatchWorkload { factors, n }
    }

    /// The **32-subdomain skewed cluster workload** of the multi-GPU
    /// sharding experiments: eight 2×2 decompositions with cell counts
    /// `[16, 12, 14, 10, 15, 11, 13, 9]`, interleaved. The per-subdomain
    /// cost spread is wide (≈ 15× between the 289-dof and 100-dof
    /// subdomains) but no single subdomain dominates the batch, so a
    /// well-partitioned 4-device pool can approach 4× the single-device
    /// throughput — the acceptance workload of the `cluster` bin.
    pub fn build_cluster32() -> Self {
        let w = Self::build_skewed(2, &[16, 12, 14, 10, 15, 11, 13, 9]);
        debug_assert_eq!(w.n_subdomains(), 32);
        w
    }

    /// The **mixed-fit workload** of the hybrid explicit/implicit bench:
    /// twelve medium subdomains (52²-node grids) interleaved with four large
    /// ones (104²-node grids) whose temporary footprints far exceed the
    /// medium ones — so an arena sized between the two classes admits the
    /// medium subdomains explicitly and forces the large quarter of the
    /// batch to spill. The medium class is big enough that implicit applies
    /// carry real triangular-solve cost (explicit-GPU wins at moderate
    /// iteration counts) while the large class's explicit-CPU fail-over
    /// assembly is expensive (implicit wins) — the regime where the
    /// per-subdomain hybrid decision beats both uniform strategies.
    pub fn build_mixed_fit() -> Self {
        let w = Self::build_skewed(2, &[103, 51, 51, 51]);
        debug_assert_eq!(w.n_subdomains(), 16);
        w
    }

    /// Ratio of the largest to the smallest subdomain dof count.
    pub fn size_spread(&self) -> f64 {
        let min = self
            .factors
            .iter()
            .map(|(l, _)| l.ncols())
            .min()
            .unwrap_or(1);
        self.n as f64 / min.max(1) as f64
    }

    /// Borrow the factors as batch-driver items.
    pub fn items(&self) -> Vec<sc_core::BatchItem<'_>> {
        self.factors
            .iter()
            .map(|(l, bt)| sc_core::BatchItem { l, bt })
            .collect()
    }

    /// Number of subdomains in the batch.
    pub fn n_subdomains(&self) -> usize {
        self.factors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_increasing_and_capped() {
        let l2 = ladder_2d(5000);
        assert!(!l2.is_empty());
        assert!(l2.windows(2).all(|w| w[0] < w[1]));
        assert!(l2.iter().all(|&c| (c + 1) * (c + 1) <= 5000));
        let l3 = ladder_3d(5000);
        assert!(l3.iter().all(|&c| (c + 1).pow(3) <= 5000));
        assert_eq!(l3.first(), Some(&3)); // 4³ = 64
    }

    #[test]
    fn batch_workload_covers_at_least_eight_subdomains() {
        for dim in [2usize, 3] {
            let w = BatchWorkload::build(dim, 3);
            assert!(
                w.n_subdomains() >= 8,
                "{dim}D batch must exercise >= 8 subdomains"
            );
            let items = w.items();
            assert_eq!(items.len(), w.n_subdomains());
            for (l, bt) in &w.factors {
                assert!(l.ncols() > 0 && l.ncols() <= w.n);
                assert_eq!(bt.nrows(), l.ncols());
                assert!(bt.ncols() > 0, "every subdomain is glued");
            }
        }
    }

    #[test]
    fn skewed_workload_is_large_and_skewed() {
        let w = BatchWorkload::build_skewed(2, &[12, 4, 6, 3]);
        assert!(w.n_subdomains() >= 16, "got {}", w.n_subdomains());
        assert!(
            w.size_spread() >= 4.0,
            "dof spread must be ≥ 4×, got {}",
            w.size_spread()
        );
    }

    #[test]
    fn cluster32_workload_shape() {
        let w = BatchWorkload::build_cluster32();
        assert_eq!(w.n_subdomains(), 32);
        assert!(w.size_spread() >= 2.0, "spread {}", w.size_spread());
        assert_eq!(w.n, 17 * 17, "largest subdomain is the 16-cell one");
    }

    #[test]
    fn batched_assembly_matches_sequential_on_workload() {
        use sc_core::{assemble_sc, AssemblySession, Backend, CpuExec, ScConfig};
        let w = BatchWorkload::build(2, 3);
        let cfg = ScConfig::optimized(false, false);
        // the factor pairs are a BatchSource themselves — no BatchItem
        // wrapping needed
        let batch = AssemblySession::new(Backend::cpu(), cfg).assemble(w.factors.as_slice());
        for (i, (l, bt)) in w.factors.iter().enumerate() {
            let seq = assemble_sc(&mut CpuExec, l, bt, &cfg);
            assert_eq!(batch.f[i], seq, "subdomain {i}");
        }
    }

    #[test]
    fn kernel_workload_shapes_consistent() {
        let w = KernelWorkload::build(2, 4);
        assert_eq!(w.l.ncols(), w.n);
        assert_eq!(w.bt_perm.nrows(), w.n);
        assert_eq!(w.bt_perm.ncols(), w.m);
        assert!(w.m > 0, "center subdomain must be glued");
        // 3D variant
        let w3 = KernelWorkload::build(3, 2);
        assert_eq!(w3.n, 27);
        assert!(w3.m > w3.n / 2, "3D center subdomain has a large interface");
    }
}
