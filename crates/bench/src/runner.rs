//! Measurement drivers for the individual kernels and the whole SC assembly,
//! on both backends.
//!
//! CPU measurements run the real kernels and report wall seconds (minimum
//! over `reps`). GPU measurements run the kernels in cost-only mode against a
//! fresh device timeline and report the simulated makespan — identical to the
//! computing mode's timeline, since kernel costs depend only on shapes.

use crate::timing::time_min;
use crate::workloads::KernelWorkload;
use sc_core::{
    assemble_sc, run_syrk_variant, run_trsm_variant, CpuExec, FactorStorage, GpuExec, ScConfig,
    SteppedRhs, SyrkVariant, TrsmVariant,
};
use sc_dense::Mat;
use sc_gpu::{Device, GpuKernels};
use std::sync::Arc;

/// Pre-expanded inputs for kernel-level measurements.
pub struct KernelInputs {
    /// Stepped `B̃ᵀ`.
    pub stepped: SteppedRhs,
    /// Dense RHS with pseudo-random values **below every pivot** — the state
    /// a TRSM input/output generically reaches, so kernel timing is
    /// representative (an all-zero expansion would distort nothing for our
    /// value-oblivious kernels, but this keeps results meaningful if kernels
    /// change).
    pub y0: Mat,
}

impl KernelInputs {
    /// Prepare from a workload.
    pub fn new(w: &KernelWorkload) -> Self {
        let stepped = SteppedRhs::new(&w.bt_perm);
        let n = stepped.nrows();
        let mut y0 = stepped.to_dense();
        let mut state = 0x9E3779B97F4A7C15u64;
        for j in 0..stepped.ncols() {
            for i in stepped.pivots[j]..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                // sc-analyze: allow(float-eq)
                if y0[(i, j)] == 0.0 {
                    y0[(i, j)] = v;
                }
            }
        }
        KernelInputs { stepped, y0 }
    }
}

/// Measure one TRSM variant on the CPU (wall seconds).
pub fn time_trsm_cpu(
    w: &KernelWorkload,
    inputs: &KernelInputs,
    storage: FactorStorage,
    variant: TrsmVariant,
    reps: usize,
) -> f64 {
    time_min(reps, || {
        let mut y = inputs.y0.clone();
        run_trsm_variant(
            &mut CpuExec,
            &w.l,
            &inputs.stepped,
            storage,
            variant,
            &mut y,
        );
        std::hint::black_box(&y);
    })
}

/// Measure one TRSM variant on the simulated GPU (simulated seconds).
pub fn time_trsm_gpu(
    w: &KernelWorkload,
    inputs: &KernelInputs,
    storage: FactorStorage,
    variant: TrsmVariant,
    device: &Arc<Device>,
) -> f64 {
    device.reset();
    let kernels = GpuKernels::new_cost_only(device.stream(0));
    let mut exec = GpuExec::new(&kernels);
    let mut y = inputs.y0.clone();
    run_trsm_variant(&mut exec, &w.l, &inputs.stepped, storage, variant, &mut y);
    device.synchronize()
}

/// Measure one SYRK variant on the CPU.
pub fn time_syrk_cpu(inputs: &KernelInputs, variant: SyrkVariant, reps: usize) -> f64 {
    let m = inputs.stepped.ncols();
    time_min(reps, || {
        let mut f = Mat::zeros(m, m);
        run_syrk_variant(&mut CpuExec, &inputs.y0, &inputs.stepped, variant, &mut f);
        std::hint::black_box(&f);
    })
}

/// Measure one SYRK variant on the simulated GPU.
pub fn time_syrk_gpu(inputs: &KernelInputs, variant: SyrkVariant, device: &Arc<Device>) -> f64 {
    device.reset();
    let kernels = GpuKernels::new_cost_only(device.stream(0));
    let mut exec = GpuExec::new(&kernels);
    let m = inputs.stepped.ncols();
    let mut f = Mat::zeros(m, m);
    run_syrk_variant(&mut exec, &inputs.y0, &inputs.stepped, variant, &mut f);
    device.synchronize()
}

/// Measure a full SC assembly on the CPU.
pub fn time_assembly_cpu(w: &KernelWorkload, cfg: &ScConfig, reps: usize) -> f64 {
    time_min(reps, || {
        let f = assemble_sc(&mut CpuExec, &w.l, &w.bt_perm, cfg);
        std::hint::black_box(&f);
    })
}

/// Measure a full SC assembly on the simulated GPU, including the H2D factor
/// upload (the "GPU section" of the paper's Figure 8 `sep` configuration).
pub fn time_assembly_gpu(w: &KernelWorkload, cfg: &ScConfig, device: &Arc<Device>) -> f64 {
    device.reset();
    let kernels = GpuKernels::new_cost_only(device.stream(0));
    kernels.upload_bytes(16 * w.l.nnz() + 16 * w.bt_perm.nnz());
    let mut exec = GpuExec::new(&kernels);
    let f = assemble_sc(&mut exec, &w.l, &w.bt_perm, cfg);
    kernels.download_bytes(8 * f.nrows() * f.ncols());
    device.synchronize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::BlockParam;
    use sc_gpu::DeviceSpec;

    #[test]
    fn gpu_opt_assembly_beats_orig_on_3d_workload() {
        let w = KernelWorkload::build(3, 5); // 216-dof cube
        let device = Device::new(DeviceSpec::a100(), 1);
        let orig = time_assembly_gpu(&w, &ScConfig::original(FactorStorage::Dense), &device);
        let opt = time_assembly_gpu(&w, &ScConfig::optimized(true, true), &device);
        assert!(opt > 0.0 && orig > 0.0);
        // tiny subdomains may be launch-bound; just sanity check both ran
    }

    #[test]
    fn cpu_timings_are_positive_and_variants_run() {
        let w = KernelWorkload::build(2, 6);
        let inputs = KernelInputs::new(&w);
        let t = time_trsm_cpu(
            &w,
            &inputs,
            FactorStorage::Sparse,
            TrsmVariant::FactorSplit {
                block: BlockParam::Size(8),
                prune: true,
            },
            2,
        );
        assert!(t > 0.0);
        let s = time_syrk_cpu(&inputs, SyrkVariant::InputSplit(BlockParam::Size(8)), 2);
        assert!(s > 0.0);
    }
}
