//! CLI contract of the `trace_audit` bin: exit 0 with a `sc-trace/v1`
//! artifact on a clean workload, exit 2 (with usage) on malformed
//! invocations — a bare trailing flag must not panic.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_audit"))
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("trace-audit-cli-{tag}"));
    std::fs::create_dir_all(&dir).expect("create test output dir under target");
    dir
}

#[test]
fn clean_workload_exits_zero_and_writes_schema_artifact() {
    let out = temp_out("clean");
    let run = bin()
        .args(["--only", "schedule", "--out"])
        .arg(&out)
        .output()
        .expect("spawn trace_audit");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        run.status.success(),
        "trace_audit failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(
        stdout.contains("trace-audit: clean"),
        "missing clean line:\n{stdout}"
    );
    let artifact = std::fs::read_to_string(out.join("schedule.trace.json"))
        .expect("trace_audit writes <out>/schedule.trace.json");
    assert!(
        artifact.contains("\"schema\": \"sc-trace/v1\""),
        "artifact missing schema tag:\n{artifact}"
    );
    assert!(
        artifact.contains("\"n_violations\": 0"),
        "artifact reports violations"
    );
}

#[test]
fn unknown_workload_exits_two_with_usage() {
    let run = bin()
        .args(["--only", "nonsense"])
        .output()
        .expect("spawn trace_audit");
    assert_eq!(run.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("usage:"), "no usage string:\n{stderr}");
}

#[test]
fn missing_out_operand_exits_two_not_panic() {
    let run = bin().arg("--out").output().expect("spawn trace_audit");
    assert_eq!(run.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("`--out` requires a directory operand"),
        "wrong diagnostic:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "bare flag must be a usage error, not a panic:\n{stderr}"
    );
}
