//! Criterion microbenchmarks of the TRSM/SYRK kernel variants (CPU, real
//! execution) on a fixed mid-size 2D and 3D subdomain.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{KernelInputs, KernelWorkload};
use sc_core::{
    run_syrk_variant, run_trsm_variant, BlockParam, CpuExec, FactorStorage, SyrkVariant,
    TrsmVariant,
};
use sc_dense::Mat;

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsm");
    group.sample_size(10);
    for (dim, cells, storage) in [
        (2usize, 20usize, FactorStorage::Sparse),
        (3, 7, FactorStorage::Dense),
    ] {
        let w = KernelWorkload::build(dim, cells);
        let inputs = KernelInputs::new(&w);
        let variants: [(&str, TrsmVariant); 3] = [
            ("plain", TrsmVariant::Plain),
            ("rhs_split", TrsmVariant::RhsSplit(BlockParam::Size(100))),
            (
                "factor_split_prune",
                TrsmVariant::FactorSplit {
                    block: BlockParam::Size(100),
                    prune: true,
                },
            ),
        ];
        for (name, variant) in variants {
            group.bench_function(format!("{dim}d/{name}/n{}", w.n), |b| {
                b.iter(|| {
                    let mut y = inputs.y0.clone();
                    run_trsm_variant(
                        &mut CpuExec,
                        &w.l,
                        &inputs.stepped,
                        storage,
                        variant,
                        &mut y,
                    );
                    std::hint::black_box(&y);
                })
            });
        }
    }
    group.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut group = c.benchmark_group("syrk");
    group.sample_size(10);
    for (dim, cells) in [(2usize, 20usize), (3, 7)] {
        let w = KernelWorkload::build(dim, cells);
        let inputs = KernelInputs::new(&w);
        let variants: [(&str, SyrkVariant); 3] = [
            ("plain", SyrkVariant::Plain),
            (
                "input_split",
                SyrkVariant::InputSplit(BlockParam::Size(100)),
            ),
            (
                "output_split",
                SyrkVariant::OutputSplit(BlockParam::Size(100)),
            ),
        ];
        for (name, variant) in variants {
            group.bench_function(format!("{dim}d/{name}/n{}", w.n), |b| {
                b.iter(|| {
                    let m = inputs.stepped.ncols();
                    let mut f = Mat::zeros(m, m);
                    run_syrk_variant(&mut CpuExec, &inputs.y0, &inputs.stepped, variant, &mut f);
                    std::hint::black_box(&f);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trsm, bench_syrk);
criterion_main!(benches);
