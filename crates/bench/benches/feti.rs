//! Criterion benchmarks of the FETI building blocks: numeric factorization
//! engines, the dual-operator application (implicit vs explicit), and a full
//! small solve.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{Backend, ScConfig};
use sc_factor::Engine;
use sc_fem::{Gluing, HeatProblem};
use sc_feti::{FetiSolverBuilder, FormulationChoice, SubdomainFactors};
use sc_order::Ordering;

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization");
    group.sample_size(10);
    let p = HeatProblem::build_3d(6, (2, 1, 1), Gluing::Redundant);
    let sd = &p.subdomains[1];
    for engine in [Engine::Simplicial, Engine::Supernodal] {
        group.bench_function(format!("{engine:?}/n{}", sd.n_dofs()), |b| {
            b.iter(|| {
                std::hint::black_box(SubdomainFactors::build(
                    sd,
                    engine,
                    Ordering::NestedDissection,
                ))
            })
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("feti_solve");
    group.sample_size(10);
    let p = HeatProblem::build_2d(6, (2, 2), Gluing::Redundant);
    for (name, formulation) in [
        ("implicit", FormulationChoice::Implicit),
        ("explicit_cpu", FormulationChoice::Explicit),
    ] {
        group.bench_function(name, |b| {
            let formulation = formulation.clone();
            b.iter(|| {
                let solver = FetiSolverBuilder::new()
                    .backend(Backend::cpu())
                    .formulation(formulation.clone())
                    .assembly(ScConfig::optimized(false, false))
                    .build(&p);
                std::hint::black_box(solver.solve())
            })
        });
    }
    group.finish();
}

/// Multi-RHS amortization: one preprocessed handle serving 8 load cases vs
/// rebuilding the solver per case — the reuse path the headline bin gates.
fn bench_multi_rhs(c: &mut Criterion) {
    let mut group = c.benchmark_group("feti_multi_rhs");
    group.sample_size(10);
    let p = HeatProblem::build_2d(8, (2, 2), Gluing::Redundant);
    let loads: Vec<Vec<Vec<f64>>> = (0..8)
        .map(|k| {
            p.subdomains
                .iter()
                .map(|sd| sd.f.iter().map(|v| v * (1.0 + 0.05 * k as f64)).collect())
                .collect()
        })
        .collect();
    let build = || {
        FetiSolverBuilder::new()
            .backend(Backend::cpu())
            .formulation(FormulationChoice::Explicit)
            .assembly(ScConfig::optimized(false, false))
            .build(&p)
    };
    group.bench_function("reuse_handle/8rhs", |b| {
        b.iter(|| {
            let solver = build();
            for f in &loads {
                std::hint::black_box(solver.solve_rhs(f));
            }
        })
    });
    group.bench_function("rebuild_per_rhs/8rhs", |b| {
        b.iter(|| {
            for f in &loads {
                let solver = build();
                std::hint::black_box(solver.solve_rhs(f));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorization, bench_solve, bench_multi_rhs);
criterion_main!(benches);
