//! Criterion benchmarks of the FETI building blocks: numeric factorization
//! engines, the dual-operator application (implicit vs explicit), and a full
//! small solve.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::ScConfig;
use sc_factor::Engine;
use sc_fem::{Gluing, HeatProblem};
use sc_feti::solver::{DualMode, FetiOptions, FetiSolver};
use sc_feti::SubdomainFactors;
use sc_order::Ordering;

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization");
    group.sample_size(10);
    let p = HeatProblem::build_3d(6, (2, 1, 1), Gluing::Redundant);
    let sd = &p.subdomains[1];
    for engine in [Engine::Simplicial, Engine::Supernodal] {
        group.bench_function(format!("{engine:?}/n{}", sd.n_dofs()), |b| {
            b.iter(|| {
                std::hint::black_box(SubdomainFactors::build(
                    sd,
                    engine,
                    Ordering::NestedDissection,
                ))
            })
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("feti_solve");
    group.sample_size(10);
    let p = HeatProblem::build_2d(6, (2, 2), Gluing::Redundant);
    for (name, dual) in [
        ("implicit", DualMode::Implicit),
        (
            "explicit_cpu",
            DualMode::ExplicitCpu(ScConfig::optimized(false, false)),
        ),
    ] {
        let opts = FetiOptions {
            dual,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let solver = FetiSolver::new(&p, &opts);
                std::hint::black_box(solver.solve(&opts))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorization, bench_solve);
criterion_main!(benches);
