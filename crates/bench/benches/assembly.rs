//! Criterion benchmarks of the complete SC assembly (original vs optimized
//! configuration) and of the sparse-RHS Schur baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{BatchWorkload, KernelWorkload};
use sc_core::{
    assemble_sc, AssemblySession, Backend, CpuExec, FactorStorage, ScConfig, ScheduleOptions,
    StreamPolicy,
};
use sc_factor::schur_from_factor;
use sc_gpu::{Device, DevicePool, DeviceSpec};

fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembly");
    group.sample_size(10);
    for (dim, cells) in [(2usize, 20usize), (3, 7)] {
        let w = KernelWorkload::build(dim, cells);
        let three_d = dim == 3;
        let orig = ScConfig::original(if three_d {
            FactorStorage::Dense
        } else {
            FactorStorage::Sparse
        });
        let opt = ScConfig::optimized(false, three_d);
        group.bench_function(format!("{dim}d/original/n{}", w.n), |b| {
            b.iter(|| std::hint::black_box(assemble_sc(&mut CpuExec, &w.l, &w.bt_perm, &orig)))
        });
        group.bench_function(format!("{dim}d/optimized/n{}", w.n), |b| {
            b.iter(|| std::hint::black_box(assemble_sc(&mut CpuExec, &w.l, &w.bt_perm, &opt)))
        });
        group.bench_function(format!("{dim}d/sparse_rhs_schur/n{}", w.n), |b| {
            b.iter(|| std::hint::black_box(schur_from_factor(&w.l, &w.parent, &w.bt_perm)))
        });
    }
    group.finish();
}

/// Batched multi-subdomain assembly: rayon-parallel driver (with the shared
/// block-cut cache) vs. a sequential per-subdomain loop, over the full 3×3
/// (2D) / 2×2×2 (3D) clusters — ≥ 8 subdomains per batch.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_assembly");
    group.sample_size(10);
    for (dim, cells) in [(2usize, 12usize), (3, 5)] {
        let w = BatchWorkload::build(dim, cells);
        let cfg = ScConfig::optimized(false, dim == 3);
        let nsub = w.n_subdomains();
        group.bench_function(format!("{dim}d/sequential/{nsub}sub/n{}", w.n), |b| {
            b.iter(|| {
                for (l, bt) in &w.factors {
                    std::hint::black_box(assemble_sc(&mut CpuExec, l, bt, &cfg));
                }
            })
        });
        group.bench_function(format!("{dim}d/batched/{nsub}sub/n{}", w.n), |b| {
            let items = w.items();
            let session = AssemblySession::new(Backend::cpu(), cfg);
            b.iter(|| std::hint::black_box(session.assemble(&items)))
        });
    }
    group.finish();
}

/// GPU batch scheduling: blind round-robin vs the cost-model-driven LPT
/// scheduler, on the size-skewed heterogeneous cluster (≥ 16 subdomains,
/// ≥ 4× dof spread). Criterion measures the host wall time of the whole
/// driver; the simulated makespans are printed once for reference (the
/// `schedule` bin reports them in full).
fn bench_gpu_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_schedule");
    group.sample_size(10);
    let w = BatchWorkload::build_skewed(2, &[12, 4, 6, 3]);
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);
    let nsub = w.n_subdomains();
    for (name, policy) in [
        ("round_robin", StreamPolicy::RoundRobin),
        ("scheduled", StreamPolicy::LptLeastLoaded),
    ] {
        let opts = ScheduleOptions::default().with_policy(policy);
        let dev = Device::new(DeviceSpec::a100(), 4);
        let session = AssemblySession::new(Backend::gpu_with(dev, opts.clone()), cfg);
        let res = session.assemble(&items);
        println!(
            "gpu_schedule/{name}: simulated makespan {:.3} ms over {nsub} subdomains",
            res.report.makespan * 1e3
        );
        group.bench_function(format!("{name}/{nsub}sub/n{}", w.n), |b| {
            b.iter(|| {
                let session = AssemblySession::new(
                    Backend::gpu_with(Device::new(DeviceSpec::a100(), 4), opts.clone()),
                    cfg,
                );
                std::hint::black_box(session.assemble(&items))
            })
        });
    }
    group.finish();
}

/// Cluster sharding across a device pool: the skewed 32-subdomain batch on
/// 1 vs 4 simulated A100s. Criterion measures the host wall time of the
/// whole two-level driver; the simulated cluster makespans are printed once
/// for reference (the `cluster` bin reports them in full and gates CI).
fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_assembly");
    group.sample_size(10);
    let w = BatchWorkload::build_cluster32();
    let items = w.items();
    let cfg = ScConfig::optimized(true, false);
    let nsub = w.n_subdomains();
    for n_devices in [1usize, 4] {
        let pool = DevicePool::uniform(DeviceSpec::a100(), n_devices, 4);
        let res = AssemblySession::new(Backend::cluster(pool), cfg).assemble(&items);
        println!(
            "cluster_assembly/{n_devices}dev: simulated makespan {:.3} ms over {nsub} subdomains",
            res.report.makespan * 1e3
        );
        group.bench_function(format!("{n_devices}dev/{nsub}sub/n{}", w.n), |b| {
            b.iter(|| {
                let pool = DevicePool::uniform(DeviceSpec::a100(), n_devices, 4);
                let session = AssemblySession::new(Backend::cluster(pool), cfg);
                std::hint::black_box(session.assemble(&items))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assembly,
    bench_batch,
    bench_gpu_schedule,
    bench_cluster
);
criterion_main!(benches);
