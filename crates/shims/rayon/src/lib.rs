//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of the rayon API the workspace actually uses, backed
//! by `std::thread::scope`. Parallelism is real (one OS thread per chunk of
//! work, up to `available_parallelism`), deterministic in output ordering,
//! and panic-propagating — but there is no work-stealing pool: each parallel
//! combinator spawns short-lived scoped threads. For the workload shapes in
//! this workspace (coarse-grained per-subdomain tasks) that is sufficient.
//!
//! Supported surface:
//!
//! - `slice.par_iter()` / `vec.par_iter()` (via [`IntoParallelRefIterator`])
//! - `range.into_par_iter()` / `vec.into_par_iter()` (via [`IntoParallelIterator`])
//! - adapters: `map`, `enumerate`, `zip`, `with_min_len`
//! - consumers: `collect`, `for_each`, `sum`, `reduce`
//! - [`join`], `scope` (via `std::thread::scope`), [`current_num_threads`]

use std::ops::Range;

/// Everything call sites get from `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Number of worker threads a parallel combinator will use at most,
/// honouring any cap installed by [`with_max_threads`].
pub fn current_num_threads() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match MAX_THREADS.with(|c| c.get()) {
        0 => avail,
        cap => avail.min(cap),
    }
}

thread_local! {
    /// Per-thread worker cap installed by [`with_max_threads`]
    /// (0 = uncapped). Shim-only extension: real rayon scopes thread counts
    /// through `ThreadPool::install`, which this offline shim does not carry.
    static MAX_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Run `f` with parallel combinators on this thread capped at `max` worker
/// threads (`0` removes the cap). The cap nests and unwinds safely: the
/// previous value is restored when `f` returns **or panics**. This is the
/// shim's stand-in for running inside a sized `rayon::ThreadPool`.
pub fn with_max_threads<R>(max: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MAX_THREADS.with(|c| c.replace(max)));
    f()
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` runs on a scoped thread while `a` runs on the caller. Panics from
/// either side propagate to the caller, like rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// The core parallel-iterator abstraction of the shim.
///
/// Unlike rayon's producer/consumer architecture, this is a simple *indexed
/// access* model: an iterator knows its length and can produce the item at
/// any index concurrently (`&self`). All adapters compose on top of that.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Exact number of items.
    fn pi_len(&self) -> usize;

    /// Produce the item at index `i`. Must be safe to call concurrently.
    fn pi_get(&self, i: usize) -> Self::Item;

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Accepted for API compatibility; chunking here is always static.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self.pi_len(), &|i| f(self.pi_get(i)));
    }

    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(drive(self.pi_len(), &|i| self.pi_get(i)))
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self.pi_len(), &|i| self.pi_get(i))
            .into_iter()
            .fold(identity(), &op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        drive(self.pi_len(), &|i| self.pi_get(i)).into_iter().sum()
    }
}

/// Marker trait: every shim iterator is indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Evaluate `get(0..n)` with static chunking over scoped threads, preserving
/// index order in the output.
fn drive<T, G>(n: usize, get: &G) -> Vec<T>
where
    T: Send,
    G: Fn(usize) -> T + Sync,
{
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 || n <= 1 {
        return (0..n).map(get).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let lo = ci * chunk;
            s.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(get(lo + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("drive: worker left a slot unfilled"))
        .collect()
}

// ---------------------------------------------------------------------------
// sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Parallel iterator that takes ownership of a `Vec<T>` (items are handed
/// out by index; `T: Clone` is avoided by using an internal `Option` store).
pub struct VecIter<T> {
    items: Vec<std::sync::Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn pi_len(&self) -> usize {
        self.items.len()
    }
    fn pi_get(&self, i: usize) -> T {
        self.items[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("VecIter item taken twice")
    }
}

// ---------------------------------------------------------------------------
// adapters
// ---------------------------------------------------------------------------

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, i: usize) -> R {
        (self.f)(self.base.pi_get(i))
    }
}

pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, i: usize) -> (usize, B::Item) {
        (i, self.base.pi_get(i))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.pi_get(i), self.b.pi_get(i))
    }
}

// ---------------------------------------------------------------------------
// conversion traits
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            items: self
                .into_iter()
                .map(|t| std::sync::Mutex::new(Some(t)))
                .collect(),
        }
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter_mut` support: mutable chunks are dispatched index-wise.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

/// Parallel iterator over `&mut [T]`, implemented with raw-pointer indexing
/// guarded by the exclusive borrow held for `'a`.
pub struct SliceIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// Safety: each index is handed out at most once per drive() pass, and the
// exclusive borrow of the slice outlives the iterator.
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}
unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn pi_get(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        // Safety: distinct indices alias distinct elements; drive() touches
        // each index exactly once.
        unsafe { &mut *self.ptr.add(i) }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> SliceIterMut<'data, T> {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> SliceIterMut<'data, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_compose() {
        let a = vec![1, 2, 3, 4];
        let b = vec![10, 20, 30, 40];
        let v: Vec<(usize, i32)> = a
            .par_iter()
            .zip(&b)
            .enumerate()
            .map(|(i, (x, y))| (i, x + y))
            .collect();
        assert_eq!(v, vec![(0, 11), (1, 22), (2, 33), (3, 44)]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn for_each_counts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        items.par_iter().for_each(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_iter_mut_writes_all() {
        let mut v = vec![0usize; 100];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn owned_vec_into_par_iter_moves_items() {
        let v = vec!["a".to_string(), "b".to_string()];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }

    #[test]
    fn with_max_threads_caps_and_restores() {
        let unlimited = current_num_threads();
        let (inner, nested) = with_max_threads(1, || {
            (
                current_num_threads(),
                with_max_threads(0, current_num_threads),
            )
        });
        assert_eq!(inner, 1, "cap must apply inside the scope");
        assert_eq!(nested, unlimited, "0 must lift the cap while nested");
        assert_eq!(current_num_threads(), unlimited, "cap must be restored");
        // parallel combinators still produce correct, ordered output capped
        let v: Vec<usize> =
            with_max_threads(1, || (0..100).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
        // the cap must unwind with a panicking closure
        let caught = std::panic::catch_unwind(|| with_max_threads(1, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(
            current_num_threads(),
            unlimited,
            "cap must be restored across unwinding"
        );
    }
}
