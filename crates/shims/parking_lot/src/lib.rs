//! Offline shim for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `Mutex::lock` returns the guard directly, and `Condvar::wait` takes the
//! guard by `&mut` instead of by value. Poisoned std locks are recovered
//! (`into_inner`) rather than propagated, matching parking_lot's behaviour
//! of not poisoning on panic.

use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning, exactly like parking_lot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 42);
    }
}
