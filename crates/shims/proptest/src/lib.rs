//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate reimplements
//! the small slice of proptest the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_flat_map`, and `boxed`
//! - strategies for numeric ranges, `bool`, tuples, `Just`, and
//!   [`collection::vec`]
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`], and [`prop_assert_eq!`]
//!
//! Differences from real proptest: **no shrinking** (a failing case reports
//! its seed and values but is not minimized), and generation is driven by a
//! deterministic per-test splitmix64 stream so failures reproduce across
//! runs. `PROPTEST_CASES` overrides the case count from the environment.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

/// Everything call sites get from `use proptest::prelude::*`.
pub mod prelude {
    /// `any::<T>()` for the handful of types the shim supports.
    pub use crate::arbitrary::any;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Namespace alias mirroring `proptest::prelude::prop::*`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::num;
}

// ---------------------------------------------------------------------------
// RNG: splitmix64, deterministic per test name
// ---------------------------------------------------------------------------

/// Deterministic random stream. Not cryptographic; stable across runs so
/// failures are reproducible without persistence files.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from the test name (FNV-1a) so each test gets its own
    /// stream, plus `PROPTEST_SEED` override from the environment.
    pub fn from_name(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// config + failure plumbing
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count, honoring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family; carried as `Err` out of the test
/// closure and turned into a panic with case context by the harness.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
    #[allow(non_snake_case)]
    pub fn Fail(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            pred: f,
            reason,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, S> Strategy for FlatMap<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> S,
    S: Strategy,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

pub struct Filter<B, F> {
    base: B,
    pred: F,
    reason: &'static str,
}

impl<B, F> Strategy for Filter<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges --------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// --- bool ------------------------------------------------------------------

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `prop::bool::ANY`
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

// --- num (minimal: full-range strategies per type) -------------------------

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Finite doubles, roughly log-uniform over magnitude.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let mag = (rng.unit_f64() * 2.0 - 1.0) * 40.0; // exponent
                let sign = if rng.bool() { 1.0 } else { -1.0 };
                sign * rng.unit_f64() * mag.exp2()
            }
        }
    }
}

mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    pub struct AnyStrategy<T>(PhantomData<T>);

    /// `any::<T>()` — supported for `bool`, `f64`, and the integer types.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Strategy for AnyStrategy<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            crate::num::f64::ANY.generate(rng)
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);
}

// --- collections -----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element_strategy, size)`
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// The property-test harness macro. Supports the same surface syntax as
/// proptest's for simple cases:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name), case + 1, cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec((0usize..5, prop::bool::ANY), 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn prop_map_composes(v in prop::collection::vec(0u64..100, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
