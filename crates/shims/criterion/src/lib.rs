//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Provides just enough of the criterion API (`Criterion`,
//! `benchmark_group`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! for the workspace's benches to build and produce useful wall-time
//! numbers without the statistics machinery. Each benchmark runs a short
//! warmup, then `sample_size` timed samples, and reports min/median.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.default_sample_size, &mut f);
        self
    }

    /// Accepted for API compatibility with `criterion_group!` configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // one warmup pass
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    if times.is_empty() {
        eprintln!("{label}: no samples");
        return;
    }
    let min = times[0];
    let med = times[times.len() / 2];
    eprintln!("{label}: min {}  median {}", fmt_time(min), fmt_time(med));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<F, R>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let t = Instant::now();
        std::hint::black_box(f());
        self.elapsed += t.elapsed();
        self.iters += 1;
    }
}

/// Re-export matching criterion's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        assert!(count >= 4); // warmup + 3 samples
    }
}
