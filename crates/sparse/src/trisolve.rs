//! Triangular solves with a sparse CSC lower factor.
//!
//! These are the "sparse BLAS" TRSV/TRSM kernels: forward/backward
//! substitution sweeping the factor's columns, against a dense vector or a
//! dense multi-column RHS (in place). They are used directly by the implicit
//! dual operator and form the `sparse factor storage` path of the Schur
//! assembler (paper §3.1).

use crate::csc::CscOf;
use sc_dense::{MatMutOf, Scalar};

/// Solve `L x = b` in place for sparse lower-triangular `L` (diagonal entry
/// must be present in every column).
pub fn csc_lower_solve<S: Scalar>(l: &CscOf<S>, x: &mut [S]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(x.len(), n);
    for j in 0..n {
        let (rows, vals) = l.col(j);
        debug_assert_eq!(rows.first(), Some(&j), "missing diagonal in column {j}");
        let xj = x[j] / vals[0];
        x[j] = xj;
        // sc-analyze: allow(float-eq)
        if xj != S::ZERO {
            for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
                x[i] -= v * xj;
            }
        }
    }
}

/// Solve `Lᵀ x = b` in place for sparse lower-triangular `L`.
pub fn csc_lower_t_solve<S: Scalar>(l: &CscOf<S>, x: &mut [S]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(x.len(), n);
    for j in (0..n).rev() {
        let (rows, vals) = l.col(j);
        debug_assert_eq!(rows.first(), Some(&j), "missing diagonal in column {j}");
        let mut s = x[j];
        for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
            s -= v * x[i];
        }
        x[j] = s / vals[0];
    }
}

/// Solve `L X = B` in place for a dense multi-column RHS (sparse TRSM).
///
/// The factor column sweep is shared across RHS columns; each factor entry is
/// applied to one RHS row at a time, so the inner loop runs along the RHS row
/// (strided by the leading dimension). For tall skinny RHS this is the
/// standard sparse TRSM ordering.
pub fn csc_lower_solve_mat<S: Scalar>(l: &CscOf<S>, mut b: MatMutOf<'_, S>) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(b.nrows(), n);
    for c in 0..b.ncols() {
        let bcol = b.col_mut(c);
        for j in 0..n {
            let (rows, vals) = l.col(j);
            debug_assert_eq!(rows.first(), Some(&j), "missing diagonal in column {j}");
            let xj = bcol[j] / vals[0];
            bcol[j] = xj;
            // no zero-value fast path (see sc-dense TRSM): sparse BLAS
            // kernels traverse the stored factor pattern unconditionally
            for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
                bcol[i] -= v * xj;
            }
        }
    }
}

/// Solve `Lᵀ X = B` in place for a dense multi-column RHS.
pub fn csc_lower_t_solve_mat<S: Scalar>(l: &CscOf<S>, mut b: MatMutOf<'_, S>) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(b.nrows(), n);
    for c in 0..b.ncols() {
        let bcol = b.col_mut(c);
        for j in (0..n).rev() {
            let (rows, vals) = l.col(j);
            debug_assert_eq!(rows.first(), Some(&j), "missing diagonal in column {j}");
            let mut s = bcol[j];
            for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
                s -= v * bcol[i];
            }
            bcol[j] = s / vals[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use sc_dense::Mat;

    fn sparse_lower(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for j in 0..n {
            c.push(j, j, 2.0 + (j % 3) as f64);
            if j + 2 < n {
                c.push(j + 2, j, -0.5);
            }
            if j + 5 < n {
                c.push(j + 5, j, 0.25);
            }
        }
        c.to_csc()
    }

    #[test]
    fn vec_solve_matches_dense() {
        let n = 11;
        let l = sparse_lower(n);
        let ld = l.to_dense();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut x = b.clone();
        csc_lower_solve(&l, &mut x);
        let mut xd = b.clone();
        sc_dense::trsv_lower(ld.as_ref(), &mut xd);
        for i in 0..n {
            assert!((x[i] - xd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn vec_t_solve_matches_dense() {
        let n = 9;
        let l = sparse_lower(n);
        let ld = l.to_dense();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let mut x = b.clone();
        csc_lower_t_solve(&l, &mut x);
        let mut xd = b.clone();
        sc_dense::trsv_lower_t(ld.as_ref(), &mut xd);
        for i in 0..n {
            assert!((x[i] - xd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn mat_solves_match_dense() {
        let n = 13;
        let m = 4;
        let l = sparse_lower(n);
        let ld = l.to_dense();
        let b = Mat::from_fn(n, m, |i, j| ((i * 3 + j * 7) % 5) as f64 - 2.0);
        let mut x = b.clone();
        csc_lower_solve_mat(&l, x.as_mut());
        let mut xd = b.clone();
        sc_dense::trsm_lower_left(ld.as_ref(), xd.as_mut());
        assert!(sc_dense::max_abs_diff(x.as_ref(), xd.as_ref()) < 1e-12);

        let mut y = b.clone();
        csc_lower_t_solve_mat(&l, y.as_mut());
        let mut yd = b.clone();
        sc_dense::trsm_lower_left_t(ld.as_ref(), yd.as_mut());
        assert!(sc_dense::max_abs_diff(y.as_ref(), yd.as_ref()) < 1e-12);
    }

    #[test]
    fn solve_preserves_zeros_above_pivot() {
        // stepped-shape invariant on the sparse path too
        let n = 10;
        let l = sparse_lower(n);
        let mut b = Mat::zeros(n, 2);
        for i in 4..n {
            b[(i, 0)] = 1.0;
        }
        for i in 7..n {
            b[(i, 1)] = 2.0;
        }
        csc_lower_solve_mat(&l, b.as_mut());
        for i in 0..4 {
            assert_eq!(b[(i, 0)], 0.0);
        }
        for i in 0..7 {
            assert_eq!(b[(i, 1)], 0.0);
        }
    }

    #[test]
    fn f32_solve_tracks_f64() {
        let n = 10;
        let l = sparse_lower(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3) - 1.0).collect();
        let mut x64 = b.clone();
        csc_lower_solve(&l, &mut x64);
        let l32 = l.cast::<f32>();
        let mut x32: Vec<f32> = b.iter().map(|&v| v as f32).collect(); // sc-analyze: allow(precision-discipline)
        csc_lower_solve(&l32, &mut x32);
        for i in 0..n {
            assert!((f64::from(x32[i]) - x64[i]).abs() < 1e-4);
        }
    }
}
