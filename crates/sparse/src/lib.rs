//! Sparse matrix substrate: COO/CSC/CSR storage, conversions, permutations,
//! triangular solves, and pattern analysis.
//!
//! Conventions used throughout the workspace:
//!
//! - **CSC** ([`Csc`]) is the primary format for factors and for the gluing
//!   matrix `B̃ᵀ` (whose columns correspond to Lagrange multipliers). Row
//!   indices inside each column are stored sorted.
//! - **CSR** ([`Csr`]) serves row-oriented products (`B x`, SpMV in the
//!   implicit dual operator).
//! - Symmetric matrices (FEM stiffness) are stored with **both** triangles so
//!   that SpMV, graph adjacency, and upper-triangle access for the symbolic
//!   factorization all come from one structure.
//! - Permutations are carried by [`Perm`], which stores both directions of the
//!   mapping to keep `old→new`/`new→old` confusion out of call sites.

pub mod binned;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod pattern;
pub mod perm;
pub mod trisolve;

pub use binned::{binned_gather, binned_spmv, BinnedPlan};
pub use coo::{Coo, CooOf};
pub use csc::{Csc, CscOf};
pub use csr::{Csr, CsrOf};
pub use pattern::{column_pivots, is_stepped, stepped_fill_ratio};
pub use perm::Perm;
pub use trisolve::{
    csc_lower_solve, csc_lower_solve_mat, csc_lower_t_solve, csc_lower_t_solve_mat,
};
