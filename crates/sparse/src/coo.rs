//! Triplet (coordinate) format builder.
//!
//! FEM assembly scatters element contributions as `(row, col, value)` triplets
//! and converts once to CSC/CSR; duplicate coordinates are summed during the
//! conversion, which is exactly the semantics element assembly needs.

use crate::csc::CscOf;
use crate::csr::CsrOf;
use sc_dense::Scalar;

/// Coordinate-format sparse matrix builder, generic over the element scalar.
/// Duplicates are allowed and are summed on conversion. The [`Coo`] alias
/// pins `f64`.
#[derive(Clone, Debug, Default)]
pub struct CooOf<S = f64> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<S>,
}

/// `f64` COO builder (the historical default element type).
pub type Coo = CooOf<f64>;

impl<S: Scalar> CooOf<S> {
    /// New empty builder with a fixed shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooOf {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// New empty builder with triplet capacity preallocated.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooOf {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summation).
    pub fn ntriplets(&self) -> usize {
        self.vals.len()
    }

    /// Append a triplet. Panics on out-of-range coordinates.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: S) {
        assert!(i < self.nrows && j < self.ncols, "triplet out of range");
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Convert to CSC, summing duplicates and sorting row indices per column.
    pub fn to_csc(&self) -> CscOf<S> {
        // Counting sort by column, then per-column sort by row and compaction.
        let mut col_counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            col_counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        let nnz = self.vals.len();
        let mut ri = vec![0usize; nnz];
        let mut vv = vec![S::ZERO; nnz];
        let mut next = col_counts.clone();
        for t in 0..nnz {
            let c = self.cols[t];
            let p = next[c];
            next[c] += 1;
            ri[p] = self.rows[t];
            vv[p] = self.vals[t];
        }
        // Sort each column segment by row index and sum duplicates.
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut out_ri = Vec::with_capacity(nnz);
        let mut out_vv = Vec::with_capacity(nnz);
        let mut idx: Vec<usize> = Vec::new();
        for j in 0..self.ncols {
            let (s, e) = (col_counts[j], col_counts[j + 1]);
            idx.clear();
            idx.extend(s..e);
            idx.sort_unstable_by_key(|&t| ri[t]);
            let mut last_row = usize::MAX;
            for &t in &idx {
                if ri[t] == last_row {
                    let l = out_vv.len() - 1;
                    out_vv[l] += vv[t];
                } else {
                    last_row = ri[t];
                    out_ri.push(ri[t]);
                    out_vv.push(vv[t]);
                }
            }
            col_ptr[j + 1] = out_ri.len();
        }
        CscOf::from_parts(self.nrows, self.ncols, col_ptr, out_ri, out_vv)
    }

    /// Convert to CSR, summing duplicates and sorting column indices per row.
    pub fn to_csr(&self) -> CsrOf<S> {
        self.to_csc().to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.0);
        c.push(2, 1, 5.0);
        c.push(2, 1, -5.0);
        let m = c.to_csc();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(2, 1), 0.0); // explicit zero kept (summed to zero)
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut c = Coo::new(4, 2);
        c.push(3, 0, 1.0);
        c.push(1, 0, 2.0);
        c.push(2, 0, 3.0);
        let m = c.to_csc();
        let (rows, _) = m.col(0);
        assert_eq!(rows, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "triplet out of range")]
    fn out_of_range_rejected() {
        let mut c = Coo::new(2, 2);
        c.push(2, 0, 1.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let c = Coo::new(5, 4);
        let m = c.to_csc();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.ncols(), 4);
    }

    #[test]
    fn f32_builder_converts() {
        let mut c = CooOf::<f32>::new(2, 2);
        c.push(0, 0, 1.5f32);
        c.push(0, 0, 0.25f32);
        let m = c.to_csc();
        assert_eq!(m.get(0, 0), 1.75f32);
    }
}
