//! Compressed sparse row storage.

use sc_dense::{MatOf, Scalar};

/// CSR sparse matrix with sorted column indices inside each row, generic over
/// the element scalar. The [`Csr`] alias pins `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrOf<S = f64> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<S>,
}

/// `f64` CSR matrix (the historical default element type).
pub type Csr = CsrOf<f64>;

impl<S: Scalar> CsrOf<S> {
    /// Build from raw parts (mirror of [`crate::Csc::from_parts`]): O(1)
    /// shape invariants always checked, O(nnz) structural invariants via
    /// [`check_invariants`](CsrOf::check_invariants) in debug builds.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<S>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr
                .last()
                .expect("row_ptr has nrows + 1 entries per the assert above"),
            col_idx.len(),
            "row_ptr end"
        );
        assert_eq!(col_idx.len(), values.len(), "index/value length mismatch");
        let m = CsrOf {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        #[cfg(debug_assertions)]
        if let Err(e) = m.check_invariants() {
            // debug-build invariant gate; release keeps the raw parts. sc-analyze: allow(panic-surface)
            panic!("Csr::from_parts: {e}");
        }
        m
    }

    /// Verify every structural invariant of the format (monotone `row_ptr`,
    /// in-range strictly increasing column indices per row), returning a
    /// description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(format!(
                "row_ptr length {} != nrows + 1 = {}",
                self.row_ptr.len(),
                self.nrows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err(format!("row_ptr[0] = {} != 0", self.row_ptr[0]));
        }
        if *self.row_ptr.last().expect("row_ptr length verified above") != self.col_idx.len() {
            return Err(format!(
                "row_ptr end {} != nnz {}",
                self.row_ptr.last().expect("row_ptr length verified above"),
                self.col_idx.len()
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(format!(
                "col_idx length {} != values length {}",
                self.col_idx.len(),
                self.values.len()
            ));
        }
        for i in 0..self.nrows {
            if self.row_ptr[i] > self.row_ptr[i + 1] {
                return Err(format!(
                    "row_ptr not monotone at row {i}: {} > {}",
                    self.row_ptr[i],
                    self.row_ptr[i + 1]
                ));
            }
            let mut prev = None;
            for &j in &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]] {
                if j >= self.ncols {
                    return Err(format!(
                        "column index {j} out of range (ncols {}) in row {i}",
                        self.ncols
                    ));
                }
                if let Some(p) = prev {
                    if j <= p {
                        return Err(format!(
                            "column indices not strictly increasing in row {i}: {p} then {j}"
                        ));
                    }
                }
                prev = Some(j);
            }
        }
        Ok(())
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[S]) {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[r.clone()], &self.values[r])
    }

    /// Entry `(i, j)` or zero when absent.
    pub fn get(&self, i: usize, j: usize) -> S {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => S::ZERO,
        }
    }

    /// Convert to CSC.
    pub fn to_csc(&self) -> crate::CscOf<S> {
        // CSR of A is CSC of Aᵀ; transpose it back.
        crate::CscOf::from_parts(
            self.ncols,
            self.nrows,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.values.clone(),
        )
        .transpose()
    }

    /// Dense copy.
    pub fn to_dense(&self) -> MatOf<S> {
        let mut m = MatOf::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Element-wise precision conversion (pattern shared, values converted
    /// through `f64`).
    pub fn cast<T: Scalar>(&self) -> CsrOf<T> {
        CsrOf {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|&v| T::from_f64(v.to_f64()))
                .collect(),
        }
    }

    /// `y = alpha * A x + beta * y` (row-wise dot products).
    pub fn spmv(&self, alpha: S, x: &[S], beta: S, y: &mut [S]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut s = S::ZERO;
            for (&j, &v) in cols.iter().zip(vals) {
                s += v * x[j];
            }
            *yi = alpha * s + if beta == S::ZERO { S::ZERO } else { beta * *yi };
            // sc-analyze: allow(float-eq)
        }
    }

    /// `y = alpha * Aᵀ x + beta * y` (scatter).
    pub fn spmv_t(&self, alpha: S, x: &[S], beta: S, y: &mut [S]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        // sc-analyze: allow(float-eq)
        if beta == S::ZERO {
            y.fill(S::ZERO);
        // sc-analyze: allow(float-eq)
        } else if beta != S::ONE {
            for v in y.iter_mut() {
                *v *= beta;
            }
        }
        for (i, &xi) in x.iter().enumerate() {
            let w = alpha * xi;
            // sc-analyze: allow(float-eq)
            if w != S::ZERO {
                let (cols, vals) = self.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    y[j] += w * v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        let mut c = Coo::new(3, 4);
        c.push(0, 1, 1.0);
        c.push(0, 3, 2.0);
        c.push(1, 0, 3.0);
        c.push(2, 2, 4.0);
        c.to_csr()
    }

    #[test]
    fn row_access() {
        let m = sample();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[1.0, 2.0]);
    }

    #[test]
    fn spmv_and_transpose_match_dense() {
        let m = sample();
        let d = m.to_dense();
        let x4 = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 3];
        m.spmv(1.0, &x4, 0.0, &mut y);
        let mut yd = [0.0; 3];
        sc_dense::gemv(1.0, d.as_ref(), &x4, 0.0, &mut yd);
        assert_eq!(y, yd);

        let x3 = [1.0, -1.0, 0.5];
        let mut z = [0.0; 4];
        m.spmv_t(1.0, &x3, 0.0, &mut z);
        let mut zd = [0.0; 4];
        sc_dense::gemv_t(1.0, d.as_ref(), &x3, 0.0, &mut zd);
        assert_eq!(z, zd);
    }

    #[test]
    fn check_invariants_accepts_valid_and_rejects_broken() {
        assert!(sample().check_invariants().is_ok());

        let mut bad = sample();
        bad.col_idx[0] = 99;
        assert!(bad.check_invariants().unwrap_err().contains("out of range"));

        let mut bad = sample();
        bad.col_idx.swap(0, 1); // row 0 had cols [1, 3]
        assert!(bad
            .check_invariants()
            .unwrap_err()
            .contains("strictly increasing"));
    }

    #[test]
    fn csc_roundtrip() {
        let m = sample();
        let c = m.to_csc();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), c.get(i, j));
            }
        }
    }

    #[test]
    fn cast_roundtrips_exact_values() {
        let m = sample();
        assert_eq!(m.cast::<f32>().cast::<f64>(), m);
    }
}
