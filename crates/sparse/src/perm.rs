//! Permutations carried with both directions of the mapping.

/// A permutation of `0..n` storing `old_of_new` (the order in which old
/// indices appear) and its inverse `new_of_old`.
///
/// With `p = old_of_new`, the permuted object satisfies
/// `permuted[i_new] = original[p[i_new]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Perm {
    old_of_new: Vec<usize>,
    new_of_old: Vec<usize>,
}

impl Perm {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Perm {
            old_of_new: (0..n).collect(),
            new_of_old: (0..n).collect(),
        }
    }

    /// Build from the `old_of_new` direction; validates that the input is a
    /// permutation.
    pub fn from_old_of_new(old_of_new: Vec<usize>) -> Self {
        let n = old_of_new.len();
        let mut new_of_old = vec![usize::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            assert!(old < n, "index out of range");
            assert!(new_of_old[old] == usize::MAX, "duplicate index {old}");
            new_of_old[old] = new;
        }
        Perm {
            old_of_new,
            new_of_old,
        }
    }

    /// Build from the `new_of_old` direction.
    pub fn from_new_of_old(new_of_old: Vec<usize>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![usize::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(new < n, "index out of range");
            assert!(old_of_new[new] == usize::MAX, "duplicate index {new}");
            old_of_new[new] = old;
        }
        Perm {
            old_of_new,
            new_of_old,
        }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.old_of_new.len()
    }

    /// True iff the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.old_of_new.is_empty()
    }

    /// Old index at new position `i`.
    #[inline]
    pub fn old_of_new(&self, i: usize) -> usize {
        self.old_of_new[i]
    }

    /// New position of old index `i`.
    #[inline]
    pub fn new_of_old(&self, i: usize) -> usize {
        self.new_of_old[i]
    }

    /// The full `old_of_new` slice.
    pub fn old_of_new_slice(&self) -> &[usize] {
        &self.old_of_new
    }

    /// The full `new_of_old` slice.
    pub fn new_of_old_slice(&self) -> &[usize] {
        &self.new_of_old
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Perm {
        Perm {
            old_of_new: self.new_of_old.clone(),
            new_of_old: self.old_of_new.clone(),
        }
    }

    /// Composition: apply `self` first, then `other` (`result.old_of_new(i) =
    /// self.old_of_new(other.old_of_new(i))`).
    pub fn then(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len());
        let old_of_new: Vec<usize> = (0..self.len())
            .map(|i| self.old_of_new(other.old_of_new(i)))
            .collect();
        Perm::from_old_of_new(old_of_new)
    }

    /// Apply to a vector: `out[new] = v[old_of_new(new)]`. Generic over the
    /// element type so mixed-precision paths can permute `f32` data.
    pub fn apply<S: Copy>(&self, v: &[S]) -> Vec<S> {
        assert_eq!(v.len(), self.len());
        self.old_of_new.iter().map(|&o| v[o]).collect()
    }

    /// Apply the inverse to a vector: `out[old] = v[new_of_old(old)]`.
    pub fn apply_inverse<S: Copy>(&self, v: &[S]) -> Vec<S> {
        assert_eq!(v.len(), self.len());
        self.new_of_old.iter().map(|&nw| v[nw]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_directions() {
        let p = Perm::from_old_of_new(vec![2, 0, 3, 1]);
        for i in 0..4 {
            assert_eq!(p.new_of_old(p.old_of_new(i)), i);
            assert_eq!(p.old_of_new(p.new_of_old(i)), i);
        }
    }

    #[test]
    fn apply_and_inverse_cancel() {
        let p = Perm::from_old_of_new(vec![1, 3, 0, 2]);
        let v = vec![10.0, 11.0, 12.0, 13.0];
        let w = p.apply(&v);
        assert_eq!(w, vec![11.0, 13.0, 10.0, 12.0]);
        assert_eq!(p.apply_inverse(&w), v);
    }

    #[test]
    fn inverse_swaps() {
        let p = Perm::from_old_of_new(vec![1, 2, 0]);
        let q = p.inverse();
        for i in 0..3 {
            assert_eq!(q.old_of_new(i), p.new_of_old(i));
        }
    }

    #[test]
    fn composition_applies_in_order() {
        let p = Perm::from_old_of_new(vec![1, 0, 2]);
        let q = Perm::from_old_of_new(vec![2, 1, 0]);
        let r = p.then(&q);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(r.apply(&v), q.apply(&p.apply(&v)));
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn rejects_non_permutation() {
        Perm::from_old_of_new(vec![0, 0, 1]);
    }

    #[test]
    fn from_new_of_old_matches() {
        let p = Perm::from_old_of_new(vec![2, 0, 1]);
        let q = Perm::from_new_of_old(p.new_of_old_slice().to_vec());
        assert_eq!(p, q);
    }
}
