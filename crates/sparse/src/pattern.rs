//! Sparsity-pattern analysis for the stepped shape.
//!
//! The paper's optimizations revolve around two pattern quantities of the
//! (column-permuted) `B̃ᵀ` matrix:
//!
//! - the **column pivot**: row index of the first nonzero in each column;
//! - the **row trail**: column index of the last nonzero in each row.
//!
//! A matrix is in *stepped shape* when column pivots are non-decreasing from
//! left to right (which makes row trails non-decreasing from top to bottom).

use crate::csc::CscOf;
use sc_dense::Scalar;

/// Row index of the first stored entry of each column; `None` for empty
/// columns.
pub fn column_pivots<S: Scalar>(b: &CscOf<S>) -> Vec<Option<usize>> {
    (0..b.ncols())
        .map(|j| b.col(j).0.first().copied())
        .collect()
}

/// True when the column pivots are non-decreasing left to right (empty
/// columns are treated as pivoting at `nrows`, i.e. they sort to the right).
pub fn is_stepped<S: Scalar>(b: &CscOf<S>) -> bool {
    let mut last = 0usize;
    for j in 0..b.ncols() {
        let p = b.col(j).0.first().copied().unwrap_or(b.nrows());
        if p < last {
            return false;
        }
        last = p;
    }
    true
}

/// Pivots with empty columns mapped to `nrows` (the sentinel used by the
/// splitting kernels; an empty column contributes no work anywhere).
pub fn pivots_or_end<S: Scalar>(b: &CscOf<S>) -> Vec<usize> {
    (0..b.ncols())
        .map(|j| b.col(j).0.first().copied().unwrap_or(b.nrows()))
        .collect()
}

/// Given non-decreasing column pivots, the *row trail* of row `i` is the
/// index of the right-most column whose pivot is `<= i` — i.e. the number of
/// columns "active" at row `i`, minus one. Returns, for each row, the count
/// of active columns (`trail + 1`), which is the quantity the kernels need
/// (an effective width).
pub fn active_width_per_row(pivots: &[usize], nrows: usize) -> Vec<usize> {
    // pivots must be sorted ascending (stepped shape).
    debug_assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
    let mut widths = vec![0usize; nrows];
    let mut j = 0usize;
    for (i, w) in widths.iter_mut().enumerate() {
        while j < pivots.len() && pivots[j] <= i {
            j += 1;
        }
        *w = j;
    }
    widths
}

/// Fraction of the dense `nrows × ncols` area that lies **at or below** the
/// column pivots — the fraction of a dense TRSM's work that the stepped
/// kernels actually have to perform. For a perfectly triangular RHS this is
/// `1/3` at large sizes, matching the paper's theoretical speedup of 3 (§4.3).
pub fn stepped_fill_ratio<S: Scalar>(b: &CscOf<S>) -> f64 {
    if b.nrows() == 0 || b.ncols() == 0 {
        return 0.0;
    }
    let total = (b.nrows() * b.ncols()) as f64; // sc-analyze: allow(precision-discipline)
    let mut below = 0usize;
    for j in 0..b.ncols() {
        let p = b.col(j).0.first().copied().unwrap_or(b.nrows());
        below += b.nrows() - p;
    }
    below as f64 / total // sc-analyze: allow(precision-discipline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;

    fn stepped_example() -> Csc {
        // pivots: col0 -> row0, col1 -> row1, col2 -> row3
        let mut c = Coo::new(4, 3);
        c.push(0, 0, 1.0);
        c.push(3, 0, 1.0);
        c.push(1, 1, 1.0);
        c.push(2, 1, 1.0);
        c.push(3, 2, 1.0);
        c.to_csc()
    }

    #[test]
    fn pivots_found() {
        let b = stepped_example();
        assert_eq!(column_pivots(&b), vec![Some(0), Some(1), Some(3)]);
        assert!(is_stepped(&b));
    }

    #[test]
    fn non_stepped_detected() {
        let mut c = Coo::new(4, 2);
        c.push(2, 0, 1.0);
        c.push(0, 1, 1.0);
        let b = c.to_csc();
        assert!(!is_stepped(&b));
    }

    #[test]
    fn empty_columns_sort_right() {
        let mut c = Coo::new(3, 2);
        c.push(1, 0, 1.0);
        let b = c.to_csc(); // col 1 empty
        assert!(is_stepped(&b));
        assert_eq!(pivots_or_end(&b), vec![1, 3]);
    }

    #[test]
    fn active_widths_accumulate() {
        let piv = vec![0, 1, 3];
        let w = active_width_per_row(&piv, 4);
        assert_eq!(w, vec![1, 2, 2, 3]);
    }

    #[test]
    fn fill_ratio_of_triangle_approaches_half() {
        // strictly triangular pivots p_j = j in an n × n matrix: ratio =
        // sum(n - j)/n² = (n+1)/(2n) → 1/2
        let n = 50;
        let mut c = Coo::new(n, n);
        for j in 0..n {
            c.push(j, j, 1.0);
            c.push(n - 1, j, 1.0);
        }
        let b = c.to_csc();
        let r = stepped_fill_ratio(&b);
        assert!((r - (n + 1) as f64 / (2 * n) as f64).abs() < 1e-12);
    }
}
