//! Compressed sparse column storage.

use crate::csr::CsrOf;
use crate::perm::Perm;
use sc_dense::{MatOf, Scalar};

/// CSC sparse matrix with sorted row indices inside each column, generic over
/// the element scalar. The [`Csc`] alias pins `f64` (the historical element
/// type), keeping pre-mixed-precision code compiling unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct CscOf<S = f64> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<S>,
}

/// `f64` CSC matrix (the historical default element type).
pub type Csc = CscOf<f64>;

impl<S: Scalar> CscOf<S> {
    /// Build from raw parts. The O(1) shape invariants (pointer array length,
    /// first/last pointer, index/value length match) are always checked; the
    /// O(nnz) structural invariants (monotone `col_ptr`, in-range and strictly
    /// increasing row indices per column) are checked through
    /// [`check_invariants`](CscOf::check_invariants) in debug builds only —
    /// every in-crate producer (COO conversion, permutation, block
    /// extraction) maintains them by construction.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<S>,
    ) -> Self {
        assert_eq!(col_ptr.len(), ncols + 1, "col_ptr length");
        assert_eq!(col_ptr[0], 0, "col_ptr must start at 0");
        assert_eq!(
            *col_ptr
                .last()
                .expect("col_ptr has ncols + 1 entries per the assert above"),
            row_idx.len(),
            "col_ptr end"
        );
        assert_eq!(row_idx.len(), values.len(), "index/value length mismatch");
        let m = CscOf {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        };
        #[cfg(debug_assertions)]
        if let Err(e) = m.check_invariants() {
            // debug-build invariant gate; release keeps the raw parts. sc-analyze: allow(panic-surface)
            panic!("Csc::from_parts: {e}");
        }
        m
    }

    /// Verify every structural invariant of the format, returning a
    /// description of the first violation found:
    ///
    /// - `col_ptr` has `ncols + 1` entries, starts at 0, ends at `nnz`, and
    ///   is monotone non-decreasing;
    /// - `row_idx` and `values` have equal length;
    /// - row indices are in `0..nrows` and strictly increasing within each
    ///   column (sorted, no duplicates).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.col_ptr.len() != self.ncols + 1 {
            return Err(format!(
                "col_ptr length {} != ncols + 1 = {}",
                self.col_ptr.len(),
                self.ncols + 1
            ));
        }
        if self.col_ptr[0] != 0 {
            return Err(format!("col_ptr[0] = {} != 0", self.col_ptr[0]));
        }
        if *self.col_ptr.last().expect("col_ptr length verified above") != self.row_idx.len() {
            return Err(format!(
                "col_ptr end {} != nnz {}",
                self.col_ptr.last().expect("col_ptr length verified above"),
                self.row_idx.len()
            ));
        }
        if self.row_idx.len() != self.values.len() {
            return Err(format!(
                "row_idx length {} != values length {}",
                self.row_idx.len(),
                self.values.len()
            ));
        }
        for j in 0..self.ncols {
            if self.col_ptr[j] > self.col_ptr[j + 1] {
                return Err(format!(
                    "col_ptr not monotone at column {j}: {} > {}",
                    self.col_ptr[j],
                    self.col_ptr[j + 1]
                ));
            }
            let mut prev = None;
            for &i in &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]] {
                if i >= self.nrows {
                    return Err(format!(
                        "row index {i} out of range (nrows {}) in column {j}",
                        self.nrows
                    ));
                }
                if let Some(p) = prev {
                    if i <= p {
                        return Err(format!(
                            "row indices not strictly increasing in column {j}: {p} then {i}"
                        ));
                    }
                }
                prev = Some(i);
            }
        }
        Ok(())
    }

    /// All-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscOf {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CscOf {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
            values: vec![S::ONE; n],
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[S] {
        &self.values
    }

    /// Mutable value array (pattern stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[S]) {
        let r = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[r.clone()], &self.values[r])
    }

    /// Entry `(i, j)` or zero if not stored (binary search within column).
    pub fn get(&self, i: usize, j: usize) -> S {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(p) => vals[p],
            Err(_) => S::ZERO,
        }
    }

    /// Dense copy.
    pub fn to_dense(&self) -> MatOf<S> {
        let mut m = MatOf::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            let mcol = m.col_mut(j);
            for (&i, &v) in rows.iter().zip(vals) {
                mcol[i] = v;
            }
        }
        m
    }

    /// Convert to CSR (transpose of the internal layout; `O(nnz)`).
    pub fn to_csr(&self) -> CsrOf<S> {
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &i in &self.row_idx {
            row_counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![S::ZERO; self.nnz()];
        let mut next = row_counts.clone();
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            for (&i, &x) in rows.iter().zip(v) {
                let p = next[i];
                next[i] += 1;
                col_idx[p] = j;
                vals[p] = x;
            }
        }
        CsrOf::from_parts(self.nrows, self.ncols, row_counts, col_idx, vals)
    }

    /// Transposed copy (CSC of the transpose).
    pub fn transpose(&self) -> CscOf<S> {
        let t = self.to_csr();
        // A CSR of A reinterpreted as CSC of Aᵀ.
        CscOf::from_parts(
            self.ncols,
            self.nrows,
            t.row_ptr().to_vec(),
            t.col_idx().to_vec(),
            t.values().to_vec(),
        )
    }

    /// Element-wise precision conversion (pattern shared, values converted
    /// through `f64`).
    pub fn cast<T: Scalar>(&self) -> CscOf<T> {
        CscOf {
            nrows: self.nrows,
            ncols: self.ncols,
            col_ptr: self.col_ptr.clone(),
            row_idx: self.row_idx.clone(),
            values: self
                .values
                .iter()
                .map(|&v| T::from_f64(v.to_f64()))
                .collect(),
        }
    }

    /// `y = alpha * A x + beta * y`.
    pub fn spmv(&self, alpha: S, x: &[S], beta: S, y: &mut [S]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        // sc-analyze: allow(float-eq)
        if beta == S::ZERO {
            y.fill(S::ZERO);
        // sc-analyze: allow(float-eq)
        } else if beta != S::ONE {
            for v in y.iter_mut() {
                *v *= beta;
            }
        }
        for (j, &xj) in x.iter().enumerate() {
            let w = alpha * xj;
            // sc-analyze: allow(float-eq)
            if w != S::ZERO {
                let (rows, vals) = self.col(j);
                for (&i, &v) in rows.iter().zip(vals) {
                    y[i] += w * v;
                }
            }
        }
    }

    /// `y = alpha * Aᵀ x + beta * y`.
    pub fn spmv_t(&self, alpha: S, x: &[S], beta: S, y: &mut [S]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for (j, yj) in y.iter_mut().enumerate() {
            let (rows, vals) = self.col(j);
            let mut s = S::ZERO;
            for (&i, &v) in rows.iter().zip(vals) {
                s += v * x[i];
            }
            *yj = alpha * s + if beta == S::ZERO { S::ZERO } else { beta * *yj };
            // sc-analyze: allow(float-eq)
        }
    }

    /// Sparse-dense product `C = alpha * A * B + beta * C` (`A` is this
    /// matrix, `B`/`C` dense column-major).
    pub fn spmm(
        &self,
        alpha: S,
        b: sc_dense::MatRefOf<'_, S>,
        beta: S,
        c: &mut sc_dense::MatMutOf<'_, S>,
    ) {
        assert_eq!(b.nrows(), self.ncols, "spmm inner dimension");
        assert_eq!(c.nrows(), self.nrows, "spmm C rows");
        assert_eq!(c.ncols(), b.ncols(), "spmm C cols");
        for j in 0..c.ncols() {
            let bcol = b.col(j);
            let ccol = c.col_mut(j);
            // sc-analyze: allow(float-eq)
            if beta == S::ZERO {
                ccol.fill(S::ZERO);
            // sc-analyze: allow(float-eq)
            } else if beta != S::ONE {
                for v in ccol.iter_mut() {
                    *v *= beta;
                }
            }
            for (k, &bkj) in bcol.iter().enumerate() {
                let w = alpha * bkj;
                // sc-analyze: allow(float-eq)
                if w != S::ZERO {
                    let (rows, vals) = self.col(k);
                    for (&i, &v) in rows.iter().zip(vals) {
                        ccol[i] += w * v;
                    }
                }
            }
        }
    }

    /// Symmetric permutation `P A Pᵀ` of a (structurally) symmetric matrix:
    /// new index `i` corresponds to old index `perm.old_of_new(i)`.
    pub fn sym_perm(&self, perm: &Perm) -> CscOf<S> {
        assert_eq!(self.nrows, self.ncols, "sym_perm needs a square matrix");
        assert_eq!(perm.len(), self.ncols);
        let n = self.ncols;
        let mut out = crate::coo::CooOf::with_capacity(n, n, self.nnz());
        for j_old in 0..n {
            let j_new = perm.new_of_old(j_old);
            let (rows, vals) = self.col(j_old);
            for (&i_old, &v) in rows.iter().zip(vals) {
                out.push(perm.new_of_old(i_old), j_new, v);
            }
        }
        out.to_csc()
    }

    /// Permute the **rows** only: row `i_old` becomes `perm.new_of_old(i_old)`.
    pub fn permute_rows(&self, perm: &Perm) -> CscOf<S> {
        assert_eq!(perm.len(), self.nrows);
        let mut col_ptr = self.col_ptr.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![S::ZERO; self.nnz()];
        let mut scratch: Vec<(usize, S)> = Vec::new();
        let mut p = 0;
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            scratch.clear();
            scratch.extend(
                rows.iter()
                    .zip(vals)
                    .map(|(&i, &v)| (perm.new_of_old(i), v)),
            );
            scratch.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in &scratch {
                row_idx[p] = i;
                values[p] = v;
                p += 1;
            }
            col_ptr[j + 1] = p;
        }
        CscOf::from_parts(self.nrows, self.ncols, col_ptr, row_idx, values)
    }

    /// Permute the **columns** only: new column `j` is old column
    /// `perm.old_of_new(j)`. This is the stepped-shape permutation applied to
    /// `B̃ᵀ` (paper §3: "we only permute its columns").
    pub fn permute_cols(&self, perm: &Perm) -> CscOf<S> {
        assert_eq!(perm.len(), self.ncols);
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for j_new in 0..self.ncols {
            let j_old = perm.old_of_new(j_new);
            let (rows, vals) = self.col(j_old);
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            col_ptr[j_new + 1] = row_idx.len();
        }
        CscOf::from_parts(self.nrows, self.ncols, col_ptr, row_idx, values)
    }

    /// Extract the sub-matrix of rows `r0..` and columns `c0..c1`, shifting
    /// row indices down by `r0`. Entries with row `< r0` must not exist in the
    /// selected columns (checked) — this is the *subfactor extraction* used by
    /// RHS-splitting TRSM with a sparse factor (paper §3.2).
    pub fn trailing_submatrix(&self, r0: usize, c0: usize, c1: usize) -> CscOf<S> {
        assert!(c0 <= c1 && c1 <= self.ncols);
        let mut col_ptr = vec![0usize; c1 - c0 + 1];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for (jn, j) in (c0..c1).enumerate() {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                assert!(i >= r0, "entry above the requested trailing block");
                row_idx.push(i - r0);
                values.push(v);
            }
            col_ptr[jn + 1] = row_idx.len();
        }
        CscOf::from_parts(self.nrows - r0, c1 - c0, col_ptr, row_idx, values)
    }

    /// Extract a general rectangular block `rows r0..r1 × cols c0..c1`,
    /// dropping entries outside the row range.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> CscOf<S> {
        assert!(r0 <= r1 && r1 <= self.nrows && c0 <= c1 && c1 <= self.ncols);
        let mut col_ptr = vec![0usize; c1 - c0 + 1];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for (jn, j) in (c0..c1).enumerate() {
            let (rows, vals) = self.col(j);
            // rows are sorted: binary search the window
            let lo = rows.partition_point(|&i| i < r0);
            let hi = rows.partition_point(|&i| i < r1);
            for k in lo..hi {
                row_idx.push(rows[k] - r0);
                values.push(vals[k]);
            }
            col_ptr[jn + 1] = row_idx.len();
        }
        CscOf::from_parts(r1 - r0, c1 - c0, col_ptr, row_idx, values)
    }

    /// Indices of rows that contain at least one entry (sorted). Used by the
    /// *pruning* optimization to compact empty rows out of sub-diagonal factor
    /// blocks before a GEMM (paper §3.2).
    pub fn nonempty_rows(&self) -> Vec<usize> {
        let mut mark = vec![false; self.nrows];
        for &i in &self.row_idx {
            mark[i] = true;
        }
        mark.iter()
            .enumerate()
            .filter_map(|(i, &m)| if m { Some(i) } else { None })
            .collect()
    }

    /// Gather the given rows into a dense `rows.len() × ncols` matrix
    /// (rows must be sorted ascending; entries in other rows are dropped).
    pub fn gather_rows_dense(&self, rows: &[usize]) -> MatOf<S> {
        let mut pos = vec![usize::MAX; self.nrows];
        for (k, &i) in rows.iter().enumerate() {
            pos[i] = k;
        }
        let mut m = MatOf::zeros(rows.len(), self.ncols);
        for j in 0..self.ncols {
            let (ri, vals) = self.col(j);
            let mcol = m.col_mut(j);
            for (&i, &v) in ri.iter().zip(vals) {
                let p = pos[i];
                if p != usize::MAX {
                    mcol[p] = v;
                }
            }
        }
        m
    }

    /// Frobenius norm of the stored values (accumulated in `f64`).
    pub fn frob_norm(&self) -> f64 {
        self.values
            .iter()
            .map(|v| v.to_f64() * v.to_f64())
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csc {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(2, 0, 4.0);
        c.push(1, 1, 3.0);
        c.push(0, 2, 2.0);
        c.push(2, 2, 5.0);
        c.to_csc()
    }

    #[test]
    fn get_and_to_dense_agree() {
        let m = sample();
        let d = m.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), d[(i, j)]);
            }
        }
    }

    #[test]
    fn csr_roundtrip_preserves_entries() {
        let m = sample();
        let r = m.to_csr();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), r.get(i, j));
            }
        }
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = sample();
        let t = m.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.5, 0.5, 0.5];
        let mut yd = y;
        m.spmv(2.0, &x, 0.5, &mut y);
        sc_dense::gemv(2.0, d.as_ref(), &x, 0.5, &mut yd);
        for i in 0..3 {
            assert!((y[i] - yd[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn spmv_t_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        let mut yd = [0.0; 3];
        m.spmv_t(1.0, &x, 0.0, &mut y);
        sc_dense::gemv_t(1.0, d.as_ref(), &x, 0.0, &mut yd);
        for j in 0..3 {
            assert!((y[j] - yd[j]).abs() < 1e-14);
        }
    }

    #[test]
    fn sym_perm_matches_dense_permutation() {
        // symmetric matrix
        let mut c = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 2.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 0.5),
            (2, 1, 0.5),
        ] {
            c.push(i, j, v);
        }
        let a = c.to_csc();
        let perm = Perm::from_old_of_new(vec![2, 0, 1]);
        let p = a.sym_perm(&perm);
        for i_new in 0..3 {
            for j_new in 0..3 {
                assert_eq!(
                    p.get(i_new, j_new),
                    a.get(perm.old_of_new(i_new), perm.old_of_new(j_new))
                );
            }
        }
    }

    #[test]
    fn permute_cols_reorders() {
        let m = sample();
        let perm = Perm::from_old_of_new(vec![2, 1, 0]);
        let p = m.permute_cols(&perm);
        for i in 0..3 {
            for jn in 0..3 {
                assert_eq!(p.get(i, jn), m.get(i, perm.old_of_new(jn)));
            }
        }
    }

    #[test]
    fn permute_rows_reorders() {
        let m = sample();
        let perm = Perm::from_old_of_new(vec![1, 2, 0]);
        let p = m.permute_rows(&perm);
        for io in 0..3 {
            for j in 0..3 {
                assert_eq!(p.get(perm.new_of_old(io), j), m.get(io, j));
            }
        }
    }

    #[test]
    fn trailing_submatrix_shifts() {
        // lower-triangular example
        let mut c = Coo::new(4, 4);
        for (i, j, v) in [
            (0, 0, 1.0),
            (1, 1, 2.0),
            (2, 2, 3.0),
            (3, 3, 4.0),
            (2, 1, 0.5),
            (3, 2, 0.25),
        ] {
            c.push(i, j, v);
        }
        let l = c.to_csc();
        let s = l.trailing_submatrix(1, 1, 4);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 0), 0.5);
        assert_eq!(s.get(2, 1), 0.25);
    }

    #[test]
    fn block_extraction() {
        let m = sample();
        let b = m.block(1, 3, 0, 2);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.get(0, 1), 3.0); // old (1,1)
        assert_eq!(b.get(1, 0), 4.0); // old (2,0)
    }

    #[test]
    fn nonempty_rows_and_gather() {
        let mut c = Coo::new(5, 2);
        c.push(1, 0, 1.0);
        c.push(3, 0, 2.0);
        c.push(3, 1, 4.0);
        let m = c.to_csc();
        assert_eq!(m.nonempty_rows(), vec![1, 3]);
        let g = m.gather_rows_dense(&[1, 3]);
        assert_eq!(g.nrows(), 2);
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(1, 0)], 2.0);
        assert_eq!(g[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "above the requested trailing block")]
    fn trailing_submatrix_checks_rows() {
        let m = sample(); // has entry (0, 2)
        m.trailing_submatrix(1, 2, 3);
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = sample();
        let ad = a.to_dense();
        let b = sc_dense::Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.0);
        let mut c = sc_dense::Mat::from_fn(3, 4, |i, j| (i + j) as f64);
        let mut cd = c.clone();
        a.spmm(2.0, b.as_ref(), 0.5, &mut c.as_mut());
        sc_dense::gemm(
            2.0,
            ad.as_ref(),
            sc_dense::Trans::No,
            b.as_ref(),
            sc_dense::Trans::No,
            0.5,
            cd.as_mut(),
        );
        assert!(sc_dense::max_abs_diff(c.as_ref(), cd.as_ref()) < 1e-13);
    }

    #[test]
    fn spmm_beta_zero_clears_output() {
        let a = sample();
        let b = sc_dense::Mat::identity(3);
        let mut c = sc_dense::Mat::from_fn(3, 3, |_, _| f64::NAN);
        a.spmm(1.0, b.as_ref(), 0.0, &mut c.as_mut());
        assert!(sc_dense::max_abs_diff(c.as_ref(), a.to_dense().as_ref()) < 1e-14);
    }

    #[test]
    fn check_invariants_accepts_valid_and_rejects_broken() {
        assert!(sample().check_invariants().is_ok());
        assert!(Csc::zeros(4, 0).check_invariants().is_ok());
        assert!(Csc::identity(5).check_invariants().is_ok());

        // out-of-range row index
        let mut bad = sample();
        bad.row_idx[0] = 99;
        assert!(bad.check_invariants().unwrap_err().contains("out of range"));

        // unsorted rows within a column
        let mut bad = sample();
        bad.row_idx.swap(0, 1); // column 0 had rows [0, 2]
        assert!(bad
            .check_invariants()
            .unwrap_err()
            .contains("strictly increasing"));

        // broken pointer array (col_ptr decreases between columns 1 and 2)
        let mut bad = sample();
        bad.col_ptr[2] = bad.col_ptr[1] - 1;
        assert!(bad.check_invariants().unwrap_err().contains("monotone"));
    }

    #[test]
    fn frob_norm_matches_values() {
        let m = sample();
        let expect = (1.0f64 + 16.0 + 9.0 + 4.0 + 25.0).sqrt();
        assert!((m.frob_norm() - expect).abs() < 1e-14);
    }

    #[test]
    fn cast_shares_pattern_and_converts_values() {
        let m = sample();
        let m32 = m.cast::<f32>();
        assert_eq!(m32.col_ptr(), m.col_ptr());
        assert_eq!(m32.row_idx(), m.row_idx());
        assert_eq!(m32.get(2, 2), 5.0f32);
        // exact-integer values roundtrip bitwise
        assert_eq!(m32.cast::<f64>(), m);
    }
}
