//! Row-length-binned SpMV for the implicit dual-operator hot loop.
//!
//! The gather side of the implicit application (`out = B̃ t`, one short dot
//! product per Lagrange multiplier) spends its time in a loop whose trip
//! count changes every row — the branch predictor and the vectorizer both
//! lose. Binning rows by their *exact* nonzero count (the technique of Wong,
//! Kuhl & Darve for ELL-like GPU SpMV) turns the irregular loop into a few
//! regular ones: all rows of length `L` run a fixed-trip-count kernel, and
//! the common tiny lengths (`1..=4`, the redundant-gluing case is almost
//! entirely length 1–2) get fully unrolled specializations.
//!
//! Binning only reorders *which row* is processed when — never the order of
//! accumulation *within* a row. Rows write disjoint outputs, so
//! [`binned_spmv`] is **bitwise identical** to [`CsrOf::spmv`], and
//! [`binned_gather`] to the per-column gather of the boundary map in
//! `sc_feti` (pinned by tests in both crates). The scatter side of the
//! boundary map accumulates into *shared* dof-space slots and skips zero
//! multipliers, so reordering it would change results; it stays row-ordered.

use crate::csr::CsrOf;
use sc_dense::Scalar;

/// Rows of one length class: every row in `rows` has exactly `len` stored
/// entries.
struct Bin {
    len: usize,
    rows: Vec<usize>,
}

/// Row-length binning of a sparse row structure (CSR rows, or the columns of
/// the hoisted boundary map — anything described by a `row_ptr`-style offset
/// array). Build once, apply every iteration.
pub struct BinnedPlan {
    bins: Vec<Bin>,
    n_rows: usize,
}

impl BinnedPlan {
    /// Bin the rows of an offset array (`offsets[i]..offsets[i+1]` is row
    /// `i`'s entry range, as in CSR `row_ptr` or the boundary-map column
    /// offsets). Empty rows are skipped entirely — the `beta` term is applied
    /// to them separately by the apply routines.
    pub fn from_offsets(offsets: &[usize]) -> Self {
        assert!(!offsets.is_empty(), "offset array has n + 1 entries");
        let n_rows = offsets.len() - 1;
        let mut by_len: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..n_rows {
            let len = offsets[i + 1] - offsets[i];
            if len == 0 {
                continue;
            }
            match by_len.binary_search_by_key(&len, |(l, _)| *l) {
                Ok(pos) => by_len[pos].1.push(i),
                Err(pos) => by_len.insert(pos, (len, vec![i])),
            }
        }
        BinnedPlan {
            bins: by_len
                .into_iter()
                .map(|(len, rows)| Bin { len, rows })
                .collect(),
            n_rows,
        }
    }

    /// Bin the rows of a CSR matrix.
    pub fn of<S: Scalar>(a: &CsrOf<S>) -> Self {
        let mut offsets = Vec::with_capacity(a.nrows() + 1);
        offsets.push(0);
        let mut end = 0;
        for i in 0..a.nrows() {
            end += a.row(i).0.len();
            offsets.push(end);
        }
        Self::from_offsets(&offsets)
    }

    /// Number of distinct row lengths (excluding empty rows).
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Number of rows of the binned structure (including empty rows).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Largest row length present.
    pub fn max_len(&self) -> usize {
        self.bins.last().map_or(0, |b| b.len)
    }
}

/// One row's dot product, accumulated in stored order exactly like the
/// scalar reference (`s` starts at zero and each term is added in turn, so
/// the result is bitwise identical). Lengths `1..=4` are fully unrolled.
#[inline(always)]
fn row_dot<S: Scalar>(len: usize, cols: &[usize], vals: &[S], x: &[S]) -> S {
    let mut s = S::ZERO;
    match len {
        1 => {
            s += vals[0] * x[cols[0]];
        }
        2 => {
            s += vals[0] * x[cols[0]];
            s += vals[1] * x[cols[1]];
        }
        3 => {
            s += vals[0] * x[cols[0]];
            s += vals[1] * x[cols[1]];
            s += vals[2] * x[cols[2]];
        }
        4 => {
            s += vals[0] * x[cols[0]];
            s += vals[1] * x[cols[1]];
            s += vals[2] * x[cols[2]];
            s += vals[3] * x[cols[3]];
        }
        _ => {
            for (&j, &v) in cols[..len].iter().zip(&vals[..len]) {
                s += v * x[j];
            }
        }
    }
    s
}

/// `y = alpha * A x + beta * y` through a row-length-binned schedule —
/// bitwise identical to [`CsrOf::spmv`] on the same matrix (binning reorders
/// rows, which write disjoint `y` slots; within-row accumulation order is
/// preserved).
///
/// ```
/// use sc_sparse::{binned_spmv, BinnedPlan, Coo};
///
/// // [[2, 0], [1, 3]] · [1, 10] = [2, 31]
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 0, 2.0);
/// coo.push(1, 0, 1.0);
/// coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let plan = BinnedPlan::of(&a);
/// let mut y = vec![f64::NAN; 2]; // beta == 0 overwrites, NaN never survives
/// binned_spmv(&plan, &a, 1.0, &[1.0, 10.0], 0.0, &mut y);
/// assert_eq!(y, vec![2.0, 31.0]);
/// ```
pub fn binned_spmv<S: Scalar>(
    plan: &BinnedPlan,
    a: &CsrOf<S>,
    alpha: S,
    x: &[S],
    beta: S,
    y: &mut [S],
) {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(y.len(), a.nrows(), "y length");
    assert_eq!(plan.n_rows(), a.nrows(), "plan built for another structure");
    // beta pass first: covers empty rows (which no bin visits) and matches
    // the reference's `alpha * s + beta * y[i]` term for the rest.
    // sc-analyze: allow(float-eq)
    if beta == S::ZERO {
        y.fill(S::ZERO);
    } else {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for bin in &plan.bins {
        for &i in &bin.rows {
            let (cols, vals) = a.row(i);
            y[i] += alpha * row_dot(bin.len, cols, vals, x);
        }
    }
}

/// Binned gather `y[i] = Σ_k vals[k] * x[idx[k]]` over the raw offset/index/
/// value slices of a hoisted index map (the `sc_feti` boundary map) — the
/// `alpha == 1, beta == 0` SpMV without a matrix type in the way. Bitwise
/// identical to the straight per-row loop.
pub fn binned_gather<S: Scalar>(
    plan: &BinnedPlan,
    offsets: &[usize],
    idx: &[usize],
    vals: &[S],
    x: &[S],
    y: &mut [S],
) {
    assert_eq!(offsets.len(), y.len() + 1, "offsets length");
    assert_eq!(plan.n_rows(), y.len(), "plan built for another structure");
    y.fill(S::ZERO);
    for bin in &plan.bins {
        for &i in &bin.rows {
            let k0 = offsets[i];
            y[i] = row_dot(bin.len, &idx[k0..], &vals[k0..], x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn irregular(n: usize, m: usize, seed: u64) -> CsrOf<f64> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut coo = Coo::new(n, m);
        for i in 0..n {
            let len = (next() % 7) as usize; // includes empty rows
            for _ in 0..len {
                let j = (next() % m as u64) as usize;
                let v = (next() % 1000) as f64 / 500.0 - 1.0;
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_bitwise() {
        for seed in 1..6 {
            let a = irregular(37, 19, seed);
            let plan = BinnedPlan::of(&a);
            let x: Vec<f64> = (0..19).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
            for (alpha, beta) in [(1.0, 0.0), (2.0, 0.0), (1.0, 1.0), (-0.5, 0.25)] {
                let mut y_ref: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 9.0).collect();
                let mut y_bin = y_ref.clone();
                a.spmv(alpha, &x, beta, &mut y_ref);
                binned_spmv(&plan, &a, alpha, &x, beta, &mut y_bin);
                assert_eq!(y_ref, y_bin, "seed {seed} alpha {alpha} beta {beta}");
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = irregular(10, 8, 9);
        let plan = BinnedPlan::of(&a);
        let x = vec![1.0; 8];
        let mut y = vec![f64::NAN; 10];
        binned_spmv(&plan, &a, 1.0, &x, 0.0, &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bins_partition_nonempty_rows() {
        let a = irregular(50, 20, 3);
        let plan = BinnedPlan::of(&a);
        let mut seen = vec![0usize; 50];
        for bin in &plan.bins {
            for &i in &bin.rows {
                assert_eq!(a.row(i).0.len(), bin.len);
                seen[i] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            let expect = usize::from(!a.row(i).0.is_empty());
            assert_eq!(count, expect, "row {i}");
        }
        assert!(plan.n_bins() <= plan.max_len());
    }

    #[test]
    fn gather_matches_direct_loop_bitwise() {
        let a = irregular(31, 23, 7);
        // view the CSR rows as a gather map
        let mut offsets = vec![0usize];
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..31 {
            let (c, v) = a.row(i);
            idx.extend_from_slice(c);
            vals.extend_from_slice(v);
            offsets.push(idx.len());
        }
        let plan = BinnedPlan::from_offsets(&offsets);
        let x: Vec<f64> = (0..23).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let mut y_ref = vec![0.0; 31];
        for (i, yi) in y_ref.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in offsets[i]..offsets[i + 1] {
                s += vals[k] * x[idx[k]];
            }
            *yi = s;
        }
        let mut y_bin = vec![f64::NAN; 31];
        binned_gather(&plan, &offsets, &idx, &vals, &x, &mut y_bin);
        assert_eq!(y_ref, y_bin);
    }
}
