//! Sparse Cholesky factorization substrate.
//!
//! Plays the role of the two sparse solver libraries the paper builds on:
//!
//! - the **simplicial up-looking** factorization ([`simplicial`]) is the
//!   CHOLMOD analog — slightly slower numeric phase, but the factor is a
//!   plain CSC matrix that can be *extracted* and handed to the GPU Schur
//!   assembler (the property the paper needs from CHOLMOD, §4);
//! - the **supernodal multifrontal** factorization ([`supernodal`]) is the
//!   MKL PARDISO analog — dense frontal panels factored with Level-3 kernels,
//!   faster on 3D problems.
//!
//! Both share the same [`symbolic`] analysis (elimination tree + factor
//! pattern), mirroring the two-stage symbolic/numeric split the paper
//! describes in §2.2, so multi-step simulations pay the symbolic cost once.
//!
//! [`schur`] implements the *sparse-RHS* Schur complement — forward solves
//! restricted to the elimination-tree reach of each right-hand-side column —
//! which stands in for PARDISO's augmented incomplete factorization
//! (`expl_mkl` in the paper's Figure 9).

pub mod etree;
pub mod schur;
pub mod simplicial;
pub mod solver;
pub mod supernodal;
pub mod symbolic;

pub use etree::{etree, postorder};
pub use schur::{schur_from_factor, sparse_solve_reach};
pub use simplicial::{simplicial_factorize, FactorError};
pub use solver::{CholOptions, Engine, SparseCholesky, SparseCholeskyOf};
pub use supernodal::{SupernodalFactor, SupernodalFactorOf, SupernodalSymbolic};
pub use symbolic::Symbolic;
