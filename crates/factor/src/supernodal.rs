//! Supernodal multifrontal Cholesky (the MKL PARDISO stand-in).
//!
//! Fundamental supernodes (runs of columns with nested patterns) are factored
//! as dense trapezoidal panels inside frontal matrices; children pass their
//! dense update (Schur) blocks to parents through an extend-add. The dense
//! pivot elimination reuses
//! [`sc_dense::partial_cholesky_in_place`], so the numeric phase runs on
//! Level-3-style kernels — which is what makes this engine faster than the
//! simplicial one on 3D problems, mirroring the PARDISO/CHOLMOD split in the
//! paper's Figure 9.

use crate::etree::{postorder, NONE};
use crate::simplicial::FactorError;
use crate::symbolic::Symbolic;
use sc_dense::{partial_cholesky_in_place, MatOf, Scalar};
use sc_sparse::CscOf;

/// Supernode partition and assembly-tree structure derived from a
/// [`Symbolic`] analysis.
#[derive(Clone, Debug)]
pub struct SupernodalSymbolic {
    /// First column of each supernode, plus a final sentinel (`nsuper + 1`
    /// entries).
    pub snode_start: Vec<usize>,
    /// Supernode owning each column.
    pub snode_of_col: Vec<usize>,
    /// Sorted global row list of each supernode's front (starts with the
    /// supernode's own columns).
    pub rows: Vec<Vec<usize>>,
    /// Assembly-tree parent of each supernode (`NONE` for roots).
    pub sparent: Vec<usize>,
    /// Postorder of the assembly tree (children before parents).
    pub post: Vec<usize>,
}

impl SupernodalSymbolic {
    /// Number of supernodes.
    pub fn nsuper(&self) -> usize {
        self.snode_start.len() - 1
    }

    /// Column range `[c0, c1)` of supernode `s`.
    pub fn cols(&self, s: usize) -> (usize, usize) {
        (self.snode_start[s], self.snode_start[s + 1])
    }

    /// Build from a symbolic analysis: detect fundamental supernodes and the
    /// assembly tree.
    pub fn from_symbolic(sym: &Symbolic) -> Self {
        let n = sym.n;
        let count = |j: usize| sym.col_ptr[j + 1] - sym.col_ptr[j];
        let mut snode_start = vec![0usize];
        for j in 1..n {
            let fundamental = sym.parent[j - 1] == j && count(j - 1) == count(j) + 1;
            if !fundamental {
                snode_start.push(j);
            }
        }
        snode_start.push(n);
        let nsuper = snode_start.len() - 1;
        let mut snode_of_col = vec![0usize; n];
        for s in 0..nsuper {
            for slot in &mut snode_of_col[snode_start[s]..snode_start[s + 1]] {
                *slot = s;
            }
        }
        let mut rows = Vec::with_capacity(nsuper);
        let mut sparent = vec![NONE; nsuper];
        for s in 0..nsuper {
            let c0 = snode_start[s];
            let c_last = snode_start[s + 1] - 1;
            rows.push(sym.col(c0).to_vec());
            let p = sym.parent[c_last];
            if p != NONE {
                sparent[s] = snode_of_col[p];
            }
        }
        let post = postorder(&sparent);
        SupernodalSymbolic {
            snode_start,
            snode_of_col,
            rows,
            sparent,
            post,
        }
    }
}

/// Numeric supernodal factor: one dense trapezoidal panel per supernode,
/// generic over the working precision. The [`SupernodalFactor`] alias pins
/// `f64`.
#[derive(Clone, Debug)]
pub struct SupernodalFactorOf<S = f64> {
    /// Dimension.
    pub n: usize,
    /// Per-supernode `|R| × nb` panels; column `i` holds `L[R[i..], c0 + i]`
    /// in rows `i..` (the strictly-upper part of the panel is zero).
    pub panels: Vec<MatOf<S>>,
    /// Shared structure.
    pub ssym: SupernodalSymbolic,
}

/// `f64` supernodal factor (the historical default working precision).
pub type SupernodalFactor = SupernodalFactorOf<f64>;

/// Numeric multifrontal factorization of the (permuted, full-symmetric)
/// matrix `a`.
pub fn supernodal_factorize<S: Scalar>(
    a: &CscOf<S>,
    sym: &Symbolic,
    ssym: &SupernodalSymbolic,
) -> Result<SupernodalFactorOf<S>, FactorError> {
    let n = sym.n;
    assert_eq!(a.ncols(), n);
    let nsuper = ssym.nsuper();
    let mut panels: Vec<Option<MatOf<S>>> = vec![None; nsuper];
    // Child updates waiting for their parent: (front row list tail, matrix).
    let mut updates: Vec<Option<(Vec<usize>, MatOf<S>)>> = vec![None; nsuper];
    // children lists in assembly tree
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nsuper];
    for s in 0..nsuper {
        if ssym.sparent[s] != NONE {
            children[ssym.sparent[s]].push(s);
        }
    }
    let mut pos = vec![usize::MAX; n]; // global row -> front-local index

    for &s in &ssym.post {
        let (c0, c1) = ssym.cols(s);
        let nb = c1 - c0;
        let r = &ssym.rows[s];
        let nr = r.len();
        for (local, &g) in r.iter().enumerate() {
            pos[g] = local;
        }
        let mut front = MatOf::<S>::zeros(nr, nr);
        // scatter A's lower-triangle entries of the supernode's columns
        for c in c0..c1 {
            let (rows_a, vals_a) = a.col(c);
            let jl = c - c0;
            for (&i, &v) in rows_a.iter().zip(vals_a) {
                if i < c {
                    continue;
                }
                let il = pos[i];
                debug_assert!(il != usize::MAX, "A entry outside front pattern");
                front[(il, jl)] += v;
            }
        }
        // extend-add children updates
        for &ch in &children[s] {
            let (urows, umat) = updates[ch].take().expect("child update missing");
            let m = urows.len();
            for bj in 0..m {
                let cj = pos[urows[bj]];
                debug_assert!(cj != usize::MAX, "child update row outside parent front");
                for bi in bj..m {
                    let ci = pos[urows[bi]];
                    front[(ci, cj)] += umat[(bi, bj)];
                }
            }
        }
        // eliminate the supernode's nb pivots
        partial_cholesky_in_place(front.as_mut(), nb).map_err(|e| FactorError {
            column: c0 + e.pivot,
            value: e.value,
        })?;
        // stash the update matrix for the parent
        if nr > nb {
            let urows = r[nb..].to_vec();
            let umat = front.submatrix(nb, nb, nr - nb, nr - nb);
            updates[s] = Some((urows, umat));
        } else {
            debug_assert!(ssym.sparent[s] == NONE || nr == nb);
        }
        // keep only the panel
        panels[s] = Some(front.submatrix(0, 0, nr, nb));
        for &g in r {
            pos[g] = usize::MAX;
        }
    }
    Ok(SupernodalFactorOf {
        n,
        panels: panels
            .into_iter()
            .map(|p| p.expect("every supernode assembled a panel in the loop above"))
            .collect(),
        ssym: ssym.clone(),
    })
}

impl<S: Scalar> SupernodalFactorOf<S> {
    /// Export the factor as a plain CSC matrix (rows sorted, diagonal first)
    /// — the "factor extraction" capability the GPU paths need.
    pub fn to_csc(&self) -> CscOf<S> {
        let nsuper = self.ssym.nsuper();
        let mut col_ptr = vec![0usize; self.n + 1];
        for s in 0..nsuper {
            let (c0, c1) = self.ssym.cols(s);
            let nr = self.ssym.rows[s].len();
            for c in c0..c1 {
                col_ptr[c + 1] = nr - (c - c0);
            }
        }
        for j in 0..self.n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[self.n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![S::ZERO; nnz];
        for s in 0..nsuper {
            let (c0, c1) = self.ssym.cols(s);
            let r = &self.ssym.rows[s];
            let panel = &self.panels[s];
            for (i0, &dst) in col_ptr[c0..c1].iter().enumerate() {
                for (k, &g) in r[i0..].iter().enumerate() {
                    row_idx[dst + k] = g;
                    values[dst + k] = panel[(i0 + k, i0)];
                }
            }
        }
        CscOf::from_parts(self.n, self.n, col_ptr, row_idx, values)
    }

    /// Forward solve `L x = b` in place using the dense panels.
    pub fn solve_fwd(&self, x: &mut [S]) {
        assert_eq!(x.len(), self.n);
        for s in 0..self.ssym.nsuper() {
            let (c0, c1) = self.ssym.cols(s);
            let nb = c1 - c0;
            let panel = &self.panels[s];
            let r = &self.ssym.rows[s];
            // dense TRSV on the top nb × nb lower triangle
            sc_dense::trsv_lower(panel.as_ref().sub(0, 0, nb, nb), &mut x[c0..c1]);
            // propagate to below rows
            for (k, &g) in r[nb..].iter().enumerate() {
                let mut s_acc = S::ZERO;
                for j in 0..nb {
                    s_acc += panel[(nb + k, j)] * x[c0 + j];
                }
                x[g] -= s_acc;
            }
        }
    }

    /// Backward solve `Lᵀ x = b` in place using the dense panels.
    pub fn solve_bwd(&self, x: &mut [S]) {
        assert_eq!(x.len(), self.n);
        for s in (0..self.ssym.nsuper()).rev() {
            let (c0, c1) = self.ssym.cols(s);
            let nb = c1 - c0;
            let panel = &self.panels[s];
            let r = &self.ssym.rows[s];
            // gather below-row contributions
            for j in (0..nb).rev() {
                let mut acc = x[c0 + j];
                for (k, &g) in r[nb..].iter().enumerate() {
                    acc -= panel[(nb + k, j)] * x[g];
                }
                // within-panel upper part of Lᵀ: columns j+1..nb of row j
                for i in (j + 1)..nb {
                    acc -= panel[(i, j)] * x[c0 + i];
                }
                x[c0 + j] = acc / panel[(j, j)];
            }
        }
    }

    /// Total stored factor entries (sum of panel trapezoids).
    pub fn nnz(&self) -> usize {
        (0..self.ssym.nsuper())
            .map(|s| {
                let (c0, c1) = self.ssym.cols(s);
                let nb = c1 - c0;
                let nr = self.ssym.rows[s].len();
                nb * nr - nb * (nb - 1) / 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplicial::simplicial_factorize;
    use crate::symbolic::analyze;
    use sc_sparse::{Coo, Csc};

    fn laplace_2d(nx: usize) -> Csc {
        let n = nx * nx;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let v = idx(x, y);
                c.push(v, v, 4.01);
                if x > 0 {
                    c.push(v, idx(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(v, idx(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(v, idx(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(v, idx(x, y + 1), -1.0);
                }
            }
        }
        c.to_csc()
    }

    #[test]
    fn supernode_partition_covers_columns() {
        let a = laplace_2d(6);
        let sym = analyze(&a);
        let ssym = SupernodalSymbolic::from_symbolic(&sym);
        assert_eq!(*ssym.snode_start.last().unwrap(), 36);
        for s in 0..ssym.nsuper() {
            let (c0, c1) = ssym.cols(s);
            assert!(c0 < c1);
            // rows start with the supernode's own columns
            assert_eq!(&ssym.rows[s][..c1 - c0], &(c0..c1).collect::<Vec<_>>()[..]);
        }
    }

    #[test]
    fn matches_simplicial_factor() {
        let a = laplace_2d(7);
        let sym = analyze(&a);
        let ssym = SupernodalSymbolic::from_symbolic(&sym);
        let ls = simplicial_factorize(&a, &sym).unwrap();
        let lm = supernodal_factorize(&a, &sym, &ssym).unwrap().to_csc();
        assert_eq!(ls.nnz(), lm.nnz(), "pattern sizes differ");
        let d = sc_dense::max_abs_diff(ls.to_dense().as_ref(), lm.to_dense().as_ref());
        assert!(d < 1e-10, "factor mismatch {d}");
    }

    #[test]
    fn solves_match_direct() {
        let a = laplace_2d(6);
        let n = a.ncols();
        let sym = analyze(&a);
        let ssym = SupernodalSymbolic::from_symbolic(&sym);
        let f = supernodal_factorize(&a, &sym, &ssym).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut x = b.clone();
        f.solve_fwd(&mut x);
        f.solve_bwd(&mut x);
        let mut r = vec![0.0; n];
        a.spmv(1.0, &x, 0.0, &mut r);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9, "residual at {i}");
        }
    }

    #[test]
    fn nnz_matches_symbolic() {
        let a = laplace_2d(5);
        let sym = analyze(&a);
        let ssym = SupernodalSymbolic::from_symbolic(&sym);
        let f = supernodal_factorize(&a, &sym, &ssym).unwrap();
        assert_eq!(f.nnz(), sym.nnz());
    }

    #[test]
    fn detects_indefinite() {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        c.push(2, 2, -5.0);
        let a = c.to_csc();
        let sym = analyze(&a);
        let ssym = SupernodalSymbolic::from_symbolic(&sym);
        assert!(supernodal_factorize(&a, &sym, &ssym).is_err());
    }
}
