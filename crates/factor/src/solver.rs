//! High-level sparse Cholesky solver: ordering + symbolic + numeric + solve,
//! with factor extraction. This is the per-subdomain "sparse linear solver
//! library" interface the FETI pipeline calls in its initialization /
//! preprocessing stages (paper §2.2).

use crate::simplicial::{simplicial_factorize, FactorError};
use crate::supernodal::{supernodal_factorize, SupernodalFactorOf, SupernodalSymbolic};
use crate::symbolic::{analyze, Symbolic};
use sc_dense::Scalar;
use sc_order::Ordering;
use sc_sparse::{CscOf, Perm};

/// Numeric engine selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Up-looking simplicial factorization (CHOLMOD analog; extractable).
    Simplicial,
    /// Multifrontal supernodal factorization (PARDISO analog; faster in 3D).
    Supernodal,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct CholOptions {
    /// Fill-reducing ordering (default: nested dissection, the METIS
    /// stand-in used throughout the paper).
    pub ordering: Ordering,
    /// Numeric engine.
    pub engine: Engine,
}

impl Default for CholOptions {
    fn default() -> Self {
        CholOptions {
            ordering: Ordering::NestedDissection,
            engine: Engine::Simplicial,
        }
    }
}

enum NumericFactor<S> {
    Simplicial(CscOf<S>),
    Supernodal(SupernodalFactorOf<S>),
}

/// A factorized SPD sparse matrix `A = Pᵀ L Lᵀ P`, generic over the working
/// precision. The [`SparseCholesky`] alias pins `f64`.
pub struct SparseCholeskyOf<S = f64> {
    perm: Perm,
    sym: Symbolic,
    ssym: Option<SupernodalSymbolic>,
    numeric: NumericFactor<S>,
    engine: Engine,
}

/// `f64` sparse Cholesky (the historical default working precision).
pub type SparseCholesky = SparseCholeskyOf<f64>;

impl<S: Scalar> SparseCholeskyOf<S> {
    /// Analyze and factorize `a` (full-symmetric CSC) in one call.
    pub fn factorize(a: &CscOf<S>, opts: CholOptions) -> Result<Self, FactorError> {
        let perm = opts.ordering.compute(a);
        Self::factorize_with_perm(a, perm, opts.engine)
    }

    /// Factorize with an externally computed permutation (the FETI pipeline
    /// computes orderings once in its initialization stage and reuses them).
    pub fn factorize_with_perm(
        a: &CscOf<S>,
        perm: Perm,
        engine: Engine,
    ) -> Result<Self, FactorError> {
        let ap = a.sym_perm(&perm);
        let sym = analyze(&ap);
        let (ssym, numeric) = match engine {
            Engine::Simplicial => (
                None,
                NumericFactor::Simplicial(simplicial_factorize(&ap, &sym)?),
            ),
            Engine::Supernodal => {
                let ssym = SupernodalSymbolic::from_symbolic(&sym);
                let f = supernodal_factorize(&ap, &sym, &ssym)?;
                (Some(ssym), NumericFactor::Supernodal(f))
            }
        };
        Ok(SparseCholeskyOf {
            perm,
            sym,
            ssym,
            numeric,
            engine,
        })
    }

    /// Re-run the numeric factorization for a matrix with the **same
    /// pattern** but new values (the multi-step scenario of §2.2: symbolic
    /// factorization is skipped).
    pub fn refactorize(&mut self, a: &CscOf<S>) -> Result<(), FactorError> {
        let ap = a.sym_perm(&self.perm);
        self.numeric = match self.engine {
            Engine::Simplicial => NumericFactor::Simplicial(simplicial_factorize(&ap, &self.sym)?),
            Engine::Supernodal => NumericFactor::Supernodal(supernodal_factorize(
                &ap,
                &self.sym,
                self.ssym.as_ref().expect("supernodal symbolic"),
            )?),
        };
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.sym.n
    }

    /// The fill-reducing permutation in use.
    pub fn perm(&self) -> &Perm {
        &self.perm
    }

    /// Symbolic analysis (elimination tree + factor pattern).
    pub fn symbolic(&self) -> &Symbolic {
        &self.sym
    }

    /// Extract the factor `L` as CSC (in permuted index space). For the
    /// supernodal engine this materializes the panels.
    pub fn factor_csc(&self) -> CscOf<S> {
        match &self.numeric {
            NumericFactor::Simplicial(l) => l.clone(),
            NumericFactor::Supernodal(f) => f.to_csc(),
        }
    }

    /// Borrow the simplicial factor without copying (None for supernodal).
    pub fn factor_csc_ref(&self) -> Option<&CscOf<S>> {
        match &self.numeric {
            NumericFactor::Simplicial(l) => Some(l),
            NumericFactor::Supernodal(_) => None,
        }
    }

    /// Solve `A x = b`; `b` is in original (unpermuted) index space.
    pub fn solve(&self, b: &[S]) -> Vec<S> {
        let mut x = self.perm.apply(b); // x_perm[new] = b[old]
        self.solve_permuted_in_place(&mut x);
        self.perm.apply_inverse(&x)
    }

    /// Solve in permuted index space, in place (both triangular solves).
    pub fn solve_permuted_in_place(&self, x: &mut [S]) {
        match &self.numeric {
            NumericFactor::Simplicial(l) => {
                sc_sparse::csc_lower_solve(l, x);
                sc_sparse::csc_lower_t_solve(l, x);
            }
            NumericFactor::Supernodal(f) => {
                f.solve_fwd(x);
                f.solve_bwd(x);
            }
        }
    }

    /// Forward solve only (`L y = P b`), in permuted space, in place.
    pub fn solve_fwd_permuted(&self, x: &mut [S]) {
        match &self.numeric {
            NumericFactor::Simplicial(l) => sc_sparse::csc_lower_solve(l, x),
            NumericFactor::Supernodal(f) => f.solve_fwd(x),
        }
    }

    /// Backward solve only (`Lᵀ x = y`), in permuted space, in place.
    pub fn solve_bwd_permuted(&self, x: &mut [S]) {
        match &self.numeric {
            NumericFactor::Simplicial(l) => sc_sparse::csc_lower_t_solve(l, x),
            NumericFactor::Supernodal(f) => f.solve_bwd(x),
        }
    }

    /// Factor non-zero count.
    pub fn factor_nnz(&self) -> usize {
        match &self.numeric {
            NumericFactor::Simplicial(l) => l.nnz(),
            NumericFactor::Supernodal(f) => f.nnz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::{Coo, Csc};

    fn laplace_2d(nx: usize) -> Csc {
        let n = nx * nx;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let v = idx(x, y);
                c.push(v, v, 4.01);
                if x > 0 {
                    c.push(v, idx(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(v, idx(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(v, idx(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(v, idx(x, y + 1), -1.0);
                }
            }
        }
        c.to_csc()
    }

    fn residual_inf(a: &Csc, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.spmv(1.0, x, 0.0, &mut r);
        r.iter()
            .zip(b)
            .map(|(ri, bi)| (ri - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn both_engines_solve_identically() {
        let a = laplace_2d(8);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        for engine in [Engine::Simplicial, Engine::Supernodal] {
            let f = SparseCholesky::factorize(
                &a,
                CholOptions {
                    ordering: Ordering::NestedDissection,
                    engine,
                },
            )
            .unwrap();
            let x = f.solve(&b);
            assert!(residual_inf(&a, &x, &b) < 1e-9, "{engine:?}");
        }
    }

    #[test]
    fn all_orderings_give_same_solution() {
        let a = laplace_2d(6);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut solutions = Vec::new();
        for ordering in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::MinimumDegree,
            Ordering::NestedDissection,
        ] {
            let f = SparseCholesky::factorize(
                &a,
                CholOptions {
                    ordering,
                    engine: Engine::Simplicial,
                },
            )
            .unwrap();
            solutions.push(f.solve(&b));
        }
        for s in &solutions[1..] {
            for i in 0..n {
                assert!((s[i] - solutions[0][i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn nested_dissection_reduces_fill_vs_natural() {
        let a = laplace_2d(16);
        let f_nat = SparseCholesky::factorize(
            &a,
            CholOptions {
                ordering: Ordering::Natural,
                engine: Engine::Simplicial,
            },
        )
        .unwrap();
        let f_nd = SparseCholesky::factorize(
            &a,
            CholOptions {
                ordering: Ordering::NestedDissection,
                engine: Engine::Simplicial,
            },
        )
        .unwrap();
        assert!(
            (f_nd.factor_nnz() as f64) < 0.9 * f_nat.factor_nnz() as f64,
            "ND fill {} vs natural {}",
            f_nd.factor_nnz(),
            f_nat.factor_nnz()
        );
    }

    #[test]
    fn refactorize_reuses_symbolic() {
        let a = laplace_2d(6);
        let n = a.ncols();
        let mut f = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 3.0;
        }
        f.refactorize(&a2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1).collect();
        let x = f.solve(&b);
        assert!(residual_inf(&a2, &x, &b) < 1e-9);
    }

    #[test]
    fn f32_solver_tracks_f64_solution() {
        let a = laplace_2d(8);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let f64s = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let x64 = f64s.solve(&b);
        let a32 = a.cast::<f32>();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect(); // sc-analyze: allow(precision-discipline)
        for engine in [Engine::Simplicial, Engine::Supernodal] {
            let f32s = SparseCholeskyOf::<f32>::factorize(
                &a32,
                CholOptions {
                    ordering: Ordering::NestedDissection,
                    engine,
                },
            )
            .unwrap();
            let x32 = f32s.solve(&b32);
            for i in 0..n {
                assert!(
                    (f64::from(x32[i]) - x64[i]).abs() < 1e-3,
                    "{engine:?} drift at {i}"
                );
            }
        }
    }

    #[test]
    fn extracted_factor_reconstructs_permuted_matrix() {
        let a = laplace_2d(5);
        let f = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let l = f.factor_csc();
        let ap = a.sym_perm(f.perm());
        // ‖L Lᵀ − P A Pᵀ‖
        let ld = l.to_dense();
        let apd = ap.to_dense();
        let n = a.ncols();
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += ld[(i, k)] * ld[(j, k)];
                }
                assert!((s - apd[(i, j)]).abs() < 1e-10);
            }
        }
    }
}
