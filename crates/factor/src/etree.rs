//! Elimination tree and postorder (Davis, "Direct Methods", §4.1).

use sc_dense::Scalar;
use sc_sparse::CscOf;

/// Sentinel for "no parent" (tree root).
pub const NONE: usize = usize::MAX;

/// Elimination tree of a symmetric matrix given in full-symmetric CSC form
/// (only the upper-triangle entries `i < k` of each column `k` are used;
/// values are never read, so any element scalar is accepted).
///
/// `parent[k] == NONE` marks a root.
pub fn etree<S: Scalar>(a: &CscOf<S>) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "etree needs a square matrix");
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        let (rows, _) = a.col(k);
        for &row in rows {
            if row >= k {
                break; // sorted rows: rest is lower triangle
            }
            // Walk from `row` to the root of its current subtree, path
            // compressing ancestors to k.
            let mut i = row;
            while i != NONE && i < k {
                let next = ancestor[i];
                ancestor[i] = k;
                if next == NONE {
                    parent[i] = k;
                }
                i = next;
            }
        }
    }
    parent
}

/// Depth-first postorder of the forest given by `parent`.
///
/// Children are visited in ascending index order, so the postorder is
/// deterministic.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (ascending by construction).
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for i in (0..n).rev() {
        let p = parent[i];
        if p != NONE {
            next[i] = head[p];
            head[p] = i;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for (root, &par) in parent.iter().enumerate() {
        if par != NONE {
            continue;
        }
        stack.push(root);
        while let Some(&v) = stack.last() {
            let child = head[v];
            if child == NONE {
                post.push(v);
                stack.pop();
            } else {
                head[v] = next[child];
                stack.push(child);
            }
        }
    }
    post
}

/// Number of children of each node in the forest.
pub fn child_counts(parent: &[usize]) -> Vec<usize> {
    let mut c = vec![0usize; parent.len()];
    for &p in parent {
        if p != NONE {
            c[p] += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::{Coo, Csc};

    /// Arrowhead matrix: every column connected to the last.
    fn arrowhead(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i + 1 < n {
                c.push(i, n - 1, 1.0);
                c.push(n - 1, i, 1.0);
            }
        }
        c.to_csc()
    }

    #[test]
    fn arrowhead_etree_is_star_to_last() {
        let a = arrowhead(5);
        let p = etree(&a);
        assert_eq!(p, vec![4, 4, 4, 4, NONE]);
    }

    #[test]
    fn tridiagonal_etree_is_path() {
        let n = 6;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        let p = etree(&c.to_csc());
        for (i, &pi) in p.iter().enumerate().take(n - 1) {
            assert_eq!(pi, i + 1);
        }
        assert_eq!(p[n - 1], NONE);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = arrowhead(5);
        let parent = etree(&a);
        let post = postorder(&parent);
        assert_eq!(post.len(), 5);
        let mut pos = [0usize; 5];
        for (k, &v) in post.iter().enumerate() {
            pos[v] = k;
        }
        for v in 0..5 {
            if parent[v] != NONE {
                assert!(pos[v] < pos[parent[v]], "child after parent");
            }
        }
    }

    #[test]
    fn postorder_handles_forest() {
        // two disconnected paths
        let parent = vec![1, NONE, 3, NONE];
        let post = postorder(&parent);
        assert_eq!(post.len(), 4);
        assert!(post.contains(&0) && post.contains(&2));
    }

    #[test]
    fn child_counts_sum_to_non_roots() {
        let a = arrowhead(7);
        let parent = etree(&a);
        let c = child_counts(&parent);
        assert_eq!(c.iter().sum::<usize>(), 6);
        assert_eq!(c[6], 6);
    }
}
