//! Sparse-RHS Schur complement: the stand-in for PARDISO's augmented
//! incomplete factorization (`expl_mkl` in the paper's Figure 9).
//!
//! Given the factor `L` of `K_reg` and the sparse right-hand-side block `B̃ᵀ`,
//! computes `F̃ = (L⁻¹B̃ᵀ)ᵀ (L⁻¹B̃ᵀ)` while restricting every forward solve to
//! the elimination-tree **reach** of its column — the same sparsity the
//! augmented factorization exploits internally. On 2D problems, where the
//! factor is very sparse and the RHS has few columns, this CPU path beats
//! everything (paper §5: "augmented incomplete factorization from PARDISO is
//! still the fastest way to assemble SC for 2D subdomains"); on 3D the reach
//! grows and it loses to the GPU assembler by an order of magnitude.

use crate::etree::NONE;
use sc_dense::{MatOf, Scalar};
use sc_sparse::CscOf;

/// Elimination-tree reach of the row set `b_rows`: every node on a path from
/// a nonzero row to its root, deduplicated and sorted ascending (which is a
/// topological order for a Cholesky factor, since parents have larger
/// indices).
pub fn sparse_solve_reach(parent: &[usize], b_rows: &[usize], mark: &mut [bool]) -> Vec<usize> {
    let mut reach = Vec::new();
    for &r in b_rows {
        let mut i = r;
        while i != NONE && !mark[i] {
            mark[i] = true;
            reach.push(i);
            i = parent[i];
        }
    }
    for &i in &reach {
        mark[i] = false;
    }
    reach.sort_unstable();
    reach
}

/// Sparse forward solve `L x = b` touching only the reach. `x` is a dense
/// scratch vector (zeroed outside the reach on entry and on exit by the
/// caller between uses). Returns nothing; values live in `x[reach]`.
fn sparse_lower_solve_on_reach<S: Scalar>(l: &CscOf<S>, reach: &[usize], x: &mut [S]) {
    for &j in reach {
        let (rows, vals) = l.col(j);
        debug_assert_eq!(rows[0], j, "missing diagonal");
        let xj = x[j] / vals[0];
        x[j] = xj;
        // sc-analyze: allow(float-eq)
        if xj != S::ZERO {
            for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
                x[i] -= v * xj;
            }
        }
    }
}

/// Compute the dense `m × m` Schur complement `F̃ = (L⁻¹ B̃ᵀ)ᵀ (L⁻¹ B̃ᵀ)` from
/// a sparse factor and sparse RHS, exploiting the per-column reach.
///
/// `bt` is `n × m` (column = one Lagrange multiplier) in the **same permuted
/// row space** as `L`. The result is symmetric (both triangles filled).
pub fn schur_from_factor<S: Scalar>(l: &CscOf<S>, parent: &[usize], bt: &CscOf<S>) -> MatOf<S> {
    let n = l.ncols();
    let m = bt.ncols();
    assert_eq!(bt.nrows(), n, "B̃ᵀ row space must match factor");
    // Solve each column on its reach, collecting a sparse Y (CSC-ish).
    let mut mark = vec![false; n];
    let mut x = vec![S::ZERO; n];
    let mut y_cols: Vec<(Vec<usize>, Vec<S>)> = Vec::with_capacity(m);
    for t in 0..m {
        let (rows, vals) = bt.col(t);
        let reach = sparse_solve_reach(parent, rows, &mut mark);
        for (&i, &v) in rows.iter().zip(vals) {
            x[i] = v;
        }
        sparse_lower_solve_on_reach(l, &reach, &mut x);
        let mut yv = Vec::with_capacity(reach.len());
        for &i in &reach {
            yv.push(x[i]);
            x[i] = S::ZERO;
        }
        y_cols.push((reach, yv));
    }
    // F = Yᵀ Y via row-wise outer products: transpose Y to rows first.
    let mut row_counts = vec![0usize; n];
    for (ri, _) in &y_cols {
        for &i in ri {
            row_counts[i] += 1;
        }
    }
    let mut row_ptr = vec![0usize; n + 1];
    for i in 0..n {
        row_ptr[i + 1] = row_ptr[i] + row_counts[i];
    }
    let total: usize = row_ptr[n];
    let mut rcols = vec![0usize; total];
    let mut rvals = vec![S::ZERO; total];
    let mut next = row_ptr.clone();
    for (t, (ri, vv)) in y_cols.iter().enumerate() {
        for (&i, &v) in ri.iter().zip(vv) {
            rcols[next[i]] = t;
            rvals[next[i]] = v;
            next[i] += 1;
        }
    }
    let mut f = MatOf::<S>::zeros(m, m);
    for i in 0..n {
        let s = row_ptr[i];
        let e = row_ptr[i + 1];
        for a in s..e {
            let (ja, va) = (rcols[a], rvals[a]);
            let fcol = f.col_mut(ja);
            for b in a..e {
                // columns within a row are ascending, so rcols[b] >= ja:
                // accumulate into the lower triangle F[rcols[b], ja]
                fcol[rcols[b]] += va * rvals[b];
            }
        }
    }
    f.symmetrize_from_lower();
    f
}

/// Flop count proxy for the sparse Schur path (sum over columns of the
/// factor entries visited) — used by benches to report work savings.
pub fn schur_reach_flops<S: Scalar>(l: &CscOf<S>, parent: &[usize], bt: &CscOf<S>) -> usize {
    let n = l.ncols();
    let mut mark = vec![false; n];
    let mut flops = 0usize;
    for t in 0..bt.ncols() {
        let reach = sparse_solve_reach(parent, bt.col(t).0, &mut mark);
        for &j in &reach {
            flops += 2 * l.col(j).0.len();
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{CholOptions, Engine, SparseCholesky};
    use sc_order::Ordering;
    use sc_sparse::{Coo, Csc};

    fn laplace_1d(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.5);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        c.to_csc()
    }

    #[test]
    fn reach_on_path_tree_is_suffix() {
        // tridiagonal: parent[i] = i+1; reach of {2} in n=6 is {2,3,4,5}
        let a = laplace_1d(6);
        let parent = crate::etree::etree(&a);
        let mut mark = vec![false; 6];
        let reach = sparse_solve_reach(&parent, &[2], &mut mark);
        assert_eq!(reach, vec![2, 3, 4, 5]);
        assert!(mark.iter().all(|&m| !m), "marks must be cleaned");
    }

    #[test]
    fn schur_matches_dense_reference() {
        let n = 20;
        let a = laplace_1d(n);
        let chol = SparseCholesky::factorize_with_perm(
            &a,
            Ordering::NestedDissection.compute(&a),
            Engine::Simplicial,
        )
        .unwrap();
        let l = chol.factor_csc();
        // B with 3 lambda columns touching a few dofs, in ORIGINAL space;
        // permute rows into factor space first.
        let mut bt = Coo::new(n, 3);
        bt.push(0, 0, 1.0);
        bt.push(7, 1, -1.0);
        bt.push(13, 1, 1.0);
        bt.push(19, 2, 1.0);
        let bt = bt.to_csc().permute_rows(chol.perm());
        let f = schur_from_factor(&l, &chol.symbolic().parent, &bt);
        // dense reference: F = Bᵀ A⁻¹ B in original space equals
        // (P Bᵀ)ᵀ (P A Pᵀ)⁻¹ (P Bᵀ) — use permuted consistently:
        let ap = a.sym_perm(chol.perm()).to_dense();
        let btd = bt.to_dense();
        let mut lref = ap.clone();
        sc_dense::cholesky_in_place(lref.as_mut()).unwrap();
        let mut y = btd.clone();
        sc_dense::trsm_lower_left(lref.as_ref(), y.as_mut());
        let mut fref = sc_dense::Mat::zeros(3, 3);
        sc_dense::syrk_t(1.0, y.as_ref(), 0.0, fref.as_mut());
        fref.symmetrize_from_lower();
        assert!(sc_dense::max_abs_diff(f.as_ref(), fref.as_ref()) < 1e-10);
    }

    #[test]
    fn schur_is_symmetric_positive_semidefinite() {
        let n = 15;
        let a = laplace_1d(n);
        let chol = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let mut bt = Coo::new(n, 2);
        bt.push(3, 0, 1.0);
        bt.push(9, 1, 1.0);
        let bt = bt.to_csc().permute_rows(chol.perm());
        let f = schur_from_factor(&l, &chol.symbolic().parent, &bt);
        assert!((f[(0, 1)] - f[(1, 0)]).abs() < 1e-14);
        assert!(f[(0, 0)] > 0.0 && f[(1, 1)] > 0.0);
    }

    #[test]
    fn reach_flops_less_than_full_solve_flops() {
        let n = 40;
        let a = laplace_1d(n);
        let chol = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let l = chol.factor_csc();
        let mut bt = Coo::new(n, 1);
        bt.push(n - 1, 0, 1.0);
        let bt = bt.to_csc().permute_rows(chol.perm());
        let flops = schur_reach_flops(&l, &chol.symbolic().parent, &bt);
        let full: usize = 2 * l.nnz();
        assert!(flops <= full);
    }
}
