//! Up-looking simplicial numeric Cholesky (CSparse `cs_chol` style).
//!
//! Computes `L` row by row: the pattern of row `k` is the elimination-tree
//! reach of the upper entries of column `k` (from [`crate::symbolic`]), and
//! the row values come from one sparse triangular solve against the already
//! computed columns. Entries are appended column-wise, so the produced CSC
//! factor has sorted rows with the diagonal first — directly consumable by
//! the TRSM kernels and extractable like CHOLMOD's factor.

use crate::symbolic::{ereach, Symbolic};
use sc_dense::Scalar;
use sc_sparse::CscOf;

/// Numeric breakdown: the matrix is not positive definite at some pivot.
/// The offending diagonal is widened to `f64` regardless of the working
/// precision so the error type stays scalar-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FactorError {
    /// Pivot column where the breakdown occurred.
    pub column: usize,
    /// The non-positive diagonal value encountered.
    pub value: f64,
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sparse Cholesky breakdown at column {}: diagonal {:.3e}",
            self.column, self.value
        )
    }
}

impl std::error::Error for FactorError {}

/// Numeric factorization of the (permuted, full-symmetric) matrix `a` using
/// a precomputed symbolic analysis. Returns `L` as CSC in the same working
/// precision as `a`.
pub fn simplicial_factorize<S: Scalar>(
    a: &CscOf<S>,
    sym: &Symbolic,
) -> Result<CscOf<S>, FactorError> {
    let n = sym.n;
    assert_eq!(a.ncols(), n);
    assert_eq!(a.nrows(), n);
    let nnz = sym.nnz();
    let mut l_vals = vec![S::ZERO; nnz];
    let l_cols = sym.col_ptr.clone();
    let l_rows = sym.row_idx.clone();

    // next free slot per column (diagonal written separately at l_cols[j])
    let mut fill = vec![0usize; n];
    for j in 0..n {
        fill[j] = l_cols[j] + 1;
    }
    let mut x = vec![S::ZERO; n]; // dense scratch for the current row
    let mut mark = vec![0usize; n];
    let mut stack = vec![0usize; n];
    let mut pattern: Vec<usize> = Vec::new();

    for k in 0..n {
        // scatter the upper entries of column k of A into x
        pattern.clear();
        ereach(a, k, &sym.parent, &mut mark, &mut stack, &mut pattern);
        let (rows, vals) = a.col(k);
        let mut d = S::ZERO;
        for (&i, &v) in rows.iter().zip(vals) {
            if i > k {
                break;
            }
            if i == k {
                d = v;
            } else {
                x[i] = v;
            }
        }
        // sparse solve: process pattern in (provided) topological order
        for &j in &pattern {
            let xj = x[j];
            x[j] = S::ZERO;
            let dj = l_vals[l_cols[j]]; // diagonal of column j
            let lkj = xj / dj;
            // update x with column j entries filled so far (rows < k)
            for p in (l_cols[j] + 1)..fill[j] {
                x[l_rows[p]] -= l_vals[p] * lkj;
            }
            d -= lkj * lkj;
            // append L[k, j]
            debug_assert_eq!(l_rows[fill[j]], k, "symbolic/numeric pattern mismatch");
            l_vals[fill[j]] = lkj;
            fill[j] += 1;
        }
        if d <= S::ZERO || !d.is_finite() {
            return Err(FactorError {
                column: k,
                value: d.to_f64(),
            });
        }
        l_vals[l_cols[k]] = d.sqrt();
    }
    Ok(CscOf::from_parts(n, n, l_cols, l_rows, l_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::analyze;
    use sc_sparse::{Coo, Csc};

    fn laplace_2d(nx: usize) -> Csc {
        // 5-point Laplacian on nx × nx grid + small diagonal shift (SPD)
        let n = nx * nx;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut c = Coo::new(n, n);
        for y in 0..nx {
            for x in 0..nx {
                let v = idx(x, y);
                c.push(v, v, 4.0 + 0.01);
                if x > 0 {
                    c.push(v, idx(x - 1, y), -1.0);
                }
                if x + 1 < nx {
                    c.push(v, idx(x + 1, y), -1.0);
                }
                if y > 0 {
                    c.push(v, idx(x, y - 1), -1.0);
                }
                if y + 1 < nx {
                    c.push(v, idx(x, y + 1), -1.0);
                }
            }
        }
        c.to_csc()
    }

    fn check_reconstruction(a: &Csc, l: &Csc, tol: f64) {
        let ld = l.to_dense();
        let ad = a.to_dense();
        let n = a.ncols();
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += ld[(i, k)] * ld[(j, k)];
                }
                assert!(
                    (s - ad[(i, j)]).abs() < tol,
                    "LL^T mismatch at ({i},{j}): {s} vs {}",
                    ad[(i, j)]
                );
            }
        }
    }

    #[test]
    fn factorizes_laplacian() {
        let a = laplace_2d(6);
        let sym = analyze(&a);
        let l = simplicial_factorize(&a, &sym).unwrap();
        check_reconstruction(&a, &l, 1e-10);
    }

    #[test]
    fn factor_pattern_matches_symbolic() {
        let a = laplace_2d(5);
        let sym = analyze(&a);
        let l = simplicial_factorize(&a, &sym).unwrap();
        assert_eq!(l.nnz(), sym.nnz());
        for j in 0..a.ncols() {
            assert_eq!(l.col(j).0, sym.col(j));
        }
    }

    #[test]
    fn solve_via_factor_has_small_residual() {
        let a = laplace_2d(7);
        let n = a.ncols();
        let sym = analyze(&a);
        let l = simplicial_factorize(&a, &sym).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut x = b.clone();
        sc_sparse::csc_lower_solve(&l, &mut x);
        sc_sparse::csc_lower_t_solve(&l, &mut x);
        let mut r = vec![0.0; n];
        a.spmv(1.0, &x, 0.0, &mut r);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 1, -1.0);
        let a = c.to_csc();
        let sym = analyze(&a);
        let err = simplicial_factorize(&a, &sym).unwrap_err();
        assert_eq!(err.column, 1);
    }

    #[test]
    fn f32_factor_tracks_f64() {
        let a = laplace_2d(5);
        let sym = analyze(&a);
        let l64 = simplicial_factorize(&a, &sym).unwrap();
        let l32 = simplicial_factorize(&a.cast::<f32>(), &sym).unwrap();
        let d = sc_dense::max_abs_diff(
            l64.to_dense().as_ref(),
            l32.cast::<f64>().to_dense().as_ref(),
        );
        assert!(d < 1e-4, "f32 factor drift {d}");
    }

    #[test]
    fn refactorize_with_changed_values_same_pattern() {
        // multi-step simulation: pattern fixed, values change
        let a1 = laplace_2d(5);
        let sym = analyze(&a1);
        let mut a2 = a1.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        let l2 = simplicial_factorize(&a2, &sym).unwrap();
        check_reconstruction(&a2, &l2, 1e-10);
    }
}
