//! Symbolic Cholesky analysis: elimination tree plus the full non-zero
//! pattern of the factor `L`.
//!
//! The pattern is computed by the row-subtree traversal (`ereach`, Davis
//! §4.2) once per row, which costs `O(|L|)` overall — no column-count
//! machinery needed. Storing the full pattern (rather than counts alone)
//! lets the numeric phases (simplicial *and* supernodal) run without any
//! further graph work, which is exactly the symbolic/numeric split the paper
//! leans on for multi-step simulations (§2.2).

use crate::etree::{etree, NONE};
use sc_dense::Scalar;
use sc_sparse::CscOf;

/// Result of the symbolic analysis of a (permuted) symmetric matrix.
#[derive(Clone, Debug)]
pub struct Symbolic {
    /// Dimension.
    pub n: usize,
    /// Elimination tree (`NONE` for roots).
    pub parent: Vec<usize>,
    /// Column pointers of `L` (`n + 1` entries).
    pub col_ptr: Vec<usize>,
    /// Row indices of `L`, per column, ascending, diagonal first.
    pub row_idx: Vec<usize>,
}

impl Symbolic {
    /// Non-zeros in the factor (including the diagonal).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of column `j` of `L` (ascending; first entry is `j`).
    pub fn col(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Fill-in ratio `|L| / |tril(A)|` (test/bench diagnostic).
    pub fn fill_ratio<S: Scalar>(&self, a: &CscOf<S>) -> f64 {
        let mut tril = 0usize;
        for j in 0..a.ncols() {
            let (rows, _) = a.col(j);
            tril += rows.iter().filter(|&&i| i >= j).count();
        }
        self.nnz() as f64 / tril as f64 // sc-analyze: allow(precision-discipline)
    }
}

/// Row pattern of row `k` of `L` via the elimination-tree reach of the upper
/// entries of column `k` of `A`. Appends the pattern (excluding `k` itself)
/// into `out` in **topological order** (ancestors after descendants) and
/// leaves `mark` clean. `stack` is scratch of length >= n.
pub(crate) fn ereach<S: Scalar>(
    a: &CscOf<S>,
    k: usize,
    parent: &[usize],
    mark: &mut [usize],
    stack: &mut [usize],
    out: &mut Vec<usize>,
) {
    let tag = k + 1; // nonzero tag unique per row
    mark[k] = tag;
    let start = out.len();
    let (rows, _) = a.col(k);
    for &row in rows {
        if row >= k {
            break;
        }
        // climb the etree from `row` until hitting a marked node
        let mut len = 0;
        let mut i = row;
        while mark[i] != tag {
            stack[len] = i;
            len += 1;
            mark[i] = tag;
            i = parent[i];
            debug_assert!(i != NONE, "etree path must reach k");
        }
        // append the path root-first for now; fixed up below
        while len > 0 {
            len -= 1;
            out.push(stack[len]);
        }
    }
    // Reverse so iteration order is newest-path-first, deepest-first within
    // each path. Later paths stop at nodes marked by earlier ones, so no node
    // of an earlier path is a descendant of a later path's node — making this
    // a valid topological (descendants-first) order for the row solve.
    out[start..].reverse();
}

/// Compute the symbolic factorization of the full-symmetric matrix `a`
/// (already permuted). Only the pattern is read, so any element scalar is
/// accepted.
pub fn analyze<S: Scalar>(a: &CscOf<S>) -> Symbolic {
    let n = a.ncols();
    assert_eq!(a.nrows(), n);
    let parent = etree(a);
    let mut mark = vec![0usize; n];
    let mut stack = vec![0usize; n];
    let mut pattern = Vec::new();

    // Pass 1: count entries per column of L.
    let mut counts = vec![1usize; n]; // diagonal
    for k in 0..n {
        pattern.clear();
        ereach(a, k, &parent, &mut mark, &mut stack, &mut pattern);
        for &j in &pattern {
            counts[j] += 1;
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    for j in 0..n {
        col_ptr[j + 1] = col_ptr[j] + counts[j];
    }
    let nnz = col_ptr[n];

    // Pass 2: fill row indices. Diagonal first; then rows k appended in
    // ascending k as the row loop advances, so each column ends up sorted.
    let mut row_idx = vec![0usize; nnz];
    let mut next = vec![0usize; n];
    for j in 0..n {
        row_idx[col_ptr[j]] = j;
        next[j] = col_ptr[j] + 1;
    }
    for k in 0..n {
        pattern.clear();
        ereach(a, k, &parent, &mut mark, &mut stack, &mut pattern);
        for &j in &pattern {
            row_idx[next[j]] = k;
            next[j] += 1;
        }
    }
    Symbolic {
        n,
        parent,
        col_ptr,
        row_idx,
    }
}

impl Symbolic {
    /// Recompute the row pattern of row `k` (test helper).
    pub fn row_pattern<S: Scalar>(&self, a: &CscOf<S>, k: usize) -> Vec<usize> {
        let mut mark = vec![0usize; self.n];
        let mut stack = vec![0usize; self.n];
        let mut out = Vec::new();
        ereach(a, k, &self.parent, &mut mark, &mut stack, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sparse::{Coo, Csc};

    fn tridiag(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        c.to_csc()
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = tridiag(8);
        let s = analyze(&a);
        // L is bidiagonal: 2n - 1 entries
        assert_eq!(s.nnz(), 15);
        for j in 0..7 {
            assert_eq!(s.col(j), &[j, j + 1]);
        }
        assert_eq!(s.col(7), &[7]);
    }

    #[test]
    fn arrowhead_pattern_is_last_row_dense() {
        let n = 6;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i + 1 < n {
                c.push(i, n - 1, 1.0);
                c.push(n - 1, i, 1.0);
            }
        }
        let s = analyze(&c.to_csc());
        for j in 0..n - 1 {
            assert_eq!(s.col(j), &[j, n - 1], "column {j}");
        }
    }

    #[test]
    fn dense_pattern_from_full_matrix() {
        let n = 5;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                c.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let s = analyze(&c.to_csc());
        assert_eq!(s.nnz(), n * (n + 1) / 2);
    }

    #[test]
    fn columns_sorted_diag_first() {
        // pentadiagonal with a long-range link to force fill
        let n = 12;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i + 2 < n {
                c.push(i, i + 2, -1.0);
                c.push(i + 2, i, -1.0);
            }
        }
        c.push(0, n - 1, -0.5);
        c.push(n - 1, 0, -0.5);
        let a = c.to_csc();
        let s = analyze(&a);
        for j in 0..n {
            let col = s.col(j);
            assert_eq!(col[0], j, "diagonal first");
            assert!(col.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
    }
}
