//! Property tests of the sparse Cholesky stack on random SPD matrices:
//! engines agree, orderings preserve solutions, refactorization is exact.

use proptest::prelude::*;
use sc_factor::{CholOptions, Engine, SparseCholesky};
use sc_order::Ordering;
use sc_sparse::{Coo, Csc};

fn spd_strategy(n: usize) -> impl Strategy<Value = Csc> {
    proptest::collection::vec((0usize..n, 0usize..n, 0.05f64..1.0), n..(4 * n)).prop_map(
        move |entries| {
            let mut coo = Coo::new(n, n);
            let mut diag = vec![1.0f64; n];
            for (i, j, v) in entries {
                if i != j {
                    coo.push(i, j, -v);
                    coo.push(j, i, -v);
                    diag[i] += v;
                    diag[j] += v;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                coo.push(i, i, d + 0.1);
            }
            coo.to_csc()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_agree_on_solutions(a in spd_strategy(30)) {
        let b: Vec<f64> = (0..30).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let xs = SparseCholesky::factorize(&a, CholOptions {
            ordering: Ordering::NestedDissection,
            engine: Engine::Simplicial,
        }).unwrap().solve(&b);
        let xm = SparseCholesky::factorize(&a, CholOptions {
            ordering: Ordering::NestedDissection,
            engine: Engine::Supernodal,
        }).unwrap().solve(&b);
        for i in 0..30 {
            prop_assert!((xs[i] - xm[i]).abs() < 1e-7, "at {}: {} vs {}", i, xs[i], xm[i]);
        }
    }

    #[test]
    fn solve_residual_small_for_every_ordering(a in spd_strategy(25)) {
        let n = 25;
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        for ordering in [Ordering::Natural, Ordering::Rcm, Ordering::NestedDissection] {
            let x = SparseCholesky::factorize(&a, CholOptions {
                ordering,
                engine: Engine::Simplicial,
            }).unwrap().solve(&b);
            let mut r = vec![0.0; n];
            a.spmv(1.0, &x, 0.0, &mut r);
            for i in 0..n {
                prop_assert!((r[i] - b[i]).abs() < 1e-7, "{:?} residual at {}", ordering, i);
            }
        }
    }

    #[test]
    fn refactorization_tracks_scaling(a in spd_strategy(20), scale in 0.5f64..4.0) {
        let n = 20;
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut chol = SparseCholesky::factorize(&a, CholOptions::default()).unwrap();
        let x1 = chol.solve(&b);
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= scale;
        }
        chol.refactorize(&a2).unwrap();
        let x2 = chol.solve(&b);
        // (s A) x2 = b  =>  x2 = x1 / s
        for i in 0..n {
            prop_assert!((x2[i] * scale - x1[i]).abs() < 1e-7);
        }
    }
}
