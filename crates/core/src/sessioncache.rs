//! Cross-session keyed cache of prepared solver state (the serve layer's
//! amortization store).
//!
//! The paper's economics are amortization: symbolic factorization, ordering
//! and block-cut resolution dominate a single assembly, and reusing them is
//! what makes GPU Schur assembly pay off. Within one problem the
//! [`BlockCutsCache`](crate::tune::BlockCutsCache) memoizes cut resolution;
//! a persistent service amortizes across *problems*: any client submitting a
//! job with the same content key (mesh/pattern hash + assembly config +
//! precision) reuses the prepared state of whoever computed it first.
//!
//! [`SessionCache`] is that store: a thread-safe, byte-budgeted LRU keyed by
//! a 64-bit content hash ([`ContentHasher`]). Values are `Arc`-shared, so an
//! eviction never invalidates state a running job already holds — eviction
//! only drops the cache's own reference (the property the serve crate's
//! eviction-correctness proptests pin).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a-style streaming hasher producing the 64-bit content keys of
/// [`SessionCache`]. Deterministic across runs and platforms (unlike
/// `std::collections::hash_map::DefaultHasher`, which is randomly seeded per
/// process), so keys are stable identifiers a client could even precompute.
#[derive(Clone, Copy, Debug)]
pub struct ContentHasher(u64);

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// Start from the FNV-1a offset basis.
    pub fn new() -> Self {
        ContentHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorb a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorb an `f64` by bit pattern (`NaN`s with different payloads hash
    /// differently — content identity, not numeric equality).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorb a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// produce different keys.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Counter snapshot of a [`SessionCache`] (the serve `stats` request reports
/// these per service).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionCacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that found no entry.
    pub misses: usize,
    /// Entries dropped to make room under the byte budget.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently accounted against the budget.
    pub bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

impl SessionCacheStats {
    /// `hits / (hits + misses)`, `0.0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64 // sc-analyze: allow(precision-discipline)
        }
    }
}

struct CacheEntry<T> {
    value: Arc<T>,
    bytes: usize,
    last_used: u64,
}

struct CacheInner<T> {
    map: HashMap<u64, CacheEntry<T>>,
    /// Monotonic logical clock stamping `last_used` (no wall clock: LRU
    /// order must be deterministic for the eviction proptests).
    clock: u64,
    bytes: usize,
    hits: usize,
    misses: usize,
    evictions: usize,
}

/// Thread-safe byte-budgeted LRU keyed by a [`ContentHasher`] digest.
///
/// `insert` evicts least-recently-used entries until the newcomer fits; a
/// value whose own size exceeds the whole budget is not cached at all (the
/// job still runs, it just doesn't amortize). All values are `Arc`-shared:
/// eviction drops the cache's reference only, never state in use.
pub struct SessionCache<T> {
    inner: Mutex<CacheInner<T>>,
    budget_bytes: usize,
}

impl<T> SessionCache<T> {
    /// Empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        SessionCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget_bytes,
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Look up `key`, bumping its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.last_used = clock;
                let v = Arc::clone(&e.value);
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert `value` under `key`, charging `bytes` against the budget and
    /// evicting LRU entries until it fits. Returns `false` (and caches
    /// nothing) when `bytes` alone exceeds the budget. Re-inserting an
    /// existing key replaces the entry and its byte charge.
    pub fn insert(&self, key: u64, value: Arc<T>, bytes: usize) -> bool {
        if bytes > self.budget_bytes {
            return false;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget_bytes {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty map whenever resident bytes exceed the remaining budget");
            let evicted = inner.map.remove(&lru).expect("key from live iteration");
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
        }
        inner.map.insert(
            key,
            CacheEntry {
                value,
                bytes,
                last_used: clock,
            },
        );
        inner.bytes += bytes;
        true
    }

    /// Drop every entry (counters survive; the budget is unchanged).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SessionCacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        SessionCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hasher_is_deterministic_and_order_sensitive() {
        let mut a = ContentHasher::new();
        a.write_str("mesh").write_usize(64).write_f64(1.5);
        let mut b = ContentHasher::new();
        b.write_str("mesh").write_usize(64).write_f64(1.5);
        assert_eq!(a.finish(), b.finish());
        let mut c = ContentHasher::new();
        c.write_usize(64).write_str("mesh").write_f64(1.5);
        assert_ne!(a.finish(), c.finish(), "field order must matter");
        // length prefixing: ("ab","c") != ("a","bc")
        let mut d = ContentHasher::new();
        d.write_str("ab").write_str("c");
        let mut e = ContentHasher::new();
        e.write_str("a").write_str("bc");
        assert_ne!(d.finish(), e.finish());
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = SessionCache::<Vec<u8>>::new(1024);
        assert!(cache.get(7).is_none());
        assert!(cache.insert(7, Arc::new(vec![1, 2, 3]), 100));
        let v = cache.get(7).expect("hit after insert");
        assert_eq!(*v, vec![1, 2, 3]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!((s.entries, s.bytes), (1, 100));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = SessionCache::<&'static str>::new(300);
        cache.insert(1, Arc::new("a"), 100);
        cache.insert(2, Arc::new("b"), 100);
        cache.insert(3, Arc::new("c"), 100);
        // touch 1 so 2 becomes the LRU
        cache.get(1);
        assert!(cache.insert(4, Arc::new("d"), 100));
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_value_is_not_cached_and_evicts_nothing() {
        let cache = SessionCache::<u32>::new(100);
        cache.insert(1, Arc::new(10), 60);
        assert!(!cache.insert(2, Arc::new(20), 101));
        assert!(cache.get(1).is_some(), "resident entry untouched");
        assert!(cache.get(2).is_none());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_replaces_byte_charge() {
        let cache = SessionCache::<u32>::new(100);
        cache.insert(1, Arc::new(10), 80);
        cache.insert(1, Arc::new(11), 40);
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (1, 40));
        assert_eq!(*cache.get(1).unwrap(), 11);
    }

    #[test]
    fn evicted_arc_survives_while_held() {
        let cache = SessionCache::<Vec<u64>>::new(100);
        cache.insert(1, Arc::new(vec![42; 4]), 100);
        let held = cache.get(1).unwrap();
        cache.insert(2, Arc::new(vec![7; 4]), 100); // evicts key 1
        assert!(cache.get(1).is_none());
        assert_eq!(held[0], 42, "in-use state outlives its eviction");
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = SessionCache::<u32>::new(100);
        cache.insert(1, Arc::new(1), 10);
        cache.get(1);
        cache.clear();
        assert!(cache.get(1).is_none());
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.hits, 1);
    }
}
